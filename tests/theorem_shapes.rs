//! Integration tests that check the *shape* of the paper's headline bounds at
//! small scale: who is fast where, and what grows how. These are coarse (they
//! must be robust to Monte-Carlo noise at test sizes) but they pin down the
//! qualitative claims of Theorems 8, 11, 12 and Remarks 9, 10.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::core::{Process, ThreeStateProcess, TwoStateProcess};
use selfstab_mis::graph::generators;
use selfstab_mis::sim::stats::Summary;

fn two_state_rounds(g: &selfstab_mis::graph::Graph, trials: usize, seed: u64) -> Summary {
    let samples: Vec<usize> = (0..trials)
        .map(|t| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed + t as u64);
            let mut p = TwoStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            p.run_to_stabilization(&mut rng, 10_000_000).unwrap()
        })
        .collect();
    Summary::from_counts(samples)
}

fn three_state_rounds(g: &selfstab_mis::graph::Graph, trials: usize, seed: u64) -> Summary {
    let samples: Vec<usize> = (0..trials)
        .map(|t| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed + t as u64);
            let mut p = ThreeStateProcess::with_init(g, InitStrategy::Random, &mut rng);
            p.run_to_stabilization(&mut rng, 10_000_000).unwrap()
        })
        .collect();
    Summary::from_counts(samples)
}

/// Theorem 8: on K_n the 2-state process is O(log n) in expectation — the
/// mean at n = 512 must be a small multiple of log₂ n, far below n.
#[test]
fn clique_stabilization_is_logarithmic_not_polynomial() {
    let g = generators::complete(512);
    let s = two_state_rounds(&g, 24, 100);
    let log_n = (512f64).log2();
    assert!(
        s.mean <= 6.0 * log_n,
        "mean {:.1} rounds on K_512 is too large for an O(log n) expectation (log2 n = {log_n:.1})",
        s.mean
    );
    assert!(s.mean >= 1.0);
}

/// Theorem 11: trees stabilize in O(log n); doubling n from 1024 to 4096 must
/// grow the mean by far less than 4x (logarithmic, not polynomial growth).
#[test]
fn tree_stabilization_grows_sublinearly() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let small = generators::random_tree(1024, &mut rng);
    let large = generators::random_tree(4096, &mut rng);
    let s_small = two_state_rounds(&small, 12, 200);
    let s_large = two_state_rounds(&large, 12, 300);
    assert!(
        s_large.mean <= 2.0 * s_small.mean + 5.0,
        "tree stabilization grew from {:.1} to {:.1} when n grew 4x — not logarithmic",
        s_small.mean,
        s_large.mean
    );
}

/// Remark 9 vs Theorem 11: at comparable n, the disjoint-cliques family
/// (Θ(log² n)) is slower than a random tree (O(log n)).
#[test]
fn disjoint_cliques_are_slower_than_trees() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let cliques = generators::disjoint_cliques(32, 32); // n = 1024
    let tree = generators::random_tree(1024, &mut rng);
    let s_cliques = two_state_rounds(&cliques, 16, 400);
    let s_tree = two_state_rounds(&tree, 16, 500);
    assert!(
        s_cliques.mean > s_tree.mean,
        "disjoint cliques ({:.1}) should be slower than trees ({:.1})",
        s_cliques.mean,
        s_tree.mean
    );
}

/// Remark 10: the 3-state process is faster than the 2-state process on a
/// clique (O(log n) vs Θ(log² n)); at n = 512 the separation is clear.
#[test]
fn three_state_beats_two_state_on_cliques() {
    let g = generators::complete(512);
    let two = two_state_rounds(&g, 24, 600);
    let three = three_state_rounds(&g, 24, 700);
    assert!(
        three.mean < two.mean,
        "3-state ({:.1}) should beat 2-state ({:.1}) on K_512",
        three.mean,
        two.mean
    );
}

/// Theorem 12's dependence on Δ: a 32-regular graph is slower than a
/// 4-regular graph at the same n, but by far less than the 8x degree ratio
/// (the bound is O(Δ log n), the truth is usually much better).
#[test]
fn higher_degree_regular_graphs_are_not_drastically_slower() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let low = generators::regular(256, 4, &mut rng).unwrap();
    let high = generators::regular(256, 32, &mut rng).unwrap();
    let s_low = two_state_rounds(&low, 16, 800);
    let s_high = two_state_rounds(&high, 16, 900);
    assert!(
        s_high.mean <= 32.0 * s_low.mean,
        "32-regular mean {:.1} exceeds the O(Δ log n) scaling relative to 4-regular mean {:.1}",
        s_high.mean,
        s_low.mean
    );
}
