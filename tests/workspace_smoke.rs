//! Workspace bootstrap smoke test: the facade re-exports resolve, the crates
//! link together, and the headline pipeline (generate a graph, run the
//! 2-state process, verify the MIS) works end to end under a fixed seed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::core::{Process, TwoStateProcess};
use selfstab_mis::graph::{generators, mis_check};

/// Every facade module is reachable and exposes a usable symbol.
#[test]
fn facade_reexports_resolve() {
    // graph
    let g = selfstab_mis::graph::generators::complete(4);
    assert_eq!(g.n(), 4);
    // core
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let proc = selfstab_mis::core::TwoStateProcess::with_init(&g, InitStrategy::AllWhite, &mut rng);
    assert_eq!(proc.round(), 0);
    // comm
    let beeps = selfstab_mis::comm::beeping::BeepingTwoStateMis::with_init(
        &g,
        InitStrategy::Random,
        &mut rng,
    );
    assert_eq!(beeps.round(), 0);
    // baselines
    let out = selfstab_mis::baselines::luby_mis(&g, &mut rng);
    assert!(mis_check::is_mis(&g, &out.mis));
    // sim
    let summary = selfstab_mis::sim::stats::Summary::from_counts([1usize, 2, 3]);
    assert_eq!(summary.count, 3);
}

/// A 50-node G(n,p) TwoState run stabilizes to a verified MIS under a fixed
/// seed.
#[test]
fn two_state_stabilizes_on_gnp_50() {
    let mut rng = ChaCha8Rng::seed_from_u64(1234);
    let g = generators::gnp(50, 0.1, &mut rng);
    let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
    let rounds = proc
        .run_to_stabilization(&mut rng, 100_000)
        .expect("2-state process stabilizes on G(50, 0.1)");
    assert!(rounds <= 100_000);
    assert!(proc.is_stabilized());
    assert!(mis_check::is_mis(&g, &proc.black_set()));
}

/// The run is deterministic: the same seed yields the same stabilization
/// time and the same MIS.
#[test]
fn fixed_seed_is_reproducible() {
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let g = generators::gnp(50, 0.1, &mut rng);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        let rounds = proc
            .run_to_stabilization(&mut rng, 100_000)
            .expect("stabilizes");
        (rounds, proc.black_set())
    };
    assert_eq!(run(), run());
}
