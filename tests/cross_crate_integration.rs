//! Cross-crate integration tests: every process, on every graph family, from
//! every initialization, reaches a valid MIS; and the different
//! implementations of the same process agree with each other.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use selfstab_mis::baselines::{greedy_mis, luby_mis, RandomPriorityMis};
use selfstab_mis::comm::beeping::BeepingTwoStateMis;
use selfstab_mis::comm::stone_age::{StoneAgeThreeColorMis, StoneAgeThreeStateMis};
use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use selfstab_mis::graph::{generators, mis_check, Graph};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn graph_zoo(rng: &mut ChaCha8Rng) -> Vec<(String, Graph)> {
    vec![
        ("empty".into(), Graph::empty(17)),
        ("single".into(), Graph::empty(1)),
        ("complete".into(), generators::complete(40)),
        ("path".into(), generators::path(60)),
        ("cycle".into(), generators::cycle(61)),
        ("star".into(), generators::star(50)),
        ("tree".into(), generators::random_tree(120, rng)),
        ("grid".into(), generators::grid(9, 9)),
        (
            "disjoint-cliques".into(),
            generators::disjoint_cliques(6, 7),
        ),
        ("gnp-sparse".into(), generators::gnp(150, 0.03, rng)),
        ("gnp-dense".into(), generators::gnp(90, 0.5, rng)),
        ("regular".into(), generators::regular(80, 6, rng).unwrap()),
        ("barbell".into(), generators::barbell(12, 3)),
        ("forest-union".into(), generators::forest_union(100, 3, rng)),
    ]
}

#[test]
fn all_processes_reach_an_mis_on_the_graph_zoo() {
    let mut r = rng(1);
    for (name, g) in graph_zoo(&mut r) {
        for init in [
            InitStrategy::AllWhite,
            InitStrategy::AllBlack,
            InitStrategy::Random,
            InitStrategy::Alternating,
        ] {
            let mut p = TwoStateProcess::with_init(&g, init, &mut r);
            p.run_to_stabilization(&mut r, 1_000_000).unwrap();
            assert!(
                mis_check::is_mis(&g, &p.black_set()),
                "two-state on {name} from {init:?}"
            );

            let mut p = ThreeStateProcess::with_init(&g, init, &mut r);
            p.run_to_stabilization(&mut r, 1_000_000).unwrap();
            assert!(
                mis_check::is_mis(&g, &p.black_set()),
                "three-state on {name} from {init:?}"
            );

            let mut p = ThreeColorProcess::with_randomized_switch(&g, init, &mut r);
            p.run_to_stabilization(&mut r, 1_000_000).unwrap();
            assert!(
                mis_check::is_mis(&g, &p.black_set()),
                "three-color on {name} from {init:?}"
            );
        }
    }
}

#[test]
fn communication_model_adaptations_reach_an_mis_on_the_graph_zoo() {
    let mut r = rng(2);
    for (name, g) in graph_zoo(&mut r) {
        let mut p = BeepingTwoStateMis::with_init(&g, InitStrategy::Random, &mut r);
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        assert!(mis_check::is_mis(&g, &p.black_set()), "beeping on {name}");

        let mut p = StoneAgeThreeStateMis::with_init(&g, InitStrategy::Random, &mut r);
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        assert!(
            mis_check::is_mis(&g, &p.black_set()),
            "stone-age 3-state on {name}"
        );

        let mut p = StoneAgeThreeColorMis::with_init(&g, InitStrategy::Random, &mut r);
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        assert!(
            mis_check::is_mis(&g, &p.black_set()),
            "stone-age 3-color on {name}"
        );
    }
}

#[test]
fn baselines_reach_an_mis_on_the_graph_zoo() {
    let mut r = rng(3);
    for (name, g) in graph_zoo(&mut r) {
        assert!(mis_check::is_mis(&g, &greedy_mis(&g)), "greedy on {name}");
        assert!(
            mis_check::is_mis(&g, &luby_mis(&g, &mut r).mis),
            "luby on {name}"
        );
        let mut alg = RandomPriorityMis::random_init(&g, &mut r);
        let out = alg.run(&mut r, 1_000_000).unwrap();
        assert!(mis_check::is_mis(&g, &out.mis), "random-priority on {name}");
    }
}

#[test]
fn beeping_adaptation_is_trace_equivalent_to_the_direct_process() {
    let mut setup = rng(4);
    let g = generators::gnp(120, 0.06, &mut setup);
    let init = InitStrategy::Random.two_state(g.n(), &mut setup);
    let mut direct = TwoStateProcess::new(&g, init.clone());
    let mut beeping = BeepingTwoStateMis::new(&g, init);
    let mut ra = rng(5);
    let mut rb = rng(5);
    while !direct.is_stabilized() {
        assert_eq!(direct.states(), beeping.states());
        direct.step(&mut ra);
        beeping.step(&mut rb);
        assert!(direct.round() < 1_000_000);
    }
    assert_eq!(direct.black_set(), beeping.black_set());
}

#[test]
fn stable_black_sets_are_monotone_and_final_mis_contains_them() {
    // I_t ⊆ I_{t+1} ⊆ final MIS — the core monotonicity the analysis relies on.
    let mut r = rng(6);
    let g = generators::gnp(100, 0.08, &mut r);
    let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
    let mut previous = p.stable_black_set();
    while !p.is_stabilized() {
        p.step(&mut r);
        let current = p.stable_black_set();
        assert!(
            previous.is_subset(&current),
            "I_t must be monotone non-decreasing"
        );
        previous = current;
    }
    assert_eq!(previous, p.black_set());
    assert!(mis_check::is_mis(&g, &previous));
}

#[test]
fn processes_use_constant_random_bits_per_vertex_per_round() {
    // The headline resource claim: at most 1 bit per vertex per round for the
    // 2-state process (plus the switch's constant for the 3-color process),
    // versus 32 per vertex per round for the random-priority baseline.
    let mut r = rng(7);
    let g = generators::gnp(200, 0.05, &mut r);

    let mut two = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
    two.run_to_stabilization(&mut r, 1_000_000).unwrap();
    assert!(two.random_bits_used() <= (two.round() as u64) * g.n() as u64);

    let mut rp = RandomPriorityMis::random_init(&g, &mut r);
    let out = rp.run(&mut r, 1_000_000).unwrap();
    assert_eq!(out.random_bits, 32 * g.n() as u64 * out.rounds as u64);
}
