//! Integration tests of the experiment harness itself: specifications are
//! reproducible, sweeps produce well-formed CSV, and the quick scale of every
//! experiment in EXPERIMENTS.md runs end to end.
//!
//! (The per-experiment assertions live in `crates/bench`; here we only check
//! that the harness wiring — spec → runner → sweep → CSV — holds together
//! across crates.)

use selfstab_mis::core::init::InitStrategy;
use selfstab_mis::sim::runner::run_experiment;
use selfstab_mis::sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec};
use selfstab_mis::sim::sweep::{row_from_result, run_sweep, SweepTable};

fn spec(graph: GraphSpec, algorithm: &str) -> ExperimentSpec {
    ExperimentSpec {
        name: "integration".into(),
        graph,
        algorithm: algorithm.to_string(),
        init: InitStrategy::Random,
        execution: ExecutionMode::Sequential,
        trials: 5,
        max_rounds: 1_000_000,
        base_seed: 123,
        record_trace: true,
        ..ExperimentSpec::default()
    }
}

#[test]
fn experiment_results_are_reproducible_and_validated() {
    let s = spec(GraphSpec::Gnp { n: 80, p: 0.08 }, "two-state");
    let a = run_experiment(&s);
    let b = run_experiment(&s);
    assert_eq!(a, b, "same spec must give identical results");
    assert!(a.all_stabilized() && a.all_valid());
    for t in &a.trials {
        assert_eq!(t.n, 80);
        assert!(t.valid_mis);
        let trace = t.trace.as_ref().unwrap();
        assert_eq!(trace.len(), t.rounds + 1);
        assert_eq!(trace.counts.last().unwrap().unstable, 0);
    }
}

#[test]
fn sweep_over_sizes_produces_consistent_table() {
    let table: SweepTable = run_sweep(
        [32usize, 64, 128]
            .into_iter()
            .map(|n| (n as f64, spec(GraphSpec::RandomTree { n }, "two-state"))),
    );
    assert_eq!(table.rows.len(), 3);
    for row in &table.rows {
        assert_eq!(row.stabilized_fraction, 1.0);
        assert!(row.rounds.mean >= 1.0);
        assert!(row.mis_size.mean >= 1.0);
    }
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 4);
    // 12 columns including the execution_mode/threads self-description.
    assert!(csv.lines().all(|l| l.split(',').count() == 12));
    assert!(csv.lines().skip(1).all(|l| l.contains(",sequential,1,")));
}

#[test]
fn representative_registry_keys_run_through_the_harness() {
    for algorithm in [
        "two-state",
        "three-state",
        "three-color",
        "luby",
        "random-priority",
    ] {
        let result = run_experiment(&spec(GraphSpec::Complete { n: 24 }, algorithm));
        assert!(result.all_stabilized(), "{algorithm}");
        assert!(result.all_valid(), "{algorithm}");
        // On a clique every MIS has size exactly 1.
        assert!(result.trials.iter().all(|t| t.mis_size == 1), "{algorithm}");
        let row = row_from_result(24.0, &result);
        assert_eq!(row.process_label, algorithm);
    }
}

#[test]
fn json_round_trip_of_experiment_results() {
    let result = run_experiment(&spec(GraphSpec::Star { n: 30 }, "three-state"));
    let json = serde_json::to_string(&result).unwrap();
    let back: selfstab_mis::sim::runner::ExperimentResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result, back);
}
