//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's unit tests use:
//! the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`], [`any`], and
//! strategies for integer/float ranges, tuples, and
//! [`collection::vec`]. Unlike real proptest there is **no shrinking**: a
//! failing case reports its inputs (via `Debug` where available in the
//! assertion message) and panics immediately. Case generation is
//! deterministic per test (a fixed base seed), so failures reproduce.

/// A deterministic random source handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        if span == 0 {
            return self.next_u64();
        }
        let threshold = span.wrapping_neg() % span;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(span);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count as a run.
    Reject,
    /// An assertion failed; the runner panics with this message.
    Fail(String),
}

/// The per-test-case result type produced by the [`proptest!`] expansion.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Aliased as `ProptestConfig` in the [`prelude`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest's default. Override per block with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        Config { cases: 256 }
    }
}

/// Drives one property: runs `body` until `config.cases` cases pass.
/// Called by the [`proptest!`] expansion; not part of the public proptest
/// API shape.
///
/// # Panics
///
/// Panics when a case fails or when too many cases are rejected.
pub fn run_cases(config: Config, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut rejects: u64 = 0;
    let mut passed: u32 = 0;
    let mut case: u64 = 0;
    while passed < config.cases {
        // Deterministic per-case seed so failures reproduce across runs.
        let mut rng = TestRng::new(0xc0ff_ee00_0000_0000 ^ case);
        case += 1;
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects <= 65_536,
                    "proptest: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {case} failed: {msg}")
            }
        }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $ut:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add(rng.below(span) as $ut as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Strategy for a whole-domain value of `T`, created by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Produces any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with sizes drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn uniformly from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError,
    };

    /// The runner configuration, under its conventional prelude name.
    pub type ProptestConfig = crate::Config;
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// no shrinking) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "{}:{}: {}",
                file!(),
                line!(),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Discards the current case (without failing) when a precondition does not
/// hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($config, |__proptest_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1_000 {
            let x = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = crate::Strategy::generate(&(-2.5f64..2.5), &mut rng);
            assert!((-2.5..2.5).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        let strat = crate::collection::vec((0usize..10, any::<bool>()), 0..20);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|(x, _)| *x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assume, and assertions together.
        #[test]
        fn macro_roundtrip(x in 1usize..50, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!((1..50).contains(&x));
            let copy = flip;
            prop_assert_eq!(flip, copy);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        crate::run_cases(crate::Config::with_cases(4), |rng| {
            let x = crate::Strategy::generate(&(0usize..10), rng);
            crate::prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }
}
