//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this repository is fully hermetic (no crates.io
//! access), so this crate re-implements just enough of serde's derive macros
//! for the types that appear in the workspace: non-generic structs with named
//! fields, and enums whose variants are unit, tuple, or struct-like. No
//! `#[serde(...)]` attributes are supported — the workspace does not use any.
//!
//! The generated code targets the vendored `serde` crate's value-tree model:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::from_value(&serde::Value) -> Result<Self, serde::Error>`,
//! with the same JSON data layout real serde would produce (structs as
//! objects, unit variants as strings, data variants as single-key objects).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Struct(Vec<String>),
    Tuple(usize),
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing (token-tree walk; no external parser crates are available)
// ---------------------------------------------------------------------------

fn skip_attributes(iter: &mut TokenIter) {
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next(); // `#`
        iter.next(); // the `[...]` group
    }
}

fn skip_visibility(iter: &mut TokenIter) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next(); // `(crate)` / `(super)` / ...
                }
            }
        }
    }
}

/// Consumes one type, stopping at a top-level `,` (which is also consumed).
/// Commas inside groups are invisible (groups are single token trees); commas
/// inside generic arguments are guarded by `<`/`>` depth tracking.
fn skip_type_to_comma(iter: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    iter.next();
                    return;
                }
                _ => {}
            }
        }
        iter.next();
    }
}

/// Parses the contents of a `{ name: Type, ... }` field list.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                fields.push(id.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
                }
                skip_type_to_comma(&mut iter);
            }
            None => break,
            Some(other) => panic!("serde_derive: unexpected token in field list: {other}"),
        }
    }
    fields
}

/// Counts the fields of a tuple-variant `( Type, ... )` payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_to_comma(&mut iter);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let kind = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        iter.next();
                        VariantKind::Struct(fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = count_tuple_fields(g.stream());
                        iter.next();
                        VariantKind::Tuple(arity)
                    }
                    _ => VariantKind::Unit,
                };
                // Consume an optional `= discriminant` and the trailing comma.
                while let Some(tt) = iter.peek() {
                    if let TokenTree::Punct(p) = tt {
                        if p.as_char() == ',' {
                            iter.next();
                            break;
                        }
                    }
                    iter.next();
                }
                variants.push(Variant { name, kind });
            }
            None => break,
            Some(other) => panic!("serde_derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let is_struct = loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break true,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break false,
            Some(_) => continue, // visibility and other modifiers
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported by the vendored derive");
        }
    }
    match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if is_struct {
                Item::Struct {
                    name,
                    fields: parse_named_fields(g.stream()),
                }
            } else {
                Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                }
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' && is_struct => Item::Struct {
            name,
            fields: Vec::new(),
        },
        other => panic!("serde_derive: unsupported item body for `{name}`: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn push_object_fields(out: &mut String, access_prefix: &str, fields: &[String]) {
    out.push_str("let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();");
    for f in fields {
        out.push_str(&format!(
            "fields.push((::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access_prefix}{f})));"
        ));
    }
}

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    push_object_fields(&mut body, "&self.", fields);
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} ::serde::Value::Object(fields) }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let mut body = String::new();
    for f in fields {
        body.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::get_field(value, \"{f}\")?)?,"
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         ::std::result::Result::Ok({name} {{ {body} }})\n\
         }}\n}}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            )),
            VariantKind::Struct(fields) => {
                let bindings = fields.join(", ");
                let mut inner = String::new();
                push_object_fields(&mut inner, "", fields);
                arms.push_str(&format!(
                    "{name}::{vname} {{ {bindings} }} => {{ {inner} \
                     ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(fields))]) }},"
                ));
            }
            VariantKind::Tuple(arity) => {
                let bindings: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                let payload = if *arity == 1 {
                    "::serde::Serialize::to_value(x0)".to_string()
                } else {
                    let elems: Vec<String> = bindings
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {payload})]),",
                    bindings.join(", ")
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            )),
            VariantKind::Struct(fields) => {
                let mut body = String::new();
                for f in fields {
                    body.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::get_field(inner, \"{f}\")?)?,"
                    ));
                }
                data_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {body} }}),"
                ));
            }
            VariantKind::Tuple(arity) => {
                if *arity == 1 {
                    data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                    ));
                } else {
                    let elems: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(::serde::get_index(inner, {i})?)?"))
                        .collect();
                    data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                        elems.join(", ")
                    ));
                }
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         match value {{\n\
         ::serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown unit variant `{{other}}` of {name}\"))) }},\n\
         ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
         let (key, inner) = &entries[0];\n\
         match key.as_str() {{ {data_arms} other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown data variant `{{other}}` of {name}\"))) }}\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::Error::custom(\"expected a string or single-key object for enum {name}\")),\n\
         }}\n}}\n}}"
    )
}
