//! Offline stand-in for `serde_json`.
//!
//! Works against the vendored `serde` stand-in's [`Value`] tree:
//! [`to_string`]/[`to_string_pretty`] render a [`serde::Serialize`] type to
//! JSON text, and [`from_str`] parses JSON text back into a
//! [`serde::Deserialize`] type. The emitted layout matches real serde_json
//! for the shapes the workspace uses (structs, enums, `Option`, `Vec`,
//! numbers, booleans, strings).

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Returns an [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit_pretty(&value.to_value(), &mut out, 0)?;
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Deserializes a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Reconstructs a value of type `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn emit_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn emit_float(x: f64, out: &mut String) -> Result<(), Error> {
    if !x.is_finite() {
        return Err(Error::custom("cannot serialize a non-finite float as JSON"));
    }
    // Rust's shortest-roundtrip formatting; "1" (no decimal point) is fine
    // because numeric deserialization accepts any numeric representation.
    let _ = write!(out, "{x}");
    Ok(())
}

fn emit(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => emit_float(*x, out)?,
        Value::Str(s) => emit_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_escaped(k, out);
                out.push(':');
                emit(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn emit_pretty(value: &Value, out: &mut String, indent: usize) -> Result<(), Error> {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                emit_pretty(item, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                emit_escaped(k, out);
                out.push_str(": ");
                emit_pretty(v, out, indent + 1)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => emit(other, out)?,
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        src: s,
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // Surrogate pair: expect a following \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?
                            };
                            out.push(c);
                            // parse_hex4 leaves pos just past the 4 digits;
                            // skip the shared `self.pos += 1` below.
                            continue;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. The input is a
                    // &str and the cursor only ever advances by whole
                    // scalars, so `pos` is always a char boundary; slicing
                    // here is an O(1) boundary check, not a revalidation of
                    // the tail (which would make parsing quadratic in the
                    // document size).
                    let c = self.src[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        let cp =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::F64(0.08)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("d".into(), Value::Str("q\"uo\\te\n".into())),
            ("e".into(), Value::I64(-3)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("é😀".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn parses_raw_multibyte_scalars_in_strings() {
        let v: Value = from_str("\"héllo wörld 😀 ascii tail\"").unwrap();
        assert_eq!(v, Value::Str("héllo wörld 😀 ascii tail".into()));
        let text = to_string(&Value::Str("π≈3.14159".into())).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Str("π≈3.14159".into()));
    }

    #[test]
    fn parsing_large_documents_is_linear_in_input_size() {
        // Regression guard: string characters were once consumed by
        // revalidating the whole remaining input as UTF-8, making parse
        // time quadratic in document size (a multi-MB snapshot took
        // minutes). A ~2 MB document must parse in seconds, not minutes.
        let row = "{\"id\": 123456, \"status\": \"finished\", \"note\": \"résumé\"}";
        let doc = format!(
            "[{}]",
            std::iter::repeat_n(row, 40_000)
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(doc.len() > 2_000_000);
        let t0 = std::time::Instant::now();
        let v: Value = from_str(&doc).unwrap();
        let elapsed = t0.elapsed();
        match v {
            Value::Array(xs) => assert_eq!(xs.len(), 40_000),
            other => panic!("expected array, got {other:?}"),
        }
        assert!(
            elapsed.as_secs() < 20,
            "quadratic parse regression: {elapsed:?} for {} bytes",
            doc.len()
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![("xs".into(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
