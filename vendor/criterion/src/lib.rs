//! Offline stand-in for `criterion` 0.5.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock harness: each benchmark warms up for the configured duration,
//! then runs timed batches until the measurement window closes, and prints
//! the mean time per iteration. There is no statistical analysis, HTML
//! report, or baseline comparison; results are indicative only.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an optional
/// parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`]; lets `bench_function` accept both
/// string names and full ids.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The benchmark driver handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_millis(1500),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in sizes batches by time,
    /// not by sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run_one(&id.id, |b| f(b));
        self
    }

    /// Runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Finishes the group. (The stand-in reports per benchmark, so this is
    /// only a marker.)
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some((iters, total)) => {
                let per_iter = total / u32::try_from(iters.max(1)).unwrap_or(u32::MAX);
                println!(
                    "bench {}/{id}: {per_iter:?}/iter ({iters} iterations in {total:?})",
                    self.name
                );
            }
            None => println!(
                "bench {}/{id}: no measurement (iter was never called)",
                self.name
            ),
        }
    }
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Calls `f` repeatedly: first for the warm-up window, then for the
    /// measurement window, recording the mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let started = Instant::now();
        let measurement_end = started + self.measurement;
        while Instant::now() < measurement_end {
            black_box(f());
            iters += 1;
        }
        self.report = Some((iters, started.elapsed()));
    }
}

/// Registers benchmark functions under a group name, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` that runs each registered group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("two_state", 64).id, "two_state/64");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
