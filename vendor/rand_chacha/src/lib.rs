//! Offline stand-in for `rand_chacha`.
//!
//! Implements [`ChaCha8Rng`] — a real ChaCha8 (8-round) keystream generator
//! — behind the vendored `rand` stand-in's `RngCore`/`SeedableRng` traits.
//! The word stream is a faithful ChaCha8 keystream, but the mapping from
//! seed to output is **not** bit-compatible with the real `rand_chacha`
//! crate (block words are consumed in a different order and `seed_from_u64`
//! uses the vendored trait's default SplitMix64 expansion). All experiment
//! results in this repository are produced by this generator, so results are
//! reproducible within the repository.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic random number generator using the ChaCha algorithm with
/// 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words, and
    /// 2 stream words.
    state: [u32; BLOCK_WORDS],
    /// The current output block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread index into `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, st) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*st);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter and stream) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn output_is_roughly_uniform() {
        // Cheap sanity check on bit balance over 64k words.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..65_536).map(|_| rng.next_u32().count_ones()).sum();
        let total = 65_536u64 * 32;
        let frac = f64::from(ones) / total as f64;
        assert!((0.49..0.51).contains(&frac), "one-bit fraction {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
