//! Offline stand-in for `serde`.
//!
//! The build environment of this repository is hermetic (no crates.io
//! access), so this crate provides the subset of serde the workspace uses: a
//! JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits over that
//! tree, impls for the primitive and container types that appear in the
//! workspace, and re-exported derive macros from the sibling `serde_derive`
//! stand-in. The companion `serde_json` stand-in renders [`Value`] to JSON
//! text and parses it back.
//!
//! The data layout matches real serde's JSON encoding for the supported
//! shapes: structs as objects, unit enum variants as strings, data-carrying
//! variants as single-key objects, `Option` as the value or `null`.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative JSON integer.
    U64(u64),
    /// Negative JSON integer.
    I64(i64),
    /// JSON floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a field of an object value. Used by derived code.
///
/// # Errors
///
/// Returns an [`Error`] if `value` is not an object or lacks the field.
pub fn get_field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, Error> {
    match value {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::custom(format!("missing field `{name}`"))),
        _ => Err(Error::custom(format!(
            "expected an object with field `{name}`"
        ))),
    }
}

/// Looks up an element of an array value. Used by derived code for tuple
/// enum variants.
///
/// # Errors
///
/// Returns an [`Error`] if `value` is not an array or is too short.
pub fn get_index(value: &Value, index: usize) -> Result<&Value, Error> {
    match value {
        Value::Array(items) => items
            .get(index)
            .ok_or_else(|| Error::custom(format!("missing tuple element {index}"))),
        _ => Err(Error::custom("expected an array")),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("unsigned integer out of range")),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("negative value for unsigned integer")),
                    _ => Err(Error::custom(concat!("expected an integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("signed integer out of range")),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::custom("signed integer out of range")),
                    _ => Err(Error::custom(concat!("expected an integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    _ => Err(Error::custom(concat!("expected a number for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected a boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected a string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => Ok(($($name::from_value(
                        items.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,)+)),
                    _ => Err(Error::custom("expected an array for a tuple")),
                }
            }
        }
    )*};
}

impl_tuple!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2));

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
