//! Offline stand-in for `rand` 0.8.
//!
//! The build environment of this repository is hermetic (no crates.io
//! access), so this crate implements the subset of the rand 0.8 API the
//! workspace uses: [`RngCore`], the [`Rng`] extension trait with `gen_bool`
//! and `gen_range` over integer ranges, [`SeedableRng`] with the SplitMix64
//! `seed_from_u64` expansion, and [`seq::SliceRandom`] with `shuffle` and
//! `choose`. Output streams are *not* bit-compatible with the real crate;
//! all experiment results in this repository are produced by these
//! generators, so comparisons within the repository are consistent.

/// A source of random 32- and 64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} not in [0, 1]"
        );
        // Compare 53 random mantissa bits against p, like rand's Bernoulli.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Samples a uniform value of type `T` (rand's `Standard` distribution:
    /// the full domain for integers, `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen`] can sample uniformly from their natural domain.
pub trait StandardSample {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sample from `[0, span)` for `span >= 1`, or the full 64-bit domain
/// for `span == 0`, via Lemire's widening-multiplication rejection method.
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                let offset = sample_below(rng, span);
                self.start.wrapping_add(offset as $ut as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // A span of 0 encodes the full 64-bit domain (end - start
                // + 1 wrapped), which sample_below handles.
                let span = (end.wrapping_sub(start) as $ut as u64).wrapping_add(1);
                let offset = sample_below(rng, span);
                start.wrapping_add(offset as $ut as $t)
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way rand 0.8 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related extensions, mirroring `rand::seq`.

    use super::{sample_below, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = sample_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(sample_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// A tiny deterministic generator for testing the trait machinery.
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // SplitMix64.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = TestRng(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: u8 = rng.gen_range(0..=5u8);
            assert!(z <= 5);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = TestRng(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = TestRng(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = TestRng(4);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(xs.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
