//! Method + path-pattern routing.
//!
//! Patterns are `/`-separated with `:name` parameter segments, e.g.
//! `/v1/jobs/:id`. Dispatch distinguishes "no pattern matched the path"
//! (404) from "a pattern matched but not with this method" (405), and runs
//! every request through an optional [`Middleware`] — the hook the service
//! uses for per-endpoint metrics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crate::{Method, Request, Response};

/// Label reported to [`Middleware`] for requests no pattern matched.
pub const UNMATCHED: &str = "(unmatched)";

/// Captured `:name` path parameters for one dispatch.
#[derive(Debug, Default)]
pub struct PathParams {
    params: Vec<(String, String)>,
}

impl PathParams {
    /// The raw value captured for `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value captured for `name`, parsed as a `u64` id.
    pub fn id(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }
}

/// Observes every dispatch; implemented by the service metrics layer.
pub trait Middleware: Send + Sync {
    /// Called before the handler runs. `pattern` is the matched route
    /// pattern (or [`UNMATCHED`]).
    fn on_request(&self, pattern: &str, method: Method);
    /// Called after the handler returns with the response status and
    /// handler wall time.
    fn on_response(&self, pattern: &str, method: Method, status: u16, elapsed_micros: u64);
}

enum Segment {
    Literal(String),
    Param(String),
}

type Handler = Box<dyn Fn(&Request, &PathParams) -> Response + Send + Sync>;

struct Route {
    method: Method,
    pattern: String,
    segments: Vec<Segment>,
    handler: Handler,
}

fn parse_pattern(pattern: &str) -> Vec<Segment> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|s| match s.strip_prefix(':') {
            Some(name) => Segment::Param(name.to_string()),
            None => Segment::Literal(s.to_string()),
        })
        .collect()
}

fn match_path(segments: &[Segment], path: &str) -> Option<PathParams> {
    let parts: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    if parts.len() != segments.len() {
        return None;
    }
    let mut params = PathParams::default();
    for (segment, part) in segments.iter().zip(&parts) {
        match segment {
            Segment::Literal(lit) if lit == part => {}
            Segment::Literal(_) => return None,
            Segment::Param(name) => params.params.push((name.clone(), (*part).to_string())),
        }
    }
    Some(params)
}

/// A table of routes with a middleware hook.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
    middleware: Option<Arc<dyn Middleware>>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Router {
        Router::default()
    }

    /// Registers a handler for `method` + `pattern` (builder style).
    pub fn route(
        mut self,
        method: Method,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            pattern: pattern.to_string(),
            segments: parse_pattern(pattern),
            handler: Box::new(handler),
        });
        self
    }

    /// Registers a `GET` handler.
    pub fn get(
        self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.route(Method::Get, pattern, handler)
    }

    /// Registers a `POST` handler.
    pub fn post(
        self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.route(Method::Post, pattern, handler)
    }

    /// Registers a `PATCH` handler.
    pub fn patch(
        self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.route(Method::Patch, pattern, handler)
    }

    /// Registers a `DELETE` handler.
    pub fn delete(
        self,
        pattern: &str,
        handler: impl Fn(&Request, &PathParams) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.route(Method::Delete, pattern, handler)
    }

    /// Installs the middleware observed around every dispatch.
    pub fn with_middleware(mut self, middleware: Arc<dyn Middleware>) -> Router {
        self.middleware = Some(middleware);
        self
    }

    /// All registered `(method, pattern)` pairs, for metrics pre-sizing.
    pub fn patterns(&self) -> Vec<(Method, String)> {
        self.routes
            .iter()
            .map(|r| (r.method, r.pattern.clone()))
            .collect()
    }

    /// Dispatches a request: 404 when no pattern matches the path, 405 when
    /// a pattern matches but not with this method.
    pub fn dispatch(&self, request: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            if let Some(params) = match_path(&route.segments, &request.path) {
                if route.method != request.method {
                    path_matched = true;
                    continue;
                }
                return self.observed(&route.pattern, request, |req| (route.handler)(req, &params));
            }
        }
        let status = if path_matched { 405 } else { 404 };
        self.observed(UNMATCHED, request, |_| {
            Response::json(status, format!("{{\"error\":\"{status}\"}}"))
        })
    }

    fn observed(
        &self,
        pattern: &str,
        request: &Request,
        run: impl FnOnce(&Request) -> Response,
    ) -> Response {
        match &self.middleware {
            Some(mw) => {
                mw.on_request(pattern, request.method);
                let start = Instant::now();
                let response = contained(request, run);
                mw.on_response(
                    pattern,
                    request.method,
                    response.status,
                    start.elapsed().as_micros() as u64,
                );
                response
            }
            None => contained(request, run),
        }
    }
}

/// Runs a handler with panic containment: a panicking handler becomes a 500
/// response instead of unwinding (and silently killing) the connection
/// thread, so the peer always gets an answer and keep-alive siblings on
/// other connections are unaffected.
fn contained(request: &Request, run: impl FnOnce(&Request) -> Response) -> Response {
    match catch_unwind(AssertUnwindSafe(|| run(request))) {
        Ok(response) => response,
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "handler panicked".to_string());
            Response::json(500, format!("{{\"error\":{:?}}}", detail))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn req(method: Method, path: &str) -> Request {
        Request {
            method,
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn router() -> Router {
        Router::new()
            .get("/v1/jobs", |_, _| Response::text(200, "list"))
            .post("/v1/jobs", |_, _| Response::text(202, "submitted"))
            .get("/v1/jobs/:id", |_, p| {
                Response::text(200, format!("job {}", p.id("id").unwrap()))
            })
            .delete("/v1/jobs/:id", |_, _| Response::new(204))
            .patch("/v1/graphs/:id/edges", |_, p| {
                Response::text(200, format!("patch {}", p.get("id").unwrap()))
            })
    }

    fn body_text(r: Response) -> String {
        match r.body {
            crate::Body::Bytes(b) => String::from_utf8(b).unwrap(),
            // Drain streamed bodies instead of panicking: assertion failures
            // should come from the comparison, not from the helper.
            crate::Body::Stream(mut chunks) => {
                let mut all = Vec::new();
                while let Some(chunk) = chunks() {
                    all.extend_from_slice(&chunk);
                }
                String::from_utf8(all).unwrap()
            }
        }
    }

    #[test]
    fn literal_and_param_routes_dispatch() {
        let r = router();
        assert_eq!(body_text(r.dispatch(&req(Method::Get, "/v1/jobs"))), "list");
        assert_eq!(
            body_text(r.dispatch(&req(Method::Get, "/v1/jobs/42"))),
            "job 42"
        );
        assert_eq!(
            body_text(r.dispatch(&req(Method::Patch, "/v1/graphs/7/edges"))),
            "patch 7"
        );
    }

    #[test]
    fn not_found_vs_method_not_allowed() {
        let r = router();
        assert_eq!(r.dispatch(&req(Method::Get, "/nope")).status, 404);
        assert_eq!(r.dispatch(&req(Method::Patch, "/v1/jobs")).status, 405);
        assert_eq!(r.dispatch(&req(Method::Post, "/v1/jobs/1")).status, 405);
        // Trailing slash is equivalent (empty segments are skipped).
        assert_eq!(r.dispatch(&req(Method::Get, "/v1/jobs/")).status, 200);
    }

    #[test]
    fn middleware_sees_every_dispatch() {
        struct Count {
            requests: AtomicU64,
            latency_calls: AtomicU64,
            unmatched: AtomicU64,
        }
        impl Middleware for Count {
            fn on_request(&self, pattern: &str, _method: Method) {
                self.requests.fetch_add(1, Ordering::Relaxed);
                if pattern == UNMATCHED {
                    self.unmatched.fetch_add(1, Ordering::Relaxed);
                }
            }
            fn on_response(&self, _p: &str, _m: Method, _s: u16, _elapsed: u64) {
                self.latency_calls.fetch_add(1, Ordering::Relaxed);
            }
        }
        let counter = Arc::new(Count {
            requests: AtomicU64::new(0),
            latency_calls: AtomicU64::new(0),
            unmatched: AtomicU64::new(0),
        });
        let r = router().with_middleware(counter.clone());
        r.dispatch(&req(Method::Get, "/v1/jobs"));
        r.dispatch(&req(Method::Get, "/missing"));
        assert_eq!(counter.requests.load(Ordering::Relaxed), 2);
        assert_eq!(counter.latency_calls.load(Ordering::Relaxed), 2);
        assert_eq!(counter.unmatched.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn patterns_lists_routes() {
        let patterns = router().patterns();
        assert_eq!(patterns.len(), 5);
        assert!(patterns.contains(&(Method::Patch, "/v1/graphs/:id/edges".to_string())));
    }

    #[test]
    fn panicking_handler_becomes_a_500() {
        let r = Router::new()
            .get("/boom", |_, _| -> Response { panic!("handler exploded") })
            .get("/ok", |_, _| Response::text(200, "fine"));
        let resp = r.dispatch(&req(Method::Get, "/boom"));
        assert_eq!(resp.status, 500);
        assert!(body_text(resp).contains("handler exploded"));
        // The router stays usable after containing a panic.
        assert_eq!(r.dispatch(&req(Method::Get, "/ok")).status, 200);
    }

    #[test]
    fn middleware_records_contained_panics_as_500() {
        struct LastStatus(AtomicU64);
        impl Middleware for LastStatus {
            fn on_request(&self, _p: &str, _m: Method) {}
            fn on_response(&self, _p: &str, _m: Method, status: u16, _elapsed: u64) {
                self.0.store(status as u64, Ordering::Relaxed);
            }
        }
        let last = Arc::new(LastStatus(AtomicU64::new(0)));
        let r = Router::new()
            .get("/boom", |_, _| -> Response { panic!("nope") })
            .with_middleware(last.clone());
        r.dispatch(&req(Method::Get, "/boom"));
        assert_eq!(last.0.load(Ordering::Relaxed), 500);
    }
}
