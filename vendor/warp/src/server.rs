//! Threaded HTTP/1.1 server with cooperative graceful shutdown.
//!
//! One detached thread per connection; connections use a short read timeout
//! so a thread parked on a keep-alive read re-checks the shutdown flag every
//! tick instead of blocking forever. [`Server::shutdown`] stops accepting,
//! then waits (bounded) for live connection threads to drain.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::wire::{error_status, read_request, write_response, Limits, ReadOutcome};
use crate::{Response, Router};

/// How often blocked reads and the accept loop re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Upper bound on waiting for in-flight connections during shutdown.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// Per-connection robustness knobs: parsing limits, the slow-client
/// eviction deadline (see [`Limits`]), and a socket write timeout so a
/// stalled reader cannot wedge a connection thread mid-response.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Request parsing limits and slow-client deadline.
    pub limits: Limits,
    /// Socket write timeout for responses; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            limits: Limits::default(),
            write_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Starts building a server around `router`. Call
/// [`bind`](ServerBuilder::bind) to start listening.
pub fn serve(router: Router) -> ServerBuilder {
    ServerBuilder {
        router,
        config: ServerConfig::default(),
    }
}

/// Intermediate builder returned by [`serve`].
pub struct ServerBuilder {
    router: Router,
    config: ServerConfig,
}

impl ServerBuilder {
    /// Overrides the default [`ServerConfig`].
    pub fn config(mut self, config: ServerConfig) -> ServerBuilder {
        self.config = config;
        self
    }

    /// Binds the listener and starts the accept loop. Bind to port 0 for an
    /// ephemeral port (see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates listener bind/configuration failures.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let router = Arc::new(self.router);
        let config = self.config;

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let live = Arc::clone(&live);
            thread::spawn(move || accept_loop(listener, router, shutdown, live, config))
        };

        Ok(Server {
            local_addr,
            shutdown,
            live,
            accept: Some(accept),
            skip_drain: false,
        })
    }
}

/// A running server; dropping it also shuts it down.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    accept: Option<thread::JoinHandle<()>>,
    skip_drain: bool,
}

impl Server {
    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, unblocks idle keep-alive connections, and waits
    /// (bounded) for in-flight requests to finish.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Hard stop: stops accepting and returns without draining in-flight
    /// connections — they notice the shutdown flag within one poll tick and
    /// die with their requests unanswered. This models a process crash for
    /// fault-injection tests; prefer [`shutdown`](Server::shutdown) for a
    /// clean exit.
    pub fn abort(mut self) {
        self.skip_drain = true;
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if self.skip_drain {
            return;
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while self.live.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Decrements the live-connection gauge even if the connection panics.
struct LiveGuard(Arc<AtomicUsize>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: TcpListener,
    router: Arc<Router>,
    shutdown: Arc<AtomicBool>,
    live: Arc<AtomicUsize>,
    config: ServerConfig,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                live.fetch_add(1, Ordering::SeqCst);
                let guard = LiveGuard(Arc::clone(&live));
                let router = Arc::clone(&router);
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, &router, &shutdown, &config);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    router: &Router,
    shutdown: &AtomicBool,
    config: &ServerConfig,
) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(config.write_timeout);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let abort = || shutdown.load(Ordering::SeqCst);

    loop {
        let outcome = match read_request(&mut reader, &abort, &config.limits) {
            Ok(outcome) => outcome,
            Err(e)
                if e.kind() == io::ErrorKind::InvalidData
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Malformed, over-limit, or too-slow input: answer with the
                // matching status (400 / 413 / 408) and evict the peer.
                let status = error_status(&e);
                let resp = Response::json(status, format!("{{\"error\":{:?}}}", e.to_string()));
                let _ = write_response(&mut writer, resp, false);
                return;
            }
            Err(_) => return,
        };
        let request = match outcome {
            ReadOutcome::Request(request) => request,
            ReadOutcome::Closed | ReadOutcome::Aborted => return,
        };
        let wants_close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let keep_alive = !wants_close && !shutdown.load(Ordering::SeqCst);
        let response = router.dispatch(&request);
        if write_response(&mut writer, response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, Method};
    use std::sync::atomic::AtomicU64;

    fn test_server() -> Server {
        let router = Router::new()
            .get("/ping", |_, _| Response::text(200, "pong"))
            .post("/echo", |req, _| {
                Response::json(200, req.text().unwrap_or("").to_string())
            })
            .get("/items/:id", |_, p| {
                Response::text(200, format!("item-{}", p.id("id").unwrap()))
            })
            .get("/stream", |_, _| {
                let mut remaining = 3;
                Response::stream(
                    200,
                    "application/x-ndjson",
                    Box::new(move || {
                        if remaining == 0 {
                            None
                        } else {
                            remaining -= 1;
                            Some(format!("{{\"n\":{remaining}}}\n").into_bytes())
                        }
                    }),
                )
            });
        serve(router).bind("127.0.0.1:0").unwrap()
    }

    #[test]
    fn serves_keep_alive_requests() {
        let server = test_server();
        let mut client = Client::new(server.local_addr().to_string());
        for _ in 0..3 {
            let resp = client.get("/ping").unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.text().unwrap(), "pong");
        }
        let resp = client.post_json("/echo", "{\"x\":1}").unwrap();
        assert_eq!(resp.text().unwrap(), "{\"x\":1}");
        let resp = client.get("/items/9").unwrap();
        assert_eq!(resp.text().unwrap(), "item-9");
        server.shutdown();
    }

    #[test]
    fn serves_chunked_streams() {
        let server = test_server();
        let mut client = Client::new(server.local_addr().to_string());
        let resp = client.get("/stream").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text().unwrap(), "{\"n\":2}\n{\"n\":1}\n{\"n\":0}\n");
        // The connection stays usable after a chunked response.
        assert_eq!(client.get("/ping").unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn unmatched_routes_get_404_and_405() {
        let server = test_server();
        let mut client = Client::new(server.local_addr().to_string());
        assert_eq!(client.get("/missing").unwrap().status, 404);
        assert_eq!(
            client
                .request(Method::Post, "/ping", None, Vec::new())
                .unwrap()
                .status,
            405
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = test_server();
        let addr = server.local_addr().to_string();
        let hits = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let hits = Arc::clone(&hits);
                thread::spawn(move || {
                    let mut client = Client::new(addr);
                    for _ in 0..20 {
                        assert_eq!(client.get("/ping").unwrap().status, 200);
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 160);
        server.shutdown();
    }

    #[test]
    fn malformed_and_oversized_requests_get_classified_statuses() {
        use std::io::{Read as _, Write as _};
        let server = test_server();
        let addr = server.local_addr();

        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(b"NOT-HTTP nonsense\r\n\r\n").unwrap();
        let mut reply = String::new();
        let _ = garbage.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");

        let mut oversized = TcpStream::connect(addr).unwrap();
        oversized.write_all(b"GET /ping HTTP/1.1\r\n").unwrap();
        let big = format!("x-big: {}\r\n\r\n", "y".repeat(crate::wire::MAX_HEAD_BYTES));
        oversized.write_all(big.as_bytes()).unwrap();
        let mut reply = String::new();
        let _ = oversized.read_to_string(&mut reply);
        assert!(reply.starts_with("HTTP/1.1 413"), "got: {reply}");

        server.shutdown();
    }

    #[test]
    fn slow_clients_are_evicted_with_408() {
        use std::io::{Read as _, Write as _};
        let router = Router::new().get("/ping", |_, _| Response::text(200, "pong"));
        let config = ServerConfig {
            limits: crate::wire::Limits {
                request_deadline: Some(Duration::from_millis(300)),
                ..crate::wire::Limits::default()
            },
            ..ServerConfig::default()
        };
        let server = serve(router).config(config).bind("127.0.0.1:0").unwrap();

        let mut slow = TcpStream::connect(server.local_addr()).unwrap();
        // Trickle a request head one fragment at a time, slower than the
        // deadline allows.
        let start = Instant::now();
        for fragment in ["GET /pi", "ng HT", "TP/1.1\r", "\n", "x-slow: 1\r"] {
            let _ = slow.write_all(fragment.as_bytes());
            thread::sleep(Duration::from_millis(150));
        }
        let mut reply = String::new();
        let _ = slow.read_to_string(&mut reply);
        assert!(
            reply.starts_with("HTTP/1.1 408") || reply.is_empty(),
            "got: {reply}"
        );
        assert!(start.elapsed() < Duration::from_secs(5));
        server.shutdown();
    }

    #[test]
    fn abort_returns_without_draining() {
        let server = test_server();
        let mut client = Client::new(server.local_addr().to_string());
        assert_eq!(client.get("/ping").unwrap().status, 200);
        let start = Instant::now();
        server.abort();
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn shutdown_unblocks_idle_connections() {
        let server = test_server();
        let mut client = Client::new(server.local_addr().to_string());
        assert_eq!(client.get("/ping").unwrap().status, 200);
        // The client connection is now idle in keep-alive; shutdown must not
        // hang waiting for it.
        let start = Instant::now();
        server.shutdown();
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
