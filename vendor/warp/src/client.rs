//! Minimal blocking HTTP/1.1 client with keep-alive and one reconnect
//! retry — enough for the CI smoke gate and the load generator. An optional
//! [`RetryPolicy`] upgrades it to exponential backoff with decorrelated
//! jitter and a bounded retry budget for fault-injection workloads.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::wire::{read_response, write_request};
use crate::Method;

/// Retry behaviour for [`Client::with_retry`].
///
/// Sleeps between attempts follow the "decorrelated jitter" scheme: each
/// sleep is drawn uniformly from `[base, prev * 3]`, clamped to `cap`, so
/// concurrent clients retrying after the same outage spread out instead of
/// stampeding in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry budget: how many times a failed request may be retried (the
    /// first attempt is not counted).
    pub budget: u32,
    /// Lower bound (and first-attempt base) for the backoff sleep.
    pub base: Duration,
    /// Upper clamp on any single backoff sleep.
    pub cap: Duration,
    /// Also retry responses with status 429/503 (honouring `Retry-After`
    /// when present). IO errors are always retried.
    pub retry_on_status: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(2),
            retry_on_status: false,
        }
    }
}

/// Tiny xorshift64* generator for jitter — not statistical quality, just
/// decorrelation between concurrent clients (no external RNG dependency).
fn jitter_step(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn decorrelated_sleep(policy: &RetryPolicy, prev: Duration, state: &mut u64) -> Duration {
    let lo = policy.base.as_millis() as u64;
    let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
    let span = hi - lo;
    let pick = lo + jitter_step(state) % span.max(1);
    Duration::from_millis(pick).min(policy.cap)
}

/// A response received by [`Client`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Full body (chunked bodies are reassembled).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::str::Utf8Error`] for non-UTF-8 bodies.
    pub fn text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking keep-alive client pinned to one server address.
pub struct Client {
    addr: String,
    conn: Option<Connection>,
    retry: Option<RetryPolicy>,
    jitter_state: u64,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`). No connection is made
    /// until the first request.
    pub fn new(addr: impl Into<String>) -> Client {
        let addr = addr.into();
        let mut hasher = DefaultHasher::new();
        addr.hash(&mut hasher);
        let jitter_state = hasher.finish() | 1;
        Client {
            addr,
            conn: None,
            retry: None,
            jitter_state,
        }
    }

    /// A client that retries failed requests under `policy` instead of the
    /// default single reconnect attempt.
    pub fn with_retry(addr: impl Into<String>, policy: RetryPolicy) -> Client {
        let mut client = Client::new(addr);
        client.retry = Some(policy);
        client
    }

    /// Points the client at a new server address, dropping any kept-alive
    /// connection (used when a restarted server comes back elsewhere).
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.conn = None;
    }

    fn connect(&mut self) -> io::Result<&mut Connection> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            let write_half = stream.try_clone()?;
            self.conn = Some(Connection {
                reader: BufReader::new(stream),
                writer: BufWriter::new(write_half),
            });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn try_once(
        &mut self,
        method: Method,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let addr = self.addr.clone();
        let conn = self.connect()?;
        write_request(&mut conn.writer, method, path, &addr, content_type, body)?;
        conn.writer.flush()?;
        let wire = read_response(&mut conn.reader)?;
        let close = wire
            .headers
            .iter()
            .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        if close {
            self.conn = None;
        }
        Ok(ClientResponse {
            status: wire.status,
            headers: wire.headers,
            body: wire.body,
        })
    }

    /// Sends a request. Without a [`RetryPolicy`] this reconnects once if
    /// the kept-alive connection was closed by the server in the meantime;
    /// with one ([`Client::with_retry`]) it retries IO failures — and
    /// optionally 429/503 responses — with decorrelated-jitter backoff
    /// until the retry budget runs out.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures once the retry budget is exhausted.
    pub fn request(
        &mut self,
        method: Method,
        path: &str,
        content_type: Option<&str>,
        body: Vec<u8>,
    ) -> io::Result<ClientResponse> {
        let Some(policy) = self.retry else {
            let had_conn = self.conn.is_some();
            return match self.try_once(method, path, content_type, &body) {
                Ok(resp) => Ok(resp),
                Err(_) if had_conn => {
                    self.conn = None;
                    self.try_once(method, path, content_type, &body)
                }
                Err(e) => Err(e),
            };
        };

        let mut sleep = policy.base;
        let mut remaining = policy.budget;
        loop {
            let outcome = self.try_once(method, path, content_type, &body);
            match outcome {
                Ok(resp) => {
                    let shed = policy.retry_on_status && matches!(resp.status, 429 | 503);
                    if !shed || remaining == 0 {
                        return Ok(resp);
                    }
                    // Honour an explicit Retry-After (seconds) when the
                    // server sheds load, otherwise back off with jitter.
                    let hint = resp
                        .header("retry-after")
                        .and_then(|v| v.trim().parse::<u64>().ok())
                        .map(Duration::from_secs);
                    sleep = hint.unwrap_or_else(|| {
                        decorrelated_sleep(&policy, sleep, &mut self.jitter_state)
                    });
                }
                Err(e) => {
                    self.conn = None;
                    if remaining == 0 {
                        return Err(e);
                    }
                    sleep = decorrelated_sleep(&policy, sleep, &mut self.jitter_state);
                }
            }
            remaining -= 1;
            std::thread::sleep(sleep.min(policy.cap));
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request(Method::Get, path, None, Vec::new())
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, json: impl Into<String>) -> io::Result<ClientResponse> {
        self.request(
            Method::Post,
            path,
            Some("application/json"),
            json.into().into_bytes(),
        )
    }

    /// `PATCH path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn patch_json(
        &mut self,
        path: &str,
        json: impl Into<String>,
    ) -> io::Result<ClientResponse> {
        self.request(
            Method::Patch,
            path,
            Some("application/json"),
            json.into().into_bytes(),
        )
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request(Method::Delete, path, None, Vec::new())
    }
}
