//! Minimal blocking HTTP/1.1 client with keep-alive and one reconnect
//! retry — enough for the CI smoke gate and the load generator.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;

use crate::wire::{read_response, write_request};
use crate::Method;

/// A response received by [`Client`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Full body (chunked bodies are reassembled).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::str::Utf8Error`] for non-UTF-8 bodies.
    pub fn text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking keep-alive client pinned to one server address.
pub struct Client {
    addr: String,
    conn: Option<Connection>,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:7878"`). No connection is made
    /// until the first request.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            conn: None,
        }
    }

    fn connect(&mut self) -> io::Result<&mut Connection> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            let write_half = stream.try_clone()?;
            self.conn = Some(Connection {
                reader: BufReader::new(stream),
                writer: BufWriter::new(write_half),
            });
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn try_once(
        &mut self,
        method: Method,
        path: &str,
        content_type: Option<&str>,
        body: &[u8],
    ) -> io::Result<ClientResponse> {
        let addr = self.addr.clone();
        let conn = self.connect()?;
        write_request(&mut conn.writer, method, path, &addr, content_type, body)?;
        conn.writer.flush()?;
        let wire = read_response(&mut conn.reader)?;
        let close = wire
            .headers
            .iter()
            .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"));
        if close {
            self.conn = None;
        }
        Ok(ClientResponse {
            status: wire.status,
            headers: wire.headers,
            body: wire.body,
        })
    }

    /// Sends a request, reconnecting once if the kept-alive connection was
    /// closed by the server in the meantime.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures after the reconnect retry.
    pub fn request(
        &mut self,
        method: Method,
        path: &str,
        content_type: Option<&str>,
        body: Vec<u8>,
    ) -> io::Result<ClientResponse> {
        let had_conn = self.conn.is_some();
        match self.try_once(method, path, content_type, &body) {
            Ok(resp) => Ok(resp),
            Err(_) if had_conn => {
                self.conn = None;
                self.try_once(method, path, content_type, &body)
            }
            Err(e) => Err(e),
        }
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request(Method::Get, path, None, Vec::new())
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, json: impl Into<String>) -> io::Result<ClientResponse> {
        self.request(
            Method::Post,
            path,
            Some("application/json"),
            json.into().into_bytes(),
        )
    }

    /// `PATCH path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn patch_json(
        &mut self,
        path: &str,
        json: impl Into<String>,
    ) -> io::Result<ClientResponse> {
        self.request(
            Method::Patch,
            path,
            Some("application/json"),
            json.into().into_bytes(),
        )
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn delete(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request(Method::Delete, path, None, Vec::new())
    }
}
