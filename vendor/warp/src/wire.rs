//! HTTP/1.1 wire format: request parsing and response writing, shared by the
//! server and the client.
//!
//! Reads cooperate with graceful shutdown: sockets carry a read timeout, and
//! every timeout consults an `abort` callback before retrying, so a
//! connection thread parked on a keep-alive read unblocks within one timeout
//! tick of shutdown being requested.

use std::io::{self, BufRead, Read, Write};

use crate::{Body, Method, Request, Response};

/// Upper bound on the request line plus headers.
pub(crate) const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (graph uploads can be large, but a body
/// beyond this is a client error, not a workload).
pub(crate) const MAX_BODY_BYTES: usize = 1 << 30;

/// What reading one request from a connection produced.
pub(crate) enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection between requests (clean keep-alive
    /// end).
    Closed,
    /// The abort callback asked us to stop (server shutdown).
    Aborted,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line, retrying on read timeouts until `abort`
/// says otherwise. Returns `None` on clean EOF before any byte of the line.
fn read_line<R: BufRead>(
    reader: &mut R,
    abort: &dyn Fn() -> bool,
    budget: &mut usize,
) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(_) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                if buf.last() != Some(&b'\n') {
                    return Err(invalid("connection closed mid-line"));
                }
                if buf.len() > *budget {
                    return Err(invalid("request head too large"));
                }
                *budget -= buf.len();
                while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
                    buf.pop();
                }
                return String::from_utf8(buf)
                    .map(Some)
                    .map_err(|_| invalid("non-UTF-8 request head"));
            }
            Err(e) if is_timeout(&e) => {
                if abort() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "aborted"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Reads exactly `len` bytes, retrying on read timeouts until `abort` says
/// otherwise.
fn read_exact_abortable<R: Read>(
    reader: &mut R,
    len: usize,
    abort: &dyn Fn() -> bool,
) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(invalid("connection closed mid-body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if abort() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "aborted"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(body)
}

/// Decodes `%XX` escapes and `+` (in query position) in-place.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into a decoded path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), pairs)
}

/// Parses one request off the connection. See [`ReadOutcome`].
pub(crate) fn read_request<R: BufRead>(
    reader: &mut R,
    abort: &dyn Fn() -> bool,
) -> io::Result<ReadOutcome> {
    let mut budget = MAX_HEAD_BYTES;
    let request_line = match read_line(reader, abort, &mut budget) {
        Ok(Some(line)) => line,
        Ok(None) => return Ok(ReadOutcome::Closed),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
        Err(e) => return Err(e),
    };

    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| invalid("unsupported method"))?;
    let target = parts.next().ok_or_else(|| invalid("missing target"))?;
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (path, query) = parse_target(target);

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, abort, &mut budget) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(invalid("connection closed mid-headers")),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| invalid("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("request body too large"));
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(invalid("chunked request bodies are not supported"));
    }
    let body = if content_length > 0 {
        match read_exact_abortable(reader, content_length, abort) {
            Ok(body) => body,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
            Err(e) => return Err(e),
        }
    } else {
        Vec::new()
    };

    Ok(ReadOutcome::Request(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Canonical reason phrase for the status codes the stand-in emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a full response, chunk-encoding streamed bodies. The stream is
/// pulled until exhaustion; a client that hangs up mid-stream surfaces as a
/// write error, which the caller treats as end-of-connection.
pub(crate) fn write_response<W: Write>(
    writer: &mut W,
    response: Response,
    keep_alive: bool,
) -> io::Result<()> {
    let Response {
        status,
        headers,
        body,
    } = response;
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in &headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    match body {
        Body::Bytes(bytes) => {
            head.push_str(&format!("content-length: {}\r\n\r\n", bytes.len()));
            writer.write_all(head.as_bytes())?;
            writer.write_all(&bytes)?;
        }
        Body::Stream(mut chunks) => {
            head.push_str("transfer-encoding: chunked\r\n\r\n");
            writer.write_all(head.as_bytes())?;
            while let Some(chunk) = chunks() {
                if chunk.is_empty() {
                    continue; // an empty chunk would terminate the stream
                }
                writer.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
                writer.write_all(&chunk)?;
                writer.write_all(b"\r\n")?;
            }
            writer.write_all(b"0\r\n\r\n")?;
        }
    }
    writer.flush()
}

/// Writes a client request with an optional body.
pub(crate) fn write_request<W: Write>(
    writer: &mut W,
    method: Method,
    path: &str,
    host: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {host}\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("content-type: {ct}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// A response as the client sees it.
pub(crate) struct WireResponse {
    pub(crate) status: u16,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
}

/// Reads a full response (fixed-length or chunked body). Blocks until the
/// body is complete, retrying on read timeouts (`abort` = never, for
/// clients).
pub(crate) fn read_response<R: BufRead>(reader: &mut R) -> io::Result<WireResponse> {
    let abort = || false;
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(reader, &abort, &mut budget)?
        .ok_or_else(|| invalid("connection closed before status line"))?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &abort, &mut budget)?
            .ok_or_else(|| invalid("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut body = Vec::new();
        loop {
            let size_line = read_line(reader, &abort, &mut budget.max(1024))?
                .ok_or_else(|| invalid("connection closed mid-chunks"))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid("bad chunk size"))?;
            if size == 0 {
                // Trailing CRLF after the terminal chunk.
                let _ = read_line(reader, &abort, &mut 1024)?;
                break;
            }
            if body.len() + size > MAX_BODY_BYTES {
                return Err(invalid("response body too large"));
            }
            body.extend_from_slice(&read_exact_abortable(reader, size, &abort)?);
            // Chunk payload is followed by CRLF.
            let _ = read_exact_abortable(reader, 2, &abort)?;
        }
        body
    } else {
        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| invalid("bad content-length"))
            })
            .transpose()?
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Err(invalid("response body too large"));
        }
        read_exact_abortable(reader, len, &abort)?
    };

    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &[u8]) -> io::Result<ReadOutcome> {
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        read_request(&mut reader, &|| false)
    }

    #[test]
    fn parses_a_full_request() {
        let raw = b"POST /v1/jobs?limit=2&q=a%20b HTTP/1.1\r\ncontent-type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        match parse(raw).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/v1/jobs");
                assert_eq!(req.query_param("limit"), Some("2"));
                assert_eq!(req.query_param("q"), Some("a b"));
                assert_eq!(req.header("content-type"), Some("application/json"));
                assert_eq!(req.body, b"{}");
            }
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
        assert!(parse(b"GET /x SMTP\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("x-big: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        assert!(parse(&raw).is_err());
    }

    #[test]
    fn fixed_response_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, Response::json(200, "{\"a\":1}"), true).unwrap();
        let mut reader = BufReader::new(Cursor::new(out));
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"a\":1}");
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "keep-alive"));
    }

    #[test]
    fn chunked_response_round_trips() {
        let chunks = vec![b"line one\n".to_vec(), Vec::new(), b"line two\n".to_vec()];
        let mut iter = chunks.into_iter();
        let body: crate::ChunkFn = Box::new(move || iter.next());
        let mut out = Vec::new();
        write_response(
            &mut out,
            Response::stream(200, "application/x-ndjson", body),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        let mut reader = BufReader::new(Cursor::new(out));
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.body, b"line one\nline two\n");
    }

    #[test]
    fn client_request_writes_wire_form() {
        let mut out = Vec::new();
        write_request(
            &mut out,
            Method::Patch,
            "/v1/graphs/3/edges",
            "127.0.0.1:80",
            Some("application/json"),
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("PATCH /v1/graphs/3/edges HTTP/1.1\r\n"));
        assert!(text.contains("content-length: 2"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb%zz", false), "a/b%zz");
        let (path, query) = parse_target("/x%20y?k=v+w&flag");
        assert_eq!(path, "/x y");
        assert_eq!(
            query,
            vec![("k".into(), "v w".into()), ("flag".into(), String::new())]
        );
    }
}
