//! HTTP/1.1 wire format: request parsing and response writing, shared by the
//! server and the client.
//!
//! Reads cooperate with graceful shutdown: sockets carry a read timeout, and
//! every timeout consults an `abort` callback before retrying, so a
//! connection thread parked on a keep-alive read unblocks within one timeout
//! tick of shutdown being requested.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::time::{Duration, Instant};

use crate::{Body, Method, Request, Response};

/// Upper bound on the request line plus headers.
pub(crate) const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Upper bound on a request body (graph uploads can be large, but a body
/// beyond this is a client error, not a workload).
pub(crate) const MAX_BODY_BYTES: usize = 1 << 30;

/// Default bound on how long a single request may take to arrive once its
/// first byte has been read (slowloris eviction). Idle keep-alive waits are
/// not counted.
pub(crate) const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Parsing limits applied to an incoming request.
///
/// `request_deadline` bounds the wall-clock time between the first byte of a
/// request arriving and the full head + body being read; a connection that
/// trickles bytes slower than that is evicted with a 408.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Upper bound on the request line plus headers, in bytes (maps to 413).
    pub max_head_bytes: usize,
    /// Upper bound on the declared request body, in bytes (maps to 413).
    pub max_body_bytes: usize,
    /// Slow-client eviction deadline; `None` disables it (maps to 408).
    pub request_deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
            request_deadline: Some(DEFAULT_REQUEST_DEADLINE),
        }
    }
}

/// Error payload carrying the HTTP status a wire failure should map to, so
/// the server can distinguish 413 (limit exceeded) and 408 (slow client)
/// from plain 400 parse errors.
#[derive(Debug)]
struct WireError {
    status: u16,
    msg: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl Error for WireError {}

/// Maps a wire-level error to the HTTP status the server should answer with
/// before closing the connection: 413 for exceeded limits, 408 for a
/// slow-client eviction, 400 for any other malformed input.
pub fn error_status(e: &io::Error) -> u16 {
    if let Some(wire) = e
        .get_ref()
        .and_then(|inner| inner.downcast_ref::<WireError>())
    {
        return wire.status;
    }
    match e.kind() {
        io::ErrorKind::TimedOut => 408,
        _ => 400,
    }
}

/// Tracks when the current request started arriving, for slow-client
/// eviction. The clock only starts on the first byte, so idle keep-alive
/// connections are never evicted.
struct RequestClock {
    deadline: Option<Duration>,
    started: Option<Instant>,
}

impl RequestClock {
    fn new(deadline: Option<Duration>) -> RequestClock {
        RequestClock {
            deadline,
            started: None,
        }
    }

    fn idle() -> RequestClock {
        RequestClock::new(None)
    }

    fn note_progress(&mut self) {
        if self.deadline.is_some() && self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    fn check(&self) -> io::Result<()> {
        if let (Some(deadline), Some(started)) = (self.deadline, self.started) {
            if started.elapsed() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    WireError {
                        status: 408,
                        msg: "request timed out (slow client)".to_string(),
                    },
                ));
            }
        }
        Ok(())
    }
}

/// What reading one request from a connection produced.
#[derive(Debug)]
pub(crate) enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection between requests (clean keep-alive
    /// end).
    Closed,
    /// The abort callback asked us to stop (server shutdown).
    Aborted,
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        WireError {
            status: 400,
            msg: msg.to_string(),
        },
    )
}

fn too_large(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        WireError {
            status: 413,
            msg: msg.to_string(),
        },
    )
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line, retrying on read timeouts until `abort`
/// says otherwise. Returns `None` on clean EOF before any byte of the line.
///
/// Works over `fill_buf`/`consume` rather than `read_until` so the head
/// budget and the slow-client clock are checked between socket reads — a
/// peer trickling one byte per timeout tick cannot buffer an unbounded line
/// or hold the connection past its deadline.
fn read_line<R: BufRead>(
    reader: &mut R,
    abort: &dyn Fn() -> bool,
    budget: &mut usize,
    clock: &mut RequestClock,
) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if is_timeout(&e) => {
                if abort() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "aborted"));
                }
                clock.check()?;
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(invalid("connection closed mid-line"));
        }
        let (consumed, complete) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        buf.extend_from_slice(&available[..consumed]);
        reader.consume(consumed);
        clock.note_progress();
        if buf.len() > *budget {
            return Err(too_large("request head too large"));
        }
        if complete {
            *budget -= buf.len();
            while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map(Some)
                .map_err(|_| invalid("non-UTF-8 request head"));
        }
        clock.check()?;
    }
}

/// Reads exactly `len` bytes, retrying on read timeouts until `abort` says
/// otherwise.
fn read_exact_abortable<R: Read>(
    reader: &mut R,
    len: usize,
    abort: &dyn Fn() -> bool,
    clock: &mut RequestClock,
) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(invalid("connection closed mid-body")),
            Ok(n) => {
                filled += n;
                clock.note_progress();
                clock.check()?;
            }
            Err(e) if is_timeout(&e) => {
                if abort() {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "aborted"));
                }
                clock.check()?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(body)
}

/// Decodes `%XX` escapes and `+` (in query position) in-place.
fn percent_decode(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into a decoded path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k, true), percent_decode(v, true)),
            None => (percent_decode(kv, true), String::new()),
        })
        .collect();
    (percent_decode(path, false), pairs)
}

/// Parses one request off the connection. See [`ReadOutcome`].
pub(crate) fn read_request<R: BufRead>(
    reader: &mut R,
    abort: &dyn Fn() -> bool,
    limits: &Limits,
) -> io::Result<ReadOutcome> {
    let mut budget = limits.max_head_bytes;
    let mut clock = RequestClock::new(limits.request_deadline);
    let request_line = match read_line(reader, abort, &mut budget, &mut clock) {
        Ok(Some(line)) => line,
        Ok(None) => return Ok(ReadOutcome::Closed),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
        Err(e) => return Err(e),
    };

    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| invalid("unsupported method"))?;
    let target = parts.next().ok_or_else(|| invalid("missing target"))?;
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (path, query) = parse_target(target);

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, abort, &mut budget, &mut clock) {
            Ok(Some(line)) => line,
            Ok(None) => return Err(invalid("connection closed mid-headers")),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| invalid("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > limits.max_body_bytes {
        return Err(too_large("request body too large"));
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(invalid("chunked request bodies are not supported"));
    }
    let body = if content_length > 0 {
        match read_exact_abortable(reader, content_length, abort, &mut clock) {
            Ok(body) => body,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(ReadOutcome::Aborted),
            Err(e) => return Err(e),
        }
    } else {
        Vec::new()
    };

    Ok(ReadOutcome::Request(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Canonical reason phrase for the status codes the stand-in emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a full response, chunk-encoding streamed bodies. The stream is
/// pulled until exhaustion; a client that hangs up mid-stream surfaces as a
/// write error, which the caller treats as end-of-connection.
pub(crate) fn write_response<W: Write>(
    writer: &mut W,
    response: Response,
    keep_alive: bool,
) -> io::Result<()> {
    let Response {
        status,
        headers,
        body,
    } = response;
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in &headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(if keep_alive {
        "connection: keep-alive\r\n"
    } else {
        "connection: close\r\n"
    });
    match body {
        Body::Bytes(bytes) => {
            head.push_str(&format!("content-length: {}\r\n\r\n", bytes.len()));
            writer.write_all(head.as_bytes())?;
            writer.write_all(&bytes)?;
        }
        Body::Stream(mut chunks) => {
            head.push_str("transfer-encoding: chunked\r\n\r\n");
            writer.write_all(head.as_bytes())?;
            while let Some(chunk) = chunks() {
                if chunk.is_empty() {
                    continue; // an empty chunk would terminate the stream
                }
                writer.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
                writer.write_all(&chunk)?;
                writer.write_all(b"\r\n")?;
            }
            writer.write_all(b"0\r\n\r\n")?;
        }
    }
    writer.flush()
}

/// Writes a client request with an optional body.
pub(crate) fn write_request<W: Write>(
    writer: &mut W,
    method: Method,
    path: &str,
    host: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {host}\r\n");
    if let Some(ct) = content_type {
        head.push_str(&format!("content-type: {ct}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// A response as the client sees it.
pub(crate) struct WireResponse {
    pub(crate) status: u16,
    pub(crate) headers: Vec<(String, String)>,
    pub(crate) body: Vec<u8>,
}

/// Reads a full response (fixed-length or chunked body). Blocks until the
/// body is complete, retrying on read timeouts (`abort` = never, for
/// clients).
pub(crate) fn read_response<R: BufRead>(reader: &mut R) -> io::Result<WireResponse> {
    let abort = || false;
    let mut budget = MAX_HEAD_BYTES;
    let mut clock = RequestClock::idle();
    let status_line = read_line(reader, &abort, &mut budget, &mut clock)?
        .ok_or_else(|| invalid("connection closed before status line"))?;
    let mut parts = status_line.split_ascii_whitespace();
    let version = parts.next().ok_or_else(|| invalid("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid("bad status code"))?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &abort, &mut budget, &mut clock)?
            .ok_or_else(|| invalid("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut body = Vec::new();
        loop {
            let size_line = read_line(reader, &abort, &mut budget.max(1024), &mut clock)?
                .ok_or_else(|| invalid("connection closed mid-chunks"))?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| invalid("bad chunk size"))?;
            if size == 0 {
                // Trailing CRLF after the terminal chunk.
                let _ = read_line(reader, &abort, &mut 1024, &mut clock)?;
                break;
            }
            if body.len() + size > MAX_BODY_BYTES {
                return Err(invalid("response body too large"));
            }
            body.extend_from_slice(&read_exact_abortable(reader, size, &abort, &mut clock)?);
            // Chunk payload is followed by CRLF.
            let _ = read_exact_abortable(reader, 2, &abort, &mut clock)?;
        }
        body
    } else {
        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| {
                v.parse::<usize>()
                    .map_err(|_| invalid("bad content-length"))
            })
            .transpose()?
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Err(invalid("response body too large"));
        }
        read_exact_abortable(reader, len, &abort, &mut clock)?
    };

    Ok(WireResponse {
        status,
        headers,
        body,
    })
}

/// Parses a single request from an in-memory byte buffer, applying `limits`.
///
/// Returns `Ok(Some(request))` for a complete request, `Ok(None)` for clean
/// EOF before any byte, and `Err` for malformed or over-limit input — feed
/// the error to [`error_status`] for the 400/408/413 the server would answer
/// with. This is the fuzzing and proxy hook: it exercises exactly the code
/// path `serve` runs on live connections.
pub fn parse_request_bytes(raw: &[u8], limits: &Limits) -> io::Result<Option<Request>> {
    let mut reader = io::BufReader::new(io::Cursor::new(raw.to_vec()));
    match read_request(&mut reader, &|| false, limits)? {
        ReadOutcome::Request(request) => Ok(Some(request)),
        ReadOutcome::Closed => Ok(None),
        ReadOutcome::Aborted => Err(invalid("aborted")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn parse(raw: &[u8]) -> io::Result<ReadOutcome> {
        let mut reader = BufReader::new(Cursor::new(raw.to_vec()));
        read_request(&mut reader, &|| false, &Limits::default())
    }

    #[test]
    fn parses_a_full_request() {
        let raw = b"POST /v1/jobs?limit=2&q=a%20b HTTP/1.1\r\ncontent-type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        match parse(raw).unwrap() {
            ReadOutcome::Request(req) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/v1/jobs");
                assert_eq!(req.query_param("limit"), Some("2"));
                assert_eq!(req.query_param("q"), Some("a b"));
                assert_eq!(req.header("content-type"), Some("application/json"));
                assert_eq!(req.body, b"{}");
            }
            _ => panic!("expected a request"),
        }
    }

    #[test]
    fn clean_eof_is_closed_not_an_error() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(b"BREW /pot HTTP/1.1\r\n\r\n").is_err());
        assert!(parse(b"GET /x SMTP\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
        assert!(parse(b"GET /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn rejects_oversized_heads() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("x-big: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES)).as_bytes());
        let err = parse(&raw).unwrap_err();
        assert_eq!(error_status(&err), 413);
    }

    #[test]
    fn error_statuses_distinguish_parse_from_limit_failures() {
        let parse_err = parse(b"BREW /pot HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(error_status(&parse_err), 400);

        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let big_body = b"POST /x HTTP/1.1\r\ncontent-length: 9\r\n\r\n123456789";
        let err = parse_request_bytes(big_body, &limits).unwrap_err();
        assert_eq!(error_status(&err), 413);
    }

    #[test]
    fn parse_request_bytes_mirrors_read_request() {
        let limits = Limits::default();
        let req = parse_request_bytes(b"GET /v1/healthz HTTP/1.1\r\n\r\n", &limits)
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/healthz");
        assert!(parse_request_bytes(b"", &limits).unwrap().is_none());
        assert!(parse_request_bytes(b"garbage\r\n\r\n", &limits).is_err());
    }

    #[test]
    fn fixed_response_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, Response::json(200, "{\"a\":1}"), true).unwrap();
        let mut reader = BufReader::new(Cursor::new(out));
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"a\":1}");
        assert!(resp
            .headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "keep-alive"));
    }

    #[test]
    fn chunked_response_round_trips() {
        let chunks = vec![b"line one\n".to_vec(), Vec::new(), b"line two\n".to_vec()];
        let mut iter = chunks.into_iter();
        let body: crate::ChunkFn = Box::new(move || iter.next());
        let mut out = Vec::new();
        write_response(
            &mut out,
            Response::stream(200, "application/x-ndjson", body),
            false,
        )
        .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.contains("transfer-encoding: chunked"));
        let mut reader = BufReader::new(Cursor::new(out));
        let resp = read_response(&mut reader).unwrap();
        assert_eq!(resp.body, b"line one\nline two\n");
    }

    #[test]
    fn client_request_writes_wire_form() {
        let mut out = Vec::new();
        write_request(
            &mut out,
            Method::Patch,
            "/v1/graphs/3/edges",
            "127.0.0.1:80",
            Some("application/json"),
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("PATCH /v1/graphs/3/edges HTTP/1.1\r\n"));
        assert!(text.contains("content-length: 2"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb%zz", false), "a/b%zz");
        let (path, query) = parse_target("/x%20y?k=v+w&flag");
        assert_eq!(path, "/x y");
        assert_eq!(
            query,
            vec![("k".into(), "v w".into()), ("flag".into(), String::new())]
        );
    }
}
