//! Offline stand-in for the `warp` web framework.
//!
//! The build environment has no crates.io access, so — like the other
//! `vendor/` crates — this is an API-shaped miniature, not the real thing:
//! enough HTTP/1.1 to host the workspace's graph-service daemon and to load
//! it from tests and benchmarks, implemented entirely on `std`:
//!
//! * [`Router`] — method + path-pattern routing (`/v1/jobs/:id`) to plain
//!   `Fn(&Request, &PathParams) -> Response` handlers, with an optional
//!   [`Middleware`] hook (per-endpoint metrics) around every dispatch.
//! * [`serve`] / [`Server`] — a threaded HTTP/1.1 server on a std
//!   [`TcpListener`](std::net::TcpListener): one thread per connection,
//!   keep-alive, bounded request heads/bodies, and cooperative graceful
//!   shutdown (read timeouts double as shutdown polls, so no connection
//!   thread ever blocks past [`Server::shutdown`]).
//! * [`Body::Stream`] — pull-based chunked transfer encoding, the transport
//!   behind the daemon's live NDJSON trace streaming.
//! * [`Client`] — a minimal blocking keep-alive client (the "vendored
//!   client" used by the CI smoke gate and the load generator).
//!
//! Differences from real warp are deliberate and documented here rather
//! than papered over: there is no `Filter` combinator algebra (the gral-style
//! services this repo mirrors use warp filters only as method/path/body
//! plumbing, which [`Router`] covers), no TLS, no async — requests are
//! served by blocking threads, which is exactly right for a daemon whose
//! jobs run on a worker pool anyway.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod router;
mod server;
mod wire;

pub use client::{Client, ClientResponse, RetryPolicy};
pub use router::{Middleware, PathParams, Router, UNMATCHED};
pub use server::{serve, Server, ServerBuilder, ServerConfig};
pub use wire::{error_status, parse_request_bytes, Limits};

use std::fmt;

/// HTTP request methods the router dispatches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `PUT`
    Put,
    /// `PATCH`
    Patch,
    /// `DELETE`
    Delete,
    /// `HEAD`
    Head,
    /// `OPTIONS`
    Options,
}

impl Method {
    /// Parses the uppercase wire form (`"GET"`, `"POST"`, …).
    pub fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "POST" => Some(Method::Post),
            "PUT" => Some(Method::Put),
            "PATCH" => Some(Method::Patch),
            "DELETE" => Some(Method::Delete),
            "HEAD" => Some(Method::Head),
            "OPTIONS" => Some(Method::Options),
            _ => None,
        }
    }

    /// The uppercase wire form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Patch => "PATCH",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::str::Utf8Error`] for non-UTF-8 bodies.
    pub fn text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// Pull-based chunk source for streaming response bodies: called repeatedly
/// until it returns `None`; each `Some` becomes one chunk on the wire. The
/// callback may block briefly (e.g. waiting for a running job to emit more
/// trace lines).
pub type ChunkFn = Box<dyn FnMut() -> Option<Vec<u8>> + Send>;

/// A response body: fixed bytes (sent with `Content-Length`) or a pull-based
/// stream (sent with `Transfer-Encoding: chunked`).
pub enum Body {
    /// In-memory body.
    Bytes(Vec<u8>),
    /// Streamed body; see [`ChunkFn`].
    Stream(ChunkFn),
}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Body::Bytes(b) => f.debug_tuple("Bytes").field(&b.len()).finish(),
            Body::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

/// An HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Status code (e.g. 200).
    pub status: u16,
    /// Extra headers (`Content-Length` / `Transfer-Encoding` / `Connection`
    /// are added by the writer; do not set them here).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Body,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Body::Bytes(Vec::new()),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status)
            .header("content-type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response (the body must already be JSON).
    pub fn json(status: u16, json: impl Into<String>) -> Response {
        Response::new(status)
            .header("content-type", "application/json")
            .with_body(json.into().into_bytes())
    }

    /// A chunked streaming response with the given content type.
    pub fn stream(status: u16, content_type: &str, chunks: ChunkFn) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), content_type.into())],
            body: Body::Stream(chunks),
        }
    }

    /// Adds a header (builder style).
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// Replaces the body (builder style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = Body::Bytes(body);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_round_trips() {
        for m in [
            Method::Get,
            Method::Post,
            Method::Put,
            Method::Patch,
            Method::Delete,
            Method::Head,
            Method::Options,
        ] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
            assert_eq!(format!("{m}"), m.as_str());
        }
        assert_eq!(Method::parse("BREW"), None);
    }

    #[test]
    fn request_accessors() {
        let req = Request {
            method: Method::Get,
            path: "/v1/jobs".into(),
            query: vec![("limit".into(), "5".into())],
            headers: vec![("content-type".into(), "application/json".into())],
            body: b"{}".to_vec(),
        };
        assert_eq!(req.header("Content-Type"), Some("application/json"));
        assert_eq!(req.header("x-missing"), None);
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("offset"), None);
        assert_eq!(req.text().unwrap(), "{}");
    }

    #[test]
    fn response_builders() {
        let r = Response::json(201, "{\"ok\":true}").header("x-extra", "1");
        assert_eq!(r.status, 201);
        assert_eq!(r.headers.len(), 2);
        match &r.body {
            Body::Bytes(b) => assert_eq!(b, b"{\"ok\":true}"),
            Body::Stream(_) => panic!("expected bytes"),
        }
        let s = Response::stream(200, "application/x-ndjson", Box::new(|| None));
        assert!(matches!(s.body, Body::Stream(_)));
        assert!(format!("{:?}", s.body).contains("Stream"));
    }
}
