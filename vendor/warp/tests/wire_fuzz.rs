//! Property fuzz of the request parser ([`warp::parse_request_bytes`]),
//! which exercises exactly the code path `serve` runs on live connection
//! bytes. The properties:
//!
//! 1. **No panic, ever** — arbitrary bytes, truncations of valid requests,
//!    hostile header blocks, and binary garbage all return `Ok`/`Err`,
//!    never unwind;
//! 2. **Every parse error maps to a client-visible status** — feeding the
//!    error to [`warp::error_status`] yields 400 (malformed) or 413 (over
//!    limit); nothing falls through to a 5xx or a connection-only failure
//!    (408 needs a wall clock and cannot happen on an in-memory buffer);
//! 3. **Limits are enforced** — oversized header blocks and oversized
//!    declared bodies are rejected with 413, chunked transfer encoding and
//!    non-UTF-8 request heads with 400;
//! 4. **Truncation never fabricates a request** — any strict prefix of a
//!    valid request with a body either fails to parse or (for the empty
//!    prefix) reports a clean EOF; it never yields a request with the
//!    wrong body.

use proptest::prelude::*;
use warp::{error_status, parse_request_bytes, Limits};

const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/_-";
const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz-0123456789";
const VALUE_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz 0123456789.;=";
const UPPER_CHARS: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";

/// Maps charset indices (what the stand-in proptest can generate) to a
/// string over that charset.
fn pick_string(charset: &[u8], picks: &[usize]) -> String {
    picks
        .iter()
        .map(|&i| charset[i % charset.len()] as char)
        .collect()
}

fn small_limits() -> Limits {
    Limits {
        max_head_bytes: 256,
        max_body_bytes: 1024,
        request_deadline: None,
    }
}

/// A syntactically valid request with a `Content-Length` body.
fn valid_request(path: &str, headers: &[(String, String)], body: &[u8]) -> Vec<u8> {
    let mut raw = format!("POST {path} HTTP/1.1\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut bytes = raw.into_bytes();
    bytes.extend_from_slice(body);
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_and_errors_stay_client_side(
        raw in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        for limits in [Limits::default(), small_limits()] {
            match parse_request_bytes(&raw, &limits) {
                Ok(Some(req)) => prop_assert!(req.body.len() <= limits.max_body_bytes),
                Ok(None) => prop_assert!(raw.is_empty(), "EOF reported on non-empty input"),
                Err(e) => {
                    let status = error_status(&e);
                    prop_assert!(status == 400 || status == 413, "mapped to {status}: {e}");
                }
            }
        }
    }

    #[test]
    fn http_shaped_garbage_never_panics(
        method in proptest::collection::vec(0usize..26, 1..9),
        target in proptest::collection::vec(0x20u8..0x7f, 0..64),
        version in proptest::collection::vec(0x20u8..0x7f, 0..13),
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut raw = pick_string(UPPER_CHARS, &method).into_bytes();
        raw.push(b' ');
        raw.extend_from_slice(&target);
        raw.push(b' ');
        raw.extend_from_slice(&version);
        raw.extend_from_slice(b"\r\n");
        raw.extend_from_slice(&tail);
        for limits in [Limits::default(), small_limits()] {
            if let Err(e) = parse_request_bytes(&raw, &limits) {
                let status = error_status(&e);
                prop_assert!(status == 400 || status == 413, "mapped to {status}: {e}");
            }
        }
    }

    #[test]
    fn truncated_valid_requests_never_fabricate_a_request(
        path_picks in proptest::collection::vec(0usize..64, 0..25),
        header_picks in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..64, 1..12),
                proptest::collection::vec(0usize..64, 0..24),
            ),
            0..5,
        ),
        body in proptest::collection::vec(any::<u8>(), 1..128),
        cut_frac in 0.0f64..1.0,
    ) {
        let path = format!("/{}", pick_string(PATH_CHARS, &path_picks));
        let headers: Vec<(String, String)> = header_picks
            .iter()
            .map(|(n, v)| {
                // A leading letter keeps the name parseable after trim.
                (format!("x{}", pick_string(NAME_CHARS, n)), pick_string(VALUE_CHARS, v))
            })
            .collect();
        let full = valid_request(&path, &headers, &body);
        let limits = Limits::default();

        // The full request parses and round-trips its parts.
        let req = parse_request_bytes(&full, &limits)
            .expect("valid request must parse")
            .expect("valid request is not EOF");
        prop_assert_eq!(&req.path, &path);
        prop_assert_eq!(&req.body, &body);

        // Any strict prefix is an error (or a clean EOF when empty).
        let cut = ((full.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < full.len());
        match parse_request_bytes(&full[..cut], &limits) {
            Ok(Some(early)) => prop_assert!(
                false,
                "truncation at {cut}/{} fabricated a request with body {:?}",
                full.len(),
                early.body
            ),
            Ok(None) => prop_assert!(cut == 0, "EOF reported mid-request at {cut}"),
            Err(e) => {
                let status = error_status(&e);
                prop_assert!(status == 400 || status == 413, "mapped to {status}: {e}");
            }
        }
    }

    #[test]
    fn oversized_header_blocks_are_rejected_with_413(
        pad in 257usize..2048,
    ) {
        let raw = format!("GET /ok HTTP/1.1\r\nx-pad: {}\r\n\r\n", "a".repeat(pad));
        let e = parse_request_bytes(raw.as_bytes(), &small_limits())
            .expect_err("head beyond max_head_bytes must be rejected");
        prop_assert_eq!(error_status(&e), 413);
    }

    #[test]
    fn oversized_declared_bodies_are_rejected_with_413(
        declared in 1025usize..usize::MAX / 2,
    ) {
        let raw = format!("POST /ok HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let e = parse_request_bytes(raw.as_bytes(), &small_limits())
            .expect_err("body beyond max_body_bytes must be rejected");
        prop_assert_eq!(error_status(&e), 413);
    }

    #[test]
    fn chunked_encoding_is_rejected_with_400(
        size_picks in proptest::collection::vec(0usize..16, 1..5),
    ) {
        let chunks = pick_string(b"0123456789abcdef", &size_picks);
        let raw = format!(
            "POST /ok HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{chunks}\r\nxx\r\n0\r\n\r\n"
        );
        let e = parse_request_bytes(raw.as_bytes(), &Limits::default())
            .expect_err("chunked bodies are unsupported and must be rejected");
        prop_assert_eq!(error_status(&e), 400);
    }

    #[test]
    fn non_utf8_request_heads_are_rejected_with_400(
        junk in proptest::collection::vec(0x80u8..=0xff, 1..32),
    ) {
        let mut raw = b"GET /".to_vec();
        raw.extend_from_slice(&junk);
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        // Random high bytes can happen to be valid UTF-8 (e.g. a two-byte
        // sequence); only a head that is *not* valid UTF-8 must map to 400.
        prop_assume!(String::from_utf8(raw.clone()).is_err());
        let e = parse_request_bytes(&raw, &Limits::default())
            .expect_err("non-UTF-8 head must be rejected");
        prop_assert_eq!(error_status(&e), 400);
    }
}
