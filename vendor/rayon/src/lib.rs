//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the rayon API the workspace uses —
//! `into_par_iter().map(f).collect()` — with genuine data parallelism:
//! items are split into one contiguous chunk per available CPU core and
//! mapped on scoped `std::thread`s, preserving input order in the output.
//! There is no work stealing; for the workspace's use case (equal-cost
//! independent simulation trials) static chunking is a good fit.

use std::ops::Range;

pub mod prelude {
    //! Glob-importable parallel iterator traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a materialized item list plus a mapping pipeline.
pub trait ParallelIterator: Sized {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Runs the pipeline and returns the results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// A materialized source of items (the root of every pipeline).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.base.run(), &self.f)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = ParIter<u64>;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Maps `items` through `f` on scoped threads, one contiguous chunk per
/// core, and concatenates the chunk results in order.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1_000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1_000);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(distinct >= 1 && distinct <= cores.max(1));
        if cores > 1 {
            assert!(distinct > 1, "expected work on more than one thread");
        }
    }

    #[test]
    fn empty_and_vec_sources() {
        let empty: Vec<usize> = (0..0usize).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
