//! Offline stand-in for `rayon`.
//!
//! Implements the slice of the rayon API the workspace uses with genuine
//! data parallelism on scoped `std::thread`s:
//!
//! * `into_par_iter().map(f).collect()` — items are split into one
//!   contiguous chunk per available CPU core and mapped in parallel,
//!   preserving input order in the output;
//! * [`ThreadPoolBuilder`]/[`ThreadPool`] with
//!   [`broadcast`](ThreadPool::broadcast) — run one closure instance per pool thread
//!   and collect the results in thread-index order, the fork-join primitive
//!   the intra-round parallel engine of `mis-core` is built on;
//! * [`scope`] — spawn borrowing closures that all join before `scope`
//!   returns (used to hand out disjoint `&mut` chunks).
//!
//! There is no work stealing and no persistent worker pool; threads are
//! scoped per call. For the workspace's use cases (equal-cost independent
//! simulation trials; statically chunked intra-round phases) static
//! chunking is a good fit.

use std::ops::Range;

/// Builder for a fixed-size [`ThreadPool`], mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (all available cores).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of threads; `0` (the default) means one per
    /// available core.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in this stand-in; the `Result` mirrors
    /// the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A fixed-size thread pool. The stand-in keeps no persistent workers;
/// each [`broadcast`](ThreadPool::broadcast) call spawns scoped threads.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Context passed to every [`broadcast`](ThreadPool::broadcast) closure
/// instance, mirroring `rayon::BroadcastContext`.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastContext {
    index: usize,
    num_threads: usize,
}

impl BroadcastContext {
    /// Index of this closure instance in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of closure instances the broadcast runs.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

impl ThreadPool {
    /// Number of threads in the pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs one instance of `f` per pool thread and returns the results in
    /// thread-index order. With a single thread the closure runs inline on
    /// the caller (no spawn).
    pub fn broadcast<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(BroadcastContext) -> R + Sync,
        R: Send,
    {
        let num_threads = self.threads.max(1);
        if num_threads == 1 {
            return vec![f(BroadcastContext {
                index: 0,
                num_threads: 1,
            })];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..num_threads)
                .map(|index| {
                    let f = &f;
                    scope.spawn(move || f(BroadcastContext { index, num_threads }))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in broadcast worker panicked"))
                .collect()
        })
    }
}

/// A scope for spawning borrowing tasks, mirroring `rayon::Scope`: every
/// task spawned in the scope joins before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow local data and
/// are all joined before `scope` returns (panics in tasks propagate).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

pub mod prelude {
    //! Glob-importable parallel iterator traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a materialized item list plus a mapping pipeline.
pub trait ParallelIterator: Sized {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Runs the pipeline and returns the results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// A materialized source of items (the root of every pipeline).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.base.run(), &self.f)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = ParIter<u64>;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Maps `items` through `f` on scoped threads, one contiguous chunk per
/// core, and concatenates the chunk results in order.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1_000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1_000);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(distinct >= 1 && distinct <= cores.max(1));
        if cores > 1 {
            assert!(distinct > 1, "expected work on more than one thread");
        }
    }

    #[test]
    fn broadcast_runs_once_per_thread_in_index_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let out = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 4);
            ctx.index() * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Single-threaded pools run inline.
        let one = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(one.broadcast(|ctx| ctx.index()), vec![0]);
    }

    #[test]
    fn scope_joins_all_borrowing_tasks() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        super::scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn empty_and_vec_sources() {
        let empty: Vec<usize> = (0..0usize).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
