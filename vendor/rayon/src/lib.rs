//! Offline stand-in for `rayon` built around a **persistent worker pool**.
//!
//! Implements the slice of the rayon API the workspace uses, keeping the
//! rayon-shaped surface but replacing the old spawn-per-call scoped threads
//! with workers that live for the lifetime of their [`ThreadPool`]:
//!
//! * [`ThreadPoolBuilder`]/[`ThreadPool`] with
//!   [`broadcast`](ThreadPool::broadcast) — run one closure instance per pool
//!   thread and collect the results in thread-index order. Workers are
//!   spawned **once** when the pool is built and parked between dispatches
//!   (brief spin, then yield, then a condvar wait), so a dispatch costs a
//!   generation-counter publish and a wakeup instead of `threads` OS thread
//!   spawns. The caller participates as index 0, so an `N`-thread pool keeps
//!   `N - 1` workers.
//! * [`global_pool`] — the process-wide pool registry (one pool per distinct
//!   thread count, created on first use, alive for the rest of the process).
//!   This is how the round engine shares a single pool across engines,
//!   processes, and rounds.
//! * [`BroadcastContext::barrier`] — a sense-reversing (generation-counter)
//!   barrier over the participants of the current dispatch, so multi-phase
//!   round work can fuse into a single dispatch with internal barriers
//!   instead of paying one full dispatch per phase.
//! * [`ChunkQueue`] — chunk-granular work stealing: per-worker deques packed
//!   into one atomic word each; owners pop from the front, thieves steal the
//!   upper half from the back, so degree-skewed chunks don't serialize a
//!   phase on the worker that drew the fattest chunk.
//! * [`scope`] — spawn borrowing closures that all join before `scope`
//!   returns (scoped threads; used for coarse one-shot forks).
//! * `into_par_iter().map(f).collect()` — items are split into one
//!   contiguous chunk per available CPU core and mapped on scoped threads,
//!   preserving input order (used for trial-level parallelism, where each
//!   task is long-lived and spawn cost is noise).
//!
//! # Determinism
//!
//! Nothing here introduces observable nondeterminism for the workloads the
//! engine runs: `broadcast` returns results in participant-index order, and
//! the engine's use of [`ChunkQueue`] only varies *which worker* processes a
//! chunk — with counter-based randomness and commutative merges, that
//! mapping is invisible in the results.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Spin iterations before a waiter starts yielding its timeslice.
const SPIN_ROUNDS: u32 = 128;
/// Yield iterations before a parked waiter falls back to its condvar. Yields
/// matter on oversubscribed hosts (more pool threads than cores): a pure
/// spin would burn the preempted owner's quantum.
const YIELD_ROUNDS: u32 = 128;

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Locks a mutex, recovering the guard if a previous holder panicked (the
/// pool's own state is kept consistent by the dispatch protocol, not by the
/// critical sections).
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Builder for a fixed-size [`ThreadPool`], mirroring
/// `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count (all available cores).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of threads; `0` (the default) means one per
    /// available core.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool, spawning its persistent workers. Infallible in this
    /// stand-in; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        let threads = if self.num_threads == 0 {
            available_cores()
        } else {
            self.num_threads
        };
        Ok(ThreadPool::with_threads(threads))
    }
}

/// The type-erased job slot: a pointer to the dispatching call's stack-held
/// harness plus the monomorphized entry point that reconstitutes it.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    run: unsafe fn(*const (), usize),
}

unsafe fn noop_job(_data: *const (), _index: usize) {}

/// State shared between the pool handle and its workers.
///
/// The dispatch protocol: the (unique, `dispatch_lock`-holding) caller
/// writes `job`, stores the worker count into `remaining`, and bumps
/// `generation` with `Release`; workers spot the new generation with
/// `Acquire` (spin → yield → condvar), run the job, and decrement
/// `remaining` with `AcqRel` — the caller's `Acquire` wait on `remaining`
/// therefore observes every worker's writes. The job pointer stays valid
/// because the caller does not return (or unwind past the harness) until
/// `remaining` hits zero.
struct PoolShared {
    job: UnsafeCell<Job>,
    generation: AtomicU64,
    remaining: AtomicUsize,
    shutdown: AtomicBool,
    /// Set when any participant panics inside a dispatch; checked by
    /// [`BroadcastContext::barrier`] waiters so a panicking participant
    /// cannot deadlock the others, and surfaced by `broadcast` as a panic on
    /// the caller.
    panicked: AtomicBool,
    sleep: Mutex<()>,
    wake: Condvar,
    done_lock: Mutex<()>,
    done: Condvar,
}

// SAFETY: the raw job pointer is only dereferenced between a dispatch's
// generation bump and its completion join, during which the pointee (on the
// dispatching caller's stack) is alive; the closure behind it is `Sync` and
// its results are `Send` (enforced by `broadcast`'s bounds).
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next dispatch generation: spin, then yield, then park
        // on the condvar (re-checking under the lock to avoid lost wakeups).
        let mut spins = 0u32;
        let job = loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let generation = shared.generation.load(Ordering::Acquire);
            if generation != seen {
                seen = generation;
                break unsafe { *shared.job.get() };
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                let guard = lock_ignore_poison(&shared.sleep);
                if shared.generation.load(Ordering::Acquire) == seen
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    drop(shared.wake.wait(guard).unwrap_or_else(|e| e.into_inner()));
                }
                spins = 0;
            }
        };
        // Contain panics so the dispatch always completes: the flag turns a
        // worker assertion failure into a caller-side panic instead of a
        // hang.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data, index) }));
        if outcome.is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock_ignore_poison(&shared.done_lock);
            shared.done.notify_one();
        }
    }
}

/// Sense-reversing barrier over one dispatch's participants: the last
/// arriver resets the arrival counter and bumps the barrier generation;
/// everyone else waits for the generation to move. `AcqRel` on the arrival
/// counter plus `Release`/`Acquire` on the generation gives every
/// participant's pre-barrier writes happens-before every post-barrier read.
#[derive(Debug)]
struct BarrierState {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    participants: usize,
}

impl BarrierState {
    fn new(participants: usize) -> Self {
        BarrierState {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            participants,
        }
    }

    fn wait(&self, poison: &AtomicBool) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == generation {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                if poison.load(Ordering::SeqCst) {
                    panic!("a broadcast participant panicked before the barrier");
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Context passed to every [`broadcast`](ThreadPool::broadcast) closure
/// instance, mirroring `rayon::BroadcastContext` plus the dispatch-local
/// [`barrier`](Self::barrier).
#[derive(Debug, Clone, Copy)]
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    barrier: Option<&'a BarrierState>,
    poison: Option<&'a AtomicBool>,
    barrier_stat: Option<&'a AtomicU64>,
}

impl BroadcastContext<'_> {
    /// Index of this closure instance in `0..num_threads()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Number of closure instances the broadcast runs.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Waits until **every** participant of this dispatch has called
    /// `barrier()` the same number of times: a sense-reversing barrier that
    /// lets one dispatch hold several internally synchronized phases. All
    /// pre-barrier writes of all participants happen-before all post-barrier
    /// reads. On a single-participant dispatch this is free.
    ///
    /// Every participant must reach every barrier (skip the *work*, not the
    /// barrier, when a participant has no chunk).
    pub fn barrier(&self) {
        if self.index == 0 {
            if let Some(stat) = self.barrier_stat {
                stat.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let (Some(barrier), Some(poison)) = (self.barrier, self.poison) {
            barrier.wait(poison);
        }
    }
}

/// Cumulative dispatch statistics of one [`ThreadPool`]; see
/// [`ThreadPool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Number of `broadcast` calls (inline single-thread dispatches
    /// included).
    pub dispatches: u64,
    /// Number of explicit [`BroadcastContext::barrier`] rendezvous (each
    /// dispatch additionally ends in one implicit completion join).
    pub barriers: u64,
}

/// A fixed-size thread pool with persistent, parked workers.
///
/// Workers are spawned once in [`ThreadPoolBuilder::build`] and join only
/// when the pool is dropped; between dispatches they wait on a spin/yield/
/// condvar ladder. Concurrent `broadcast` calls from different threads are
/// serialized by an internal dispatch lock (each caller participates in its
/// own dispatch as index 0).
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
    /// Serializes dispatches: exactly one job may be in flight per pool.
    dispatch_lock: Mutex<()>,
    dispatches: AtomicU64,
    barriers: AtomicU64,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            job: UnsafeCell::new(Job {
                data: std::ptr::null(),
                run: noop_job,
            }),
            generation: AtomicU64::new(0),
            remaining: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mis-pool-{threads}-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            threads,
            workers,
            dispatch_lock: Mutex::new(()),
            dispatches: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
        }
    }

    /// Number of threads in the pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Cumulative dispatch/barrier counters, for instrumentation and the
    /// per-round phase-count assertions.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatches: self.dispatches.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }

    /// Runs one instance of `f` per pool thread and returns the results in
    /// thread-index order. The caller runs instance 0 itself; the parked
    /// workers run the rest. With a single thread the closure runs inline
    /// (no synchronization at all).
    pub fn broadcast<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        let num_threads = self.threads;
        if num_threads == 1 {
            return vec![f(BroadcastContext {
                index: 0,
                num_threads: 1,
                barrier: None,
                poison: None,
                barrier_stat: Some(&self.barriers),
            })];
        }

        struct ResultSlot<R>(UnsafeCell<Option<R>>);
        // SAFETY: each participant writes exactly its own slot; the
        // completion join orders the writes before the caller's reads.
        unsafe impl<R: Send> Sync for ResultSlot<R> {}

        struct Harness<'a, F, R> {
            f: &'a F,
            results: &'a [ResultSlot<R>],
            num_threads: usize,
            barrier: &'a BarrierState,
            poison: &'a AtomicBool,
            barrier_stat: &'a AtomicU64,
        }

        unsafe fn run_erased<F, R>(data: *const (), index: usize)
        where
            F: Fn(BroadcastContext<'_>) -> R + Sync,
            R: Send,
        {
            let harness = unsafe { &*(data as *const Harness<'_, F, R>) };
            let out = (harness.f)(BroadcastContext {
                index,
                num_threads: harness.num_threads,
                barrier: Some(harness.barrier),
                poison: Some(harness.poison),
                barrier_stat: Some(harness.barrier_stat),
            });
            unsafe { *harness.results[index].0.get() = Some(out) };
        }

        let barrier = BarrierState::new(num_threads);
        let results: Vec<ResultSlot<R>> = (0..num_threads)
            .map(|_| ResultSlot(UnsafeCell::new(None)))
            .collect();
        let harness = Harness {
            f: &f,
            results: &results,
            num_threads,
            barrier: &barrier,
            poison: &self.shared.panicked,
            barrier_stat: &self.barriers,
        };
        let data = &harness as *const Harness<'_, F, R> as *const ();

        let dispatch_guard = lock_ignore_poison(&self.dispatch_lock);
        let shared = &self.shared;
        shared.remaining.store(num_threads - 1, Ordering::Relaxed);
        unsafe {
            *shared.job.get() = Job {
                data,
                run: run_erased::<F, R>,
            };
        }
        shared.generation.fetch_add(1, Ordering::Release);
        // Lock-then-notify: a worker is either parked (gets the notify) or
        // still checking the generation (sees the new value under the lock).
        drop(lock_ignore_poison(&shared.sleep));
        shared.wake.notify_all();

        // The caller is participant 0. Contain its panics until the workers
        // are done — the harness must outlive every access.
        let caller_outcome =
            catch_unwind(AssertUnwindSafe(|| unsafe { run_erased::<F, R>(data, 0) }));
        if caller_outcome.is_err() {
            shared.panicked.store(true, Ordering::SeqCst);
        }

        // Completion join: spin, then yield, then park.
        let mut spins = 0u32;
        while shared.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else if spins < SPIN_ROUNDS + YIELD_ROUNDS {
                std::thread::yield_now();
            } else {
                let guard = lock_ignore_poison(&shared.done_lock);
                if shared.remaining.load(Ordering::Acquire) != 0 {
                    drop(shared.done.wait(guard).unwrap_or_else(|e| e.into_inner()));
                }
                spins = 0;
            }
        }
        let worker_panicked = shared.panicked.swap(false, Ordering::SeqCst);
        drop(dispatch_guard);

        match caller_outcome {
            Err(payload) => resume_unwind(payload),
            Ok(()) => {
                if worker_panicked {
                    panic!("a thread-pool worker panicked during broadcast");
                }
            }
        }
        results
            .into_iter()
            .map(|slot| {
                slot.0
                    .into_inner()
                    .expect("every broadcast participant writes its slot")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        drop(lock_ignore_poison(&self.shared.sleep));
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool registry: one persistent pool per distinct thread
/// count.
static POOLS: OnceLock<Mutex<Vec<Arc<ThreadPool>>>> = OnceLock::new();

/// Returns the process-wide persistent pool with exactly `threads` logical
/// threads (`0` means one per available core).
///
/// # Pool lifecycle
///
/// The pool (and its `threads - 1` parked workers) is created on the first
/// request for that thread count and then lives for the rest of the
/// process — callers share it via `Arc`, successive rounds and successive
/// engines reuse the same workers, and nothing is respawned per dispatch.
/// Concurrent broadcasts (e.g. from parallel simulation trials) serialize on
/// the pool's dispatch lock. A 1-thread "pool" has no workers and runs
/// broadcasts inline.
pub fn global_pool(threads: usize) -> Arc<ThreadPool> {
    let threads = if threads == 0 {
        available_cores()
    } else {
        threads
    };
    let mut pools = lock_ignore_poison(POOLS.get_or_init(|| Mutex::new(Vec::new())));
    if let Some(pool) = pools.iter().find(|p| p.current_num_threads() == threads) {
        return Arc::clone(pool);
    }
    let pool = Arc::new(ThreadPool::with_threads(threads));
    pools.push(Arc::clone(&pool));
    pool
}

const CHUNK_QUEUE_EMPTY_HI: u64 = u32::MAX as u64;

fn pack_range(lo: u64, hi: u64) -> u64 {
    (lo << 32) | hi
}

fn unpack_range(packed: u64) -> (u64, u64) {
    (packed >> 32, packed & CHUNK_QUEUE_EMPTY_HI)
}

enum Steal {
    Got(u64, u64),
    Retry,
    Empty,
}

/// Chunk-granular work-stealing deques: worker `w` owns a contiguous range
/// of chunk indices packed `(lo, hi)` into one atomic word. Owners pop
/// single chunks from the front (CAS `lo += 1`); a worker whose own deque is
/// empty steals the **upper half** of a victim's range from the back and
/// installs the remainder as its new deque. Every chunk is claimed exactly
/// once; the mapping of chunks to workers is scheduling-dependent, which is
/// invisible to counter-based randomness and commutative merges.
///
/// `pop` returns `None` after a full victim scan finds every deque empty;
/// chunks that are mid-transfer at that instant are finished by the worker
/// that claimed them (slight tail underutilization, never lost work).
#[derive(Debug)]
pub struct ChunkQueue {
    ranges: Vec<AtomicU64>,
}

impl ChunkQueue {
    /// Deals `chunks` chunk indices out to `workers` deques in contiguous
    /// even spans.
    pub fn new(chunks: usize, workers: usize) -> Self {
        assert!(
            chunks < u32::MAX as usize,
            "chunk count must fit in 32 bits"
        );
        let workers = workers.max(1);
        let base = chunks / workers;
        let extra = chunks % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut start = 0u64;
        for w in 0..workers {
            let size = (base + usize::from(w < extra)) as u64;
            ranges.push(AtomicU64::new(pack_range(start, start + size)));
            start += size;
        }
        ChunkQueue { ranges }
    }

    /// Claims the next chunk for `worker`: its own deque's front, else a
    /// steal. `None` once all deques are empty.
    pub fn pop(&self, worker: usize) -> Option<usize> {
        if let Some(chunk) = self.pop_front(worker) {
            return Some(chunk);
        }
        let k = self.ranges.len();
        loop {
            let mut contended = false;
            for offset in 1..k {
                let victim = (worker + offset) % k;
                match self.steal_back(victim) {
                    Steal::Got(lo, hi) => {
                        if hi > lo + 1 {
                            // Keep the rest as our new deque. A plain store
                            // is safe: only the owner publishes into its own
                            // slot and thieves skip empty slots, so no
                            // concurrent CAS can succeed against the stale
                            // empty value.
                            self.ranges[worker].store(pack_range(lo + 1, hi), Ordering::Release);
                        }
                        return Some(lo as usize);
                    }
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    fn pop_front(&self, worker: usize) -> Option<usize> {
        let slot = &self.ranges[worker];
        let mut current = slot.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack_range(current);
            if lo >= hi {
                return None;
            }
            match slot.compare_exchange_weak(
                current,
                pack_range(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize),
                Err(observed) => current = observed,
            }
        }
    }

    fn steal_back(&self, victim: usize) -> Steal {
        let slot = &self.ranges[victim];
        let current = slot.load(Ordering::Acquire);
        let (lo, hi) = unpack_range(current);
        if lo >= hi {
            return Steal::Empty;
        }
        let len = hi - lo;
        let take = len - len / 2;
        let mid = hi - take;
        match slot.compare_exchange(
            current,
            pack_range(lo, mid),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Steal::Got(mid, hi),
            Err(_) => Steal::Retry,
        }
    }
}

/// A scope for spawning borrowing tasks, mirroring `rayon::Scope`: every
/// task spawned in the scope joins before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a fork-join scope: tasks spawned on it may borrow local data and
/// are all joined before `scope` returns (panics in tasks propagate).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

pub mod prelude {
    //! Glob-importable parallel iterator traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// A parallel iterator: a materialized item list plus a mapping pipeline.
pub trait ParallelIterator: Sized {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Runs the pipeline and returns the results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and collects the results.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// A materialized source of items (the root of every pipeline).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn run(self) -> Vec<T> {
        self.items
    }
}

/// The result of [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        parallel_map(self.base.run(), &self.f)
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    type Iter = ParIter<u64>;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Maps `items` through `f` on scoped threads, one contiguous chunk per
/// core, and concatenates the chunk results in order. Scoped spawns are fine
/// here: the pipeline is used for coarse, long-lived tasks (whole simulation
/// trials), where spawn cost is noise.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = available_cores().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_size));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon stand-in worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..1_000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares.len(), 1_000);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, i * i);
        }
    }

    #[test]
    fn runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256usize)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let distinct = seen.lock().unwrap().len();
        let cores = super::available_cores();
        assert!(distinct >= 1 && distinct <= cores.max(1));
        if cores > 1 {
            assert!(distinct > 1, "expected work on more than one thread");
        }
    }

    #[test]
    fn broadcast_runs_once_per_thread_in_index_order() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        let out = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 4);
            ctx.index() * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        // Single-threaded pools run inline.
        let one = super::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(one.broadcast(|ctx| ctx.index()), vec![0]);
    }

    #[test]
    fn pool_workers_persist_across_dispatches() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let ids = Mutex::new(HashSet::new());
        for _ in 0..50 {
            pool.broadcast(|ctx| {
                if ctx.index() != 0 {
                    ids.lock().unwrap().insert(std::thread::current().id());
                }
            });
        }
        // 50 dispatches reuse the same 2 workers: persistent, not respawned.
        assert_eq!(ids.lock().unwrap().len(), 2);
        assert_eq!(pool.stats().dispatches, 50);
    }

    #[test]
    fn barrier_orders_phases_within_one_dispatch() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let phase1 = AtomicUsize::new(0);
        let out = pool.broadcast(|ctx| {
            phase1.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // After the barrier, every participant's increment is visible.
            let seen = phase1.load(Ordering::SeqCst);
            ctx.barrier();
            seen
        });
        assert_eq!(out, vec![4, 4, 4, 4]);
        assert_eq!(pool.stats().barriers, 2);
        assert_eq!(pool.stats().dispatches, 1);
    }

    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|ctx| {
                if ctx.index() == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a contained panic.
        let out = pool.broadcast(|ctx| ctx.index());
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn global_pool_is_shared_and_persistent() {
        let a = super::global_pool(3);
        let b = super::global_pool(3);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.current_num_threads(), 3);
        let zero = super::global_pool(0);
        assert_eq!(zero.current_num_threads(), super::available_cores());
    }

    #[test]
    fn chunk_queue_claims_every_chunk_exactly_once() {
        for &(chunks, workers) in &[(1usize, 1usize), (5, 2), (64, 4), (3, 8), (100, 3)] {
            let queue = super::ChunkQueue::new(chunks, workers);
            let claimed: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|s| {
                for w in 0..workers {
                    let queue = &queue;
                    let claimed = &claimed;
                    s.spawn(move || {
                        while let Some(c) = queue.pop(w) {
                            claimed[c].fetch_add(1, Ordering::SeqCst);
                        }
                    });
                }
            });
            for (c, slot) in claimed.iter().enumerate() {
                assert_eq!(
                    slot.load(Ordering::SeqCst),
                    1,
                    "chunk {c} ({chunks} chunks, {workers} workers)"
                );
            }
        }
    }

    #[test]
    fn chunk_queue_steals_from_a_loaded_victim() {
        // Worker 1 starts empty: everything it claims is stolen from 0.
        let queue = super::ChunkQueue::new(8, 2);
        let mut got = Vec::new();
        while let Some(c) = queue.pop(1) {
            got.push(c);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn scope_joins_all_borrowing_tasks() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        super::scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn empty_and_vec_sources() {
        let empty: Vec<usize> = (0..0usize).into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
