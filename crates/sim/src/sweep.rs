//! Parameter sweeps: run the same experiment across a range of graph sizes
//! or densities and tabulate the results (one row per parameter value).
//!
//! The experiment binaries in `crates/bench` use these helpers to print the
//! tables recorded in `EXPERIMENTS.md`.

use mis_core::init::InitStrategy;
use mis_core::ExecutionMode;
use serde::{Deserialize, Serialize};

use crate::runner::{run_experiment, ExperimentResult};
use crate::spec::{ExperimentSpec, GraphSpec};
use crate::stats::Summary;

/// One row of a sweep table: the parameter value and the summaries of the
/// experiment run at that value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The swept parameter value (e.g. `n` or `p`).
    pub parameter: f64,
    /// Label of the graph family at this point.
    pub graph_label: String,
    /// Registry key of the algorithm that ran.
    pub process_label: String,
    /// Execution mode of the engine processes (`sequential` / `parallel`).
    pub execution_mode: String,
    /// Worker threads per round (1 in sequential mode).
    pub threads: usize,
    /// Fraction of trials that stabilized within the budget.
    pub stabilized_fraction: f64,
    /// Summary of stabilization times (rounds).
    pub rounds: Summary,
    /// Summary of MIS sizes.
    pub mis_size: Summary,
    /// Summary of random bits used.
    pub random_bits: Summary,
}

/// A completed sweep: a list of rows in sweep order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepTable {
    /// Rows in the order the parameter values were supplied.
    pub rows: Vec<SweepRow>,
}

impl SweepTable {
    /// Renders the table as CSV (with header), suitable for plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "parameter,graph,process,execution_mode,threads,stabilized_fraction,rounds_mean,rounds_median,rounds_p90,rounds_max,mis_size_mean,random_bits_mean\n",
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{:.3},{:.2},{:.2},{:.2},{:.0},{:.2},{:.0}\n",
                row.parameter,
                row.graph_label,
                row.process_label,
                row.execution_mode,
                row.threads,
                row.stabilized_fraction,
                row.rounds.mean,
                row.rounds.median,
                row.rounds.p90,
                row.rounds.max,
                row.mis_size.mean,
                row.random_bits.mean,
            ));
        }
        out
    }

    /// Renders a human-readable fixed-width table for terminal output.
    pub fn to_pretty(&self) -> String {
        let mut out = format!(
            "{:>12} {:>26} {:>16} {:>8} {:>10} {:>10} {:>10}\n",
            "param", "graph", "process", "ok", "mean", "median", "p90"
        );
        for row in &self.rows {
            out.push_str(&format!(
                "{:>12} {:>26} {:>16} {:>7.0}% {:>10.1} {:>10.1} {:>10.1}\n",
                row.parameter,
                row.graph_label,
                row.process_label,
                100.0 * row.stabilized_fraction,
                row.rounds.mean,
                row.rounds.median,
                row.rounds.p90,
            ));
        }
        out
    }
}

/// Converts one experiment result into a sweep row tagged with `parameter`.
pub fn row_from_result(parameter: f64, result: &ExperimentResult) -> SweepRow {
    let stabilized = result.trials.iter().filter(|t| t.stabilized).count();
    SweepRow {
        parameter,
        graph_label: result.spec.graph.label(),
        process_label: result.spec.algorithm_key().to_string(),
        execution_mode: result.spec.execution.label().to_string(),
        threads: result.spec.execution.threads(),
        stabilized_fraction: if result.trials.is_empty() {
            0.0
        } else {
            stabilized as f64 / result.trials.len() as f64
        },
        rounds: result.rounds_summary(),
        mis_size: result.mis_size_summary(),
        random_bits: result.random_bits_summary(),
    }
}

/// Builds the large-n scale sweep: one sparse `G(n, d̄/n)` point per entry of
/// `ns`, at a fixed average degree `avg_degree`, suitable for feeding into
/// [`run_sweep`].
///
/// This is the workload the incremental round engine targets: at millions of
/// vertices a naive `O(n + m)`-per-round simulator spends almost all of its
/// time rescanning quiet regions, while the engine's cost tracks the active
/// frontier. Used by the `exp_scale` binary and the scale smoke tests.
///
/// # Panics
///
/// Panics if `avg_degree` is negative or exceeds `n - 1` for some `n` (the
/// edge probability must stay in `[0, 1]`).
pub fn scale_sweep_specs(
    ns: &[usize],
    avg_degree: f64,
    algorithm: &str,
    execution: ExecutionMode,
    trials: usize,
    base_seed: u64,
) -> Vec<(f64, ExperimentSpec)> {
    ns.iter()
        .map(|&n| {
            let p = if n <= 1 { 0.0 } else { avg_degree / n as f64 };
            assert!(
                (0.0..=1.0).contains(&p),
                "avg_degree {avg_degree} is invalid for n = {n}"
            );
            let spec = ExperimentSpec {
                name: format!("scale-{algorithm}-{}-n{n}", execution.label()),
                graph: GraphSpec::Gnp { n, p },
                algorithm: algorithm.to_string(),
                init: InitStrategy::Random,
                execution,
                trials,
                max_rounds: 1_000_000,
                base_seed,
                record_trace: false,
                ..ExperimentSpec::default()
            };
            (n as f64, spec)
        })
        .collect()
}

/// Runs one experiment per `(parameter, spec)` pair and collects the rows.
///
/// The caller supplies fully formed specs (typically produced by a closure
/// over the parameter), which keeps the sweep logic independent of which
/// field is being swept.
pub fn run_sweep<I>(points: I) -> SweepTable
where
    I: IntoIterator<Item = (f64, ExperimentSpec)>,
{
    let rows = points
        .into_iter()
        .map(|(parameter, spec)| {
            let result = run_experiment(&spec);
            row_from_result(parameter, &result)
        })
        .collect();
    SweepTable { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GraphSpec;
    use mis_core::init::InitStrategy;

    fn spec_for_n(n: usize) -> ExperimentSpec {
        ExperimentSpec {
            name: format!("sweep-n-{n}"),
            graph: GraphSpec::Complete { n },
            algorithm: "two-state".into(),
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            trials: 4,
            max_rounds: 100_000,
            base_seed: 5,
            record_trace: false,
            ..ExperimentSpec::default()
        }
    }

    #[test]
    fn sweep_produces_one_row_per_point() {
        let table = run_sweep(
            [8usize, 16, 32]
                .into_iter()
                .map(|n| (n as f64, spec_for_n(n))),
        );
        assert_eq!(table.rows.len(), 3);
        assert!(table.rows.iter().all(|r| r.stabilized_fraction == 1.0));
        assert!(table.rows.iter().all(|r| r.rounds.count == 4));
    }

    #[test]
    fn csv_and_pretty_have_expected_shape() {
        let table = run_sweep([(8.0, spec_for_n(8))]);
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("parameter,"));
        assert!(csv.contains("complete(n=8)"));
        // The CSV is self-describing about how the rows were executed.
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .contains("execution_mode,threads"));
        assert!(csv.contains(",sequential,1,"));
        let pretty = table.to_pretty();
        assert_eq!(pretty.lines().count(), 2);
        assert!(pretty.contains("two-state"));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let table = run_sweep(std::iter::empty());
        assert!(table.rows.is_empty());
        assert_eq!(table.to_csv().lines().count(), 1);
    }

    #[test]
    fn scale_specs_build_sparse_gnp_points() {
        let points = scale_sweep_specs(
            &[1_000, 10_000],
            8.0,
            "two-state",
            ExecutionMode::Sequential,
            2,
            9,
        );
        assert_eq!(points.len(), 2);
        for (param, spec) in &points {
            match spec.graph {
                GraphSpec::Gnp { n, p } => {
                    assert_eq!(n as f64, *param);
                    assert!((p * n as f64 - 8.0).abs() < 1e-9);
                }
                ref other => panic!("expected Gnp, got {other:?}"),
            }
        }
    }

    #[test]
    fn parallel_sweep_rows_record_their_execution() {
        let points = scale_sweep_specs(
            &[3_000],
            4.0,
            "two-state",
            ExecutionMode::Parallel { threads: 2 },
            1,
            33,
        );
        let table = run_sweep(points);
        assert_eq!(table.rows[0].execution_mode, "parallel");
        assert_eq!(table.rows[0].threads, 2);
        assert_eq!(table.rows[0].stabilized_fraction, 1.0);
        assert!(table.to_csv().contains(",parallel,2,"));
    }

    /// Large-n scale sweep end-to-end: a 40k-vertex sparse point runs to a
    /// valid MIS well within the debug-build test budget thanks to the
    /// activity-proportional round engine.
    #[test]
    fn large_n_scale_sweep_runs_quickly() {
        let points = scale_sweep_specs(
            &[40_000],
            6.0,
            "two-state",
            ExecutionMode::Sequential,
            1,
            21,
        );
        let table = run_sweep(points);
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].stabilized_fraction, 1.0);
    }
}
