//! Per-trial results and per-round traces.

use mis_core::StateCounts;
use serde::{Deserialize, Serialize};

/// The per-round evolution of the vertex partition of one trial, in the
/// notation of Section 2 of the paper (`|B_t|`, `|A_t|`, `|I_t|`, `|V_t|`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// `counts[t]` is the partition at the end of round `t` (index 0 is the
    /// initial configuration).
    pub counts: Vec<StateCounts>,
}

impl RoundTrace {
    /// Number of recorded rounds (including the initial configuration).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` if no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The earliest recorded round at which the number of non-stable vertices
    /// `|V_t|` dropped to at most `threshold`, if any.
    pub fn first_round_with_unstable_at_most(&self, threshold: usize) -> Option<usize> {
        self.counts.iter().position(|c| c.unstable <= threshold)
    }
}

/// Outcome of a single trial (one process run on one graph from one seed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Trial index within its experiment.
    pub trial: usize,
    /// Seed of the RNG stream that drove this trial.
    pub seed: u64,
    /// Number of vertices of the generated graph.
    pub n: usize,
    /// Number of edges of the generated graph.
    pub m: usize,
    /// Rounds until stabilization (equals `max_rounds` if it never stabilized).
    pub rounds: usize,
    /// Whether the process stabilized within the round budget.
    pub stabilized: bool,
    /// Whether the final black set is a maximal independent set (always
    /// checked; `false` only if `stabilized` is `false`).
    pub valid_mis: bool,
    /// Size of the final black set.
    pub mis_size: usize,
    /// Total random bits consumed by the process.
    pub random_bits: u64,
    /// States per vertex of the process that produced this result.
    pub states_per_vertex: usize,
    /// Optional per-round trace (only recorded when the experiment asked for it).
    pub trace: Option<RoundTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(unstable: usize) -> StateCounts {
        StateCounts {
            unstable,
            ..StateCounts::default()
        }
    }

    #[test]
    fn trace_queries() {
        let trace = RoundTrace {
            counts: vec![counts(10), counts(4), counts(0)],
        };
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
        assert_eq!(trace.first_round_with_unstable_at_most(5), Some(1));
        assert_eq!(trace.first_round_with_unstable_at_most(0), Some(2));
        assert_eq!(
            RoundTrace::default().first_round_with_unstable_at_most(0),
            None
        );
    }

    #[test]
    fn trial_result_serializes() {
        let t = TrialResult {
            trial: 0,
            seed: 7,
            n: 10,
            m: 20,
            rounds: 15,
            stabilized: true,
            valid_mis: true,
            mis_size: 4,
            random_bits: 99,
            states_per_vertex: 2,
            trace: Some(RoundTrace {
                counts: vec![counts(3)],
            }),
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: TrialResult = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
