//! Executes experiment specifications: one deterministic RNG stream per
//! trial, parallel trials, and MIS validation of every outcome.
//!
//! A trial resolves its algorithm through the string-keyed [`Registry`]
//! (see [`builtin_registry`]), builds the scheduler from the spec, and
//! hands both to [`drive_algorithm`], which streams per-round events to any
//! attached [`Observer`]s. Specs written before the registry redesign
//! resolve through the same path and are bit-identical to the pre-registry
//! harness (same RNG stream, same rounds, same MIS, same random-bit
//! counts), which the `tests/legacy_equivalence.rs` regression suite pins
//! down.
//!
//! Two layers of parallelism are available and composable per spec:
//! independent trials always run on the rayon trial pool
//! (`run_experiment`), and a spec whose `execution` is
//! [`ExecutionMode::Parallel`](mis_core::ExecutionMode::Parallel)
//! additionally runs each *round* of the engine processes in data-parallel
//! phases with counter-based randomness — the right choice when one trial
//! is a single huge graph.

use std::sync::Arc;

use mis_core::scheduler::Scheduler;
use mis_core::{Algorithm, AlgorithmConfig, ByzantineOverlay, Registry, StepCtx};
use mis_graph::traversal::{multi_source_bfs_distances, UNREACHABLE};
use mis_graph::{mis_check, Graph, VertexSet};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::churn::generate_burst;
use crate::metrics::{RoundTrace, TrialResult};
use crate::observer::{ByzantineRoundMetrics, Observer, TraceObserver};
use crate::registry::builtin_registry;
use crate::spec::{ChurnSpec, ExperimentSpec, FaultSpec};
use crate::stats::Summary;

/// Salt mixed into the per-trial seed to key the counter-based RNG of
/// parallel-mode runs (so the counter key is decorrelated from the ChaCha
/// stream that draws the graph and the initial states).
const COUNTER_SEED_SALT: u64 = 0x0005_EEDC_0DE0_FC01;

/// BFS radius around the Byzantine set within which instability is the
/// adversary's prerogative: a trial under a [`ByzantineOverlay`] terminates
/// once every unstable vertex lies inside this ball — the containment
/// guarantee of Cohen–Pirot–Pilard (stabilization outside `N²(B)`).
pub const CONTAINMENT_RADIUS: usize = 2;

/// Consecutive rounds a configuration must stay contained before the driver
/// declares containment and stops. Containment can be transient — an
/// oscillating adversary pushes instability waves across the zone boundary —
/// so a single contained snapshot is not proof the exterior has settled.
pub const CONTAINMENT_CONFIRM_ROUNDS: usize = 3;

/// Per-trial containment bookkeeping for a Byzantine run: the BFS levels
/// from the Byzantine set (cached per topology; refreshed after churn) and
/// the consecutive-contained-round counter.
struct ContainmentTracker<'a> {
    overlay: &'a ByzantineOverlay,
    /// BFS distance of each vertex to the nearest Byzantine vertex.
    dist: Vec<usize>,
    /// Number of vertices at distance at most [`CONTAINMENT_RADIUS`].
    zone_size: usize,
    /// Consecutive rounds the configuration has stayed contained.
    streak: usize,
}

impl<'a> ContainmentTracker<'a> {
    fn new(overlay: &'a ByzantineOverlay, graph: &Graph) -> Self {
        let mut tracker = ContainmentTracker {
            overlay,
            dist: Vec::new(),
            zone_size: 0,
            streak: 0,
        };
        tracker.refresh(graph);
        tracker
    }

    /// Recomputes the cached BFS levels against `graph` — called once up
    /// front and again after every topology mutation. Byzantine vertices
    /// that have departed the graph (churn) are dropped as sources.
    fn refresh(&mut self, graph: &Graph) {
        let sources = self
            .overlay
            .vertices()
            .into_iter()
            .filter(|&u| u < graph.n());
        self.dist = multi_source_bfs_distances(graph, sources);
        self.zone_size = self
            .dist
            .iter()
            .filter(|&&d| d <= CONTAINMENT_RADIUS)
            .count();
        self.streak = 0;
    }

    /// External disturbances (faults, churn) invalidate any running streak.
    fn reset_streak(&mut self) {
        self.streak = 0;
    }

    /// Applies the adversarial overrides for the current round, judges
    /// containment, streams the verdict to `observers`, and returns `true`
    /// once containment has held for [`CONTAINMENT_CONFIRM_ROUNDS`]
    /// consecutive rounds.
    fn round(&mut self, alg: &mut dyn Algorithm, observers: &mut [&mut dyn Observer]) -> bool {
        let overridden = self.overlay.apply(alg);
        // O(1) precheck: more unstable vertices than the zone can hold
        // proves some of them are outside it, without touching the set.
        let contained = alg.counts().unstable <= self.zone_size
            && alg
                .process()
                .unstable_set()
                .iter()
                .all(|u| self.dist[u] <= CONTAINMENT_RADIUS);
        if !observers.is_empty() {
            let metrics = self.metrics(alg, overridden, contained);
            for obs in observers.iter_mut() {
                obs.on_byzantine_round(alg.round(), &metrics);
            }
        }
        if contained {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        self.streak >= CONTAINMENT_CONFIRM_ROUNDS
    }

    /// The full distance histogram of the unstable set — only materialized
    /// when observers are attached.
    fn metrics(
        &self,
        alg: &dyn Algorithm,
        overridden: usize,
        contained: bool,
    ) -> ByzantineRoundMetrics {
        let mut metrics = ByzantineRoundMetrics {
            overridden,
            contained,
            ..ByzantineRoundMetrics::default()
        };
        for u in alg.process().unstable_set().iter() {
            let d = self.dist[u];
            if d == UNREACHABLE {
                metrics.unstable_unreachable += 1;
            } else {
                if metrics.unstable_by_distance.len() <= d {
                    metrics.unstable_by_distance.resize(d + 1, 0);
                }
                metrics.unstable_by_distance[d] += 1;
            }
        }
        metrics
    }
}

/// All trial results of one experiment plus the specification that produced
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The specification that was executed.
    pub spec: ExperimentSpec,
    /// One result per trial, in trial order.
    pub trials: Vec<TrialResult>,
}

impl ExperimentResult {
    /// `true` if every trial stabilized within its round budget.
    pub fn all_stabilized(&self) -> bool {
        self.trials.iter().all(|t| t.stabilized)
    }

    /// `true` if every stabilized trial produced a valid MIS.
    pub fn all_valid(&self) -> bool {
        self.trials.iter().all(|t| !t.stabilized || t.valid_mis)
    }

    /// Summary of stabilization times (in rounds) over all trials.
    pub fn rounds_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.rounds))
    }

    /// Summary of MIS sizes over all trials.
    pub fn mis_size_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.mis_size))
    }

    /// Summary of random bits used per trial.
    pub fn random_bits_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.random_bits as usize))
    }
}

/// Runs a single trial of `spec` with the RNG stream derived from
/// `spec.base_seed + trial`, resolving the algorithm in the builtin
/// registry.
///
/// The trial re-samples the graph (for random families), drives the
/// algorithm under the spec's scheduler to stabilization or until the round
/// budget is exhausted, validates the resulting black set, and returns the
/// full [`TrialResult`].
///
/// # Panics
///
/// Panics if the spec names an unknown algorithm, requests a
/// non-synchronous scheduler for an algorithm without partial-activation
/// support, requests fault injection for an algorithm that cannot be
/// corrupted, or attaches a Byzantine adversary to an algorithm without
/// Byzantine-override support.
pub fn run_trial(spec: &ExperimentSpec, trial: usize) -> TrialResult {
    run_trial_on(builtin_registry(), spec, trial, None)
}

/// [`run_trial`] with an explicit registry and an optional pre-generated
/// graph.
///
/// `shared_graph` is only sound for deterministic graph families
/// ([`GraphSpec::is_deterministic`](crate::spec::GraphSpec::is_deterministic)):
/// their generation consumes no randomness, so skipping it leaves the
/// trial's RNG stream — and therefore every result — unchanged.
fn run_trial_on(
    registry: &Registry,
    spec: &ExperimentSpec,
    trial: usize,
    shared_graph: Option<&Graph>,
) -> TrialResult {
    let seed = spec.base_seed.wrapping_add(trial as u64);
    let counter_seed = seed ^ COUNTER_SEED_SALT;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let generated;
    let graph = match shared_graph {
        Some(g) => {
            debug_assert!(
                spec.graph.is_deterministic(),
                "shared graphs require a deterministic family"
            );
            g
        }
        None => {
            generated = spec.graph.generate(&mut rng);
            &generated
        }
    };

    let key = spec.algorithm_key();
    let factory = registry.get(key).unwrap_or_else(|| {
        panic!(
            "no algorithm '{key}' in the registry (known: {})",
            registry.keys().join(", ")
        )
    });
    let config = AlgorithmConfig {
        init: spec.init,
        execution: spec.execution,
        strategy: spec.strategy,
        counter_seed,
    };
    let mut alg = factory.init(graph, &config, &mut rng);
    assert!(
        spec.scheduler.is_synchronous() || alg.supports_partial_activation(),
        "algorithm '{key}' does not support the {} scheduler (no partial activation)",
        spec.scheduler.label()
    );
    assert!(
        spec.fault.is_none() || alg.supports_fault_injection(),
        "algorithm '{key}' does not support fault injection"
    );
    assert!(
        spec.churn.is_none() || alg.supports_topology_change(),
        "algorithm '{key}' does not support topology changes (churn)"
    );
    assert!(
        spec.byzantine.is_none() || alg.supports_byzantine(),
        "algorithm '{key}' does not support Byzantine overrides"
    );

    // The adversary is keyed by its own seed (offset per trial), never by
    // the trial's sequential RNG stream: attaching or removing a Byzantine
    // spec must not shift any honest coin flip.
    let overlay = spec.byzantine.as_ref().map(|b| {
        let byz_seed = b.seed.wrapping_add(trial as u64);
        let victims = b.selection.resolve(graph, byz_seed);
        ByzantineOverlay::new(b.strategy, victims, byz_seed).with_resample(b.resample)
    });

    let mut scheduler = spec.scheduler.build();
    let mut trace_observer = (spec.record_trace && alg.supports_trace()).then(TraceObserver::new);
    let mut outcome = {
        let mut observers: Vec<&mut dyn Observer> = Vec::new();
        if let Some(obs) = trace_observer.as_mut() {
            observers.push(obs);
        }
        drive_algorithm(
            alg.as_mut(),
            scheduler.as_mut(),
            &mut rng,
            spec.max_rounds,
            spec.fault.clone(),
            spec.churn,
            overlay.as_ref(),
            &mut observers,
        )
    };
    outcome.trace = trace_observer.map(TraceObserver::into_trace);

    // Under churn the algorithm ends on a *mutated* graph: validate (and
    // report n/m) against the topology it actually stabilized on. Under a
    // Byzantine adversary the MIS property is only owed outside the
    // containment radius of the Byzantine set.
    let final_graph = alg.current_graph().unwrap_or(graph);
    let valid_mis = outcome.stabilized
        && match overlay.as_ref() {
            Some(overlay) => mis_check::is_mis_outside(
                final_graph,
                &outcome.black_set,
                &overlay.vertices(),
                CONTAINMENT_RADIUS,
            ),
            None => mis_check::is_mis(final_graph, &outcome.black_set),
        };
    TrialResult {
        trial,
        seed,
        n: final_graph.n(),
        m: final_graph.m(),
        rounds: outcome.rounds,
        stabilized: outcome.stabilized,
        valid_mis,
        mis_size: outcome.black_set.len(),
        random_bits: outcome.random_bits,
        states_per_vertex: outcome.states_per_vertex,
        trace: outcome.trace,
    }
}

/// Runs every trial of `spec`, in parallel, and collects the results in trial
/// order, resolving algorithms in the builtin registry.
///
/// For deterministic graph families (complete graphs, paths, cycles, stars,
/// grids, disjoint cliques) the graph is generated **once** and shared
/// across all trials behind an [`Arc`], instead of being regenerated per
/// trial — generation consumes no randomness for those families, so the
/// per-trial RNG streams (and all results) are unchanged.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    run_experiment_with(builtin_registry(), spec)
}

/// [`run_experiment`] against an explicit [`Registry`] — the entry point
/// for external algorithms registered outside this workspace.
pub fn run_experiment_with(registry: &Registry, spec: &ExperimentSpec) -> ExperimentResult {
    if let mis_core::ExecutionMode::Parallel { threads } = spec.execution {
        // Spawn (or fetch) the persistent worker pool before the trial loop
        // so the first timed round doesn't pay thread-creation cost.
        rayon::global_pool(mis_core::exec::resolve_threads(threads));
    }
    let shared_graph: Option<Arc<Graph>> = spec.graph.is_deterministic().then(|| {
        // The RNG is unused by deterministic generators; any seed works.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Arc::new(spec.graph.generate(&mut rng))
    });
    let shared_ref = &shared_graph;
    let trials: Vec<TrialResult> = (0..spec.trials)
        .into_par_iter()
        .map(|trial| run_trial_on(registry, spec, trial, shared_ref.as_deref()))
        .collect();
    ExperimentResult {
        spec: spec.clone(),
        trials,
    }
}

/// What driving one algorithm on one graph produced: the measurements every
/// algorithm reports into a [`TrialResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Rounds executed (for the sequential baseline: moves executed).
    pub rounds: usize,
    /// Whether the algorithm stabilized/terminated within the round budget.
    pub stabilized: bool,
    /// The final black set (the computed MIS when `stabilized`).
    pub black_set: VertexSet,
    /// Total random bits consumed.
    pub random_bits: u64,
    /// States per vertex of the algorithm (`usize::MAX` for baselines with
    /// super-constant state).
    pub states_per_vertex: usize,
    /// Per-round trace, when requested (filled in by the caller from a
    /// [`TraceObserver`]; [`drive_algorithm`] itself streams to observers
    /// instead of accumulating).
    pub trace: Option<RoundTrace>,
}

/// Drives an [`Algorithm`] under a [`Scheduler`] until it stabilizes, the
/// round budget runs out, or both phases of an optional fault-injection
/// experiment complete, streaming per-round events to `observers`.
///
/// The contract mirrors the paper's execution model: before each round the
/// scheduler picks the activation, the algorithm applies its local rule on
/// the activated vertices, and observers see the aggregate counts. A
/// [`FaultSpec`] fires once — at stabilization or at its `at_round`,
/// whichever comes first — corrupting either its explicit `victims` or a
/// random `fraction`-sample, after which the loop continues until
/// re-stabilization. A [`ChurnSpec`] fires its first burst the same way,
/// mutating the live graph through [`Algorithm::apply_mutation`];
/// subsequent bursts each fire at the next re-stabilization.
///
/// A [`ByzantineOverlay`] re-applies its adversarial overrides after every
/// round (and immediately after faults and churn bursts), so the selected
/// vertices never obey the protocol. Global stabilization is then generally
/// impossible, and the driver instead terminates on **containment**: once
/// every unstable vertex has been inside the [`CONTAINMENT_RADIUS`]-ball of
/// the Byzantine set for [`CONTAINMENT_CONFIRM_ROUNDS`] consecutive rounds,
/// the outcome reports `stabilized = true` (and [`Observer::on_stabilized`]
/// fires). `max_rounds` remains the hard budget for adversaries that keep
/// the exterior churning indefinitely.
///
/// When `observers` is empty, per-round [`Algorithm::counts`] calls are
/// skipped entirely (they are `O(n + m)` for the communication models).
///
/// # Panics
///
/// Panics if `churn` is set but the algorithm's
/// [`supports_topology_change`](mis_core::Algorithm::supports_topology_change)
/// is `false`; if `byzantine` is set but
/// [`supports_byzantine`](mis_core::Algorithm::supports_byzantine) is
/// `false`; or if a generated burst is rejected by the algorithm (the
/// burst generator only emits deltas valid for the current graph, so a
/// rejection indicates a bug, not bad input).
#[allow(clippy::too_many_arguments)]
pub fn drive_algorithm(
    alg: &mut dyn Algorithm,
    scheduler: &mut dyn Scheduler,
    rng: &mut dyn RngCore,
    max_rounds: usize,
    fault: Option<FaultSpec>,
    churn: Option<ChurnSpec>,
    byzantine: Option<&ByzantineOverlay>,
    observers: &mut [&mut dyn Observer],
) -> DriveOutcome {
    assert!(
        churn.is_none() || alg.supports_topology_change(),
        "churn was scheduled for an algorithm without topology-change support"
    );
    assert!(
        byzantine.is_none() || alg.supports_byzantine(),
        "a Byzantine overlay was attached to an algorithm without Byzantine support"
    );
    let observe = !observers.is_empty();
    // An adversary controlling no vertices is no adversary: run (and
    // terminate) exactly like a Byzantine-free trial.
    let mut tracker = byzantine
        .filter(|overlay| !overlay.is_empty())
        .map(|overlay| {
            let graph = alg
                .current_graph()
                .expect("byzantine support implies a current graph");
            ContainmentTracker::new(overlay, graph)
        });
    // The adversary owns its vertices from round 0: apply the overrides
    // before the initial configuration is observed or judged.
    let mut contained = match tracker.as_mut() {
        Some(t) => t.round(alg, observers),
        None => false,
    };
    if observe {
        let counts = alg.counts();
        for obs in observers.iter_mut() {
            obs.on_round(alg.round(), &counts);
        }
    }
    let mut pending_fault = fault;
    // (spec, remaining bursts, round bound for the *next* burst). Only the
    // first burst honors `at_round`; later bursts wait for re-stabilization.
    let mut pending_churn = churn.and_then(|c| (c.bursts > 0).then_some((c, c.bursts, c.at_round)));
    let mut stabilized = alg.is_stabilized();
    loop {
        // Under an adversary, *confirmed containment* is the only
        // convergence signal (it releases pending faults/churn and ends the
        // trial): a momentarily-stable snapshot is not durable — the
        // adversary re-destabilizes it next round — and global stability,
        // where reached, implies containment and confirms within
        // CONTAINMENT_CONFIRM_ROUNDS rounds anyway.
        let converged = if tracker.is_some() {
            contained
        } else {
            stabilized
        };
        let fire_fault = pending_fault
            .as_ref()
            .is_some_and(|f| converged || alg.round() >= f.at_round);
        if fire_fault {
            let f = pending_fault.take().expect("checked above");
            let corrupted = if f.victims.is_empty() {
                alg.inject_faults(f.fraction, rng)
            } else {
                alg.inject_faults_targeted(&f.victims, rng)
            };
            for obs in observers.iter_mut() {
                obs.on_fault_injection(alg.round(), corrupted);
            }
            // The corruption may have scrambled adversarial vertices:
            // re-assert the overrides and void any containment streak.
            contained = match tracker.as_mut() {
                Some(t) => {
                    t.reset_streak();
                    t.round(alg, observers)
                }
                None => false,
            };
            if observe {
                // Re-emit the current round with the post-corruption
                // counts: the unstable spike recovery curves measure.
                let counts = alg.counts();
                for obs in observers.iter_mut() {
                    obs.on_round(alg.round(), &counts);
                }
            }
            stabilized = alg.is_stabilized();
            continue;
        }
        if let Some((c, remaining, at_round)) = pending_churn {
            if converged || alg.round() >= at_round {
                let delta = {
                    let graph = alg
                        .current_graph()
                        .expect("topology-change support implies a current graph");
                    generate_burst(c.scenario, graph, rng)
                };
                let committed = alg
                    .apply_mutation(&delta)
                    .expect("generated burst must be valid for the current graph");
                pending_churn = (remaining > 1).then_some((c, remaining - 1, usize::MAX));
                for obs in observers.iter_mut() {
                    obs.on_topology_change(alg.round(), &committed);
                }
                // The mutation invalidated the cached BFS levels (and the
                // state carryover may have touched adversarial vertices).
                contained = match tracker.as_mut() {
                    Some(t) => {
                        let graph = alg
                            .current_graph()
                            .expect("topology-change support implies a current graph");
                        // An adaptive adversary abandons victims churn just
                        // isolated and compromises fresh ones before the
                        // containment zone is re-derived.
                        if byzantine.is_some_and(|o| o.resamples()) {
                            t.overlay.resample_departed(graph);
                        }
                        t.refresh(graph);
                        t.round(alg, observers)
                    }
                    None => false,
                };
                if observe {
                    // Re-emit the current round with the post-mutation
                    // counts: the unstable spike re-stabilization measures.
                    let counts = alg.counts();
                    for obs in observers.iter_mut() {
                        obs.on_round(alg.round(), &counts);
                    }
                }
                stabilized = alg.is_stabilized();
                continue;
            }
        }
        if converged || alg.round() >= max_rounds {
            break;
        }
        let activation = scheduler.next_activation(alg.n(), alg.round(), rng);
        alg.step(StepCtx {
            rng,
            activation: &activation,
        });
        if let Some(t) = tracker.as_mut() {
            contained = t.round(alg, observers);
        }
        if observe {
            let counts = alg.counts();
            for obs in observers.iter_mut() {
                obs.on_round(alg.round(), &counts);
            }
        }
        stabilized = alg.is_stabilized();
    }
    let converged = if tracker.is_some() {
        contained
    } else {
        stabilized
    };
    if converged {
        for obs in observers.iter_mut() {
            obs.on_stabilized(alg.round());
        }
    }
    DriveOutcome {
        rounds: alg.round(),
        stabilized: converged,
        black_set: alg.black_set(),
        random_bits: alg.random_bits_used(),
        states_per_vertex: alg.states_per_vertex(),
        trace: None,
    }
}

/// Convenience wrapper: runs the 2-state process once on an explicit graph
/// and returns its stabilization time. Used by tests and examples that
/// already hold a graph.
///
/// # Errors
///
/// Returns [`mis_core::StabilizationTimeout`] if the process does not
/// stabilize within `max_rounds`.
pub fn stabilization_time_two_state(
    graph: &Graph,
    init: mis_core::init::InitStrategy,
    seed: u64,
    max_rounds: usize,
) -> Result<usize, mis_core::StabilizationTimeout> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = mis_core::TwoStateProcess::with_init(graph, init, &mut rng);
    use mis_core::Process;
    proc.run_to_stabilization(&mut rng, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{EventLogObserver, ObserverEvent};
    use crate::spec::{ChurnScenario, GraphSpec, SchedulerSpec};
    use mis_core::init::InitStrategy;
    use mis_core::ExecutionMode;

    fn base_spec(algorithm: &str) -> ExperimentSpec {
        ExperimentSpec {
            name: "unit".into(),
            graph: GraphSpec::Gnp { n: 60, p: 0.08 },
            algorithm: algorithm.into(),
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            trials: 6,
            max_rounds: 100_000,
            base_seed: 11,
            record_trace: false,
            ..ExperimentSpec::default()
        }
    }

    #[test]
    fn every_registry_algorithm_produces_valid_mis() {
        for key in builtin_registry().keys() {
            let mut spec = base_spec(key);
            spec.trials = 3;
            let result = run_experiment(&spec);
            assert!(result.all_stabilized(), "{key}");
            assert!(result.all_valid(), "{key}");
        }
    }

    #[test]
    #[should_panic(expected = "no algorithm 'does-not-exist'")]
    fn unknown_algorithm_key_panics_with_known_keys() {
        let spec = base_spec("does-not-exist");
        run_trial(&spec, 0);
    }

    #[test]
    fn sequential_selfstab_respects_move_bound() {
        let mut spec = base_spec("sequential-selfstab");
        spec.trials = 4;
        let result = run_experiment(&spec);
        assert!(result.all_valid());
        for t in &result.trials {
            assert!(
                t.rounds <= 2 * t.n,
                "sequential baseline exceeded its 2n move bound: {} moves on n = {}",
                t.rounds,
                t.n
            );
            assert_eq!(t.random_bits, 0, "smallest-id scheduler is deterministic");
        }
    }

    #[test]
    fn greedy_is_a_single_pass() {
        let result = run_experiment(&base_spec("greedy"));
        assert!(result.all_valid());
        for t in &result.trials {
            assert_eq!(t.rounds, 1);
            assert_eq!(t.states_per_vertex, usize::MAX);
        }
        assert!(result.trials.iter().all(|t| t.mis_size >= 1));
    }

    /// Large-n scale spec: the incremental engine makes a 50k-vertex sparse
    /// G(n,p) trial cheap enough for the (debug-build) test suite — the round
    /// cost tracks the shrinking active frontier instead of n + m.
    #[test]
    fn large_n_sparse_trial_is_fast_and_valid() {
        let n = 50_000;
        let spec = ExperimentSpec::builder()
            .name("scale-smoke")
            .graph(GraphSpec::Gnp {
                n,
                p: 8.0 / n as f64,
            })
            .base_seed(77)
            .build();
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());
        assert_eq!(result.trials[0].n, n);
    }

    #[test]
    fn trials_are_reproducible() {
        let spec = base_spec("two-state");
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_graph_trials_match_unshared_trials() {
        // run_experiment shares one Arc<Graph> across trials for the
        // deterministic complete-graph family; the per-trial path must give
        // the exact same results.
        let mut spec = base_spec("two-state");
        spec.graph = GraphSpec::Complete { n: 48 };
        spec.trials = 4;
        let shared = run_experiment(&spec);
        let unshared: Vec<TrialResult> = (0..spec.trials)
            .map(|trial| run_trial(&spec, trial))
            .collect();
        assert_eq!(shared.trials, unshared);
    }

    #[test]
    fn parallel_execution_produces_valid_thread_count_invariant_results() {
        for key in ["two-state", "three-state", "three-color"] {
            let mut spec = base_spec(key);
            spec.trials = 3;
            let mut per_thread_results = Vec::new();
            for threads in [1usize, 4] {
                spec.execution = ExecutionMode::Parallel { threads };
                let result = run_experiment(&spec);
                assert!(result.all_stabilized(), "{key}");
                assert!(result.all_valid(), "{key}");
                per_thread_results.push(result.trials);
            }
            assert_eq!(
                per_thread_results[0], per_thread_results[1],
                "{key}: results must not depend on the thread count"
            );
        }
    }

    #[test]
    fn different_seeds_change_outcomes() {
        let mut spec = base_spec("two-state");
        let a = run_experiment(&spec);
        spec.base_seed = 999;
        let b = run_experiment(&spec);
        // Stabilization times should differ for at least one trial.
        let ra: Vec<_> = a.trials.iter().map(|t| t.rounds).collect();
        let rb: Vec<_> = b.trials.iter().map(|t| t.rounds).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn trace_recording_captures_monotone_unstable_counts() {
        let mut spec = base_spec("two-state");
        spec.record_trace = true;
        spec.trials = 2;
        let result = run_experiment(&spec);
        for t in &result.trials {
            let trace = t.trace.as_ref().expect("trace requested");
            assert_eq!(trace.len(), t.rounds + 1);
            // |V_t| is non-increasing over time for the 2-state process.
            let unstable: Vec<_> = trace.counts.iter().map(|c| c.unstable).collect();
            assert!(
                unstable.windows(2).all(|w| w[1] <= w[0]),
                "unstable counts increased: {unstable:?}"
            );
            assert_eq!(*unstable.last().unwrap(), 0);
        }
    }

    #[test]
    fn one_shot_baselines_skip_trace_recording() {
        // The legacy harness reported `trace: None` for Luby/greedy/
        // sequential even when a trace was requested; the registry path
        // preserves that via the supports_trace capability.
        for key in ["luby", "greedy", "sequential-selfstab"] {
            let mut spec = base_spec(key);
            spec.record_trace = true;
            spec.trials = 2;
            let result = run_experiment(&spec);
            assert!(result.trials.iter().all(|t| t.trace.is_none()), "{key}");
        }
    }

    #[test]
    fn timeout_is_reported_not_panicked() {
        let mut spec = base_spec("two-state");
        spec.graph = GraphSpec::Complete { n: 256 };
        spec.max_rounds = 1; // far too small
        spec.trials = 2;
        let result = run_experiment(&spec);
        assert!(!result.all_stabilized());
        assert!(
            result.all_valid(),
            "non-stabilized trials must not claim a valid MIS"
        );
    }

    #[test]
    fn central_daemon_scheduler_stabilizes_two_state() {
        let spec = ExperimentSpec::builder()
            .name("daemon")
            .graph(GraphSpec::Gnp { n: 30, p: 0.15 })
            .scheduler(SchedulerSpec::CentralDaemon)
            .trials(3)
            .max_rounds(1_000_000)
            .base_seed(5)
            .build();
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());
        // One move per round: stabilization needs (many) more rounds than
        // the synchronous runs of the same graph family.
        assert!(result.rounds_summary().mean > 10.0);
    }

    #[test]
    fn random_subset_scheduler_stabilizes_engine_and_comm_algorithms() {
        for key in [
            "two-state",
            "three-state",
            "beeping-two-state",
            "stone-age-three-state",
        ] {
            let spec = ExperimentSpec::builder()
                .name("subset")
                .graph(GraphSpec::Gnp { n: 40, p: 0.12 })
                .algorithm(key)
                .scheduler(SchedulerSpec::RandomSubset { p: 0.5 })
                .trials(2)
                .max_rounds(500_000)
                .base_seed(23)
                .build();
            let result = run_experiment(&spec);
            assert!(result.all_stabilized(), "{key}");
            assert!(result.all_valid(), "{key}");
        }
    }

    #[test]
    #[should_panic(expected = "does not support the central-daemon scheduler")]
    fn partial_activation_capability_is_enforced() {
        let spec = ExperimentSpec::builder()
            .algorithm("luby")
            .scheduler(SchedulerSpec::CentralDaemon)
            .build();
        run_trial(&spec, 0);
    }

    #[test]
    #[should_panic(expected = "does not support fault injection")]
    fn fault_injection_capability_is_enforced() {
        let spec = ExperimentSpec::builder()
            .algorithm("greedy")
            .fault(FaultSpec::after_stabilization(0.5))
            .build();
        run_trial(&spec, 0);
    }

    #[test]
    #[should_panic(expected = "does not support topology changes")]
    fn topology_change_capability_is_enforced() {
        let spec = ExperimentSpec::builder()
            .algorithm("luby")
            .churn(ChurnSpec::after_stabilization(ChurnScenario::EdgeChurn {
                fraction: 0.05,
            }))
            .build();
        run_trial(&spec, 0);
    }

    #[test]
    fn fault_injection_recovers_and_notifies_observers() {
        let spec = ExperimentSpec::builder()
            .name("fault")
            .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
            .fault(FaultSpec::after_stabilization(0.5))
            .trials(3)
            .base_seed(13)
            .build();
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());

        // Re-drive one trial manually with an event log to check the
        // observer protocol: a fault event, then re-stabilization.
        let mut rng = ChaCha8Rng::seed_from_u64(spec.base_seed);
        let graph = spec.graph.generate(&mut rng);
        let factory = builtin_registry().get(spec.algorithm_key()).unwrap();
        let config = AlgorithmConfig {
            init: spec.init,
            execution: spec.execution,
            strategy: spec.strategy,
            counter_seed: spec.base_seed ^ COUNTER_SEED_SALT,
        };
        let mut alg = factory.init(&graph, &config, &mut rng);
        let mut scheduler = spec.scheduler.build();
        let mut log = EventLogObserver::new();
        let outcome = {
            let mut observers: Vec<&mut dyn Observer> = vec![&mut log];
            drive_algorithm(
                alg.as_mut(),
                scheduler.as_mut(),
                &mut rng,
                spec.max_rounds,
                spec.fault.clone(),
                spec.churn,
                None,
                &mut observers,
            )
        };
        assert!(outcome.stabilized);
        let fault_at = log
            .events
            .iter()
            .position(|e| matches!(e, ObserverEvent::FaultInjection { .. }))
            .expect("a fault event");
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e, ObserverEvent::FaultInjection { .. }))
                .count(),
            1
        );
        assert!(log.total_corrupted() > 0);
        assert!(log.stabilized_at().is_some());
        // The event right after the injection is the re-emitted current
        // round with the post-corruption counts: the unstable spike the
        // recovery curve starts from.
        match log.events[fault_at + 1] {
            ObserverEvent::Round { unstable, .. } => {
                assert!(unstable > 0, "corruption must destabilize some vertex")
            }
            other => panic!("expected a post-fault Round event, got {other:?}"),
        }
    }

    #[test]
    fn churn_recovers_to_a_valid_mis_on_the_mutated_graph() {
        for key in ["two-state", "three-state", "three-color"] {
            for scenario in [
                ChurnScenario::EdgeChurn { fraction: 0.05 },
                ChurnScenario::JoinLeave { join: 6, leave: 4 },
                ChurnScenario::RegionFailure { fraction: 0.1 },
            ] {
                let spec = ExperimentSpec::builder()
                    .name("churn")
                    .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
                    .algorithm(key)
                    .churn(ChurnSpec::after_stabilization(scenario))
                    .trials(3)
                    .base_seed(17)
                    .build();
                let result = run_experiment(&spec);
                assert!(result.all_stabilized(), "{key} / {}", scenario.label());
                // all_valid checks the MIS against the *mutated* graph
                // (run_trial_on validates against current_graph()).
                assert!(result.all_valid(), "{key} / {}", scenario.label());
                if let ChurnScenario::JoinLeave { join, .. } = scenario {
                    for t in &result.trials {
                        assert_eq!(t.n, 80 + join, "reported n must be post-churn");
                    }
                }
            }
        }
    }

    #[test]
    fn churn_notifies_observers_and_compounds_over_bursts() {
        let spec = ExperimentSpec::builder()
            .name("churn-bursts")
            .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
            .algorithm("two-state")
            .churn(
                ChurnSpec::after_stabilization(ChurnScenario::JoinLeave { join: 3, leave: 2 })
                    .bursts(3),
            )
            .trials(1)
            .base_seed(29)
            .build();
        // Run the whole experiment first: every burst must still end in a
        // valid MIS of the final topology.
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());
        assert_eq!(result.trials[0].n, 80 + 3 * 3, "three join waves compound");

        // Re-drive the trial with an event log to check the observer
        // protocol: three TopologyChange events, then re-stabilization.
        let mut rng = ChaCha8Rng::seed_from_u64(spec.base_seed);
        let graph = spec.graph.generate(&mut rng);
        let factory = builtin_registry().get(spec.algorithm_key()).unwrap();
        let config = AlgorithmConfig {
            init: spec.init,
            execution: spec.execution,
            strategy: spec.strategy,
            counter_seed: spec.base_seed ^ COUNTER_SEED_SALT,
        };
        let mut alg = factory.init(&graph, &config, &mut rng);
        let mut scheduler = spec.scheduler.build();
        let mut log = EventLogObserver::new();
        let outcome = {
            let mut observers: Vec<&mut dyn Observer> = vec![&mut log];
            drive_algorithm(
                alg.as_mut(),
                scheduler.as_mut(),
                &mut rng,
                spec.max_rounds,
                spec.fault.clone(),
                spec.churn,
                None,
                &mut observers,
            )
        };
        assert!(outcome.stabilized);
        let changes: Vec<_> = log
            .events
            .iter()
            .filter_map(|e| match e {
                ObserverEvent::TopologyChange { new_n, .. } => Some(*new_n),
                _ => None,
            })
            .collect();
        assert_eq!(
            changes,
            vec![83, 86, 89],
            "one event per burst, compounding"
        );
        assert_eq!(alg.current_graph().unwrap().n(), 89);
        assert!(mis_check::is_mis(
            alg.current_graph().unwrap(),
            &outcome.black_set
        ));
    }

    #[test]
    fn churn_trials_are_reproducible() {
        let spec = ExperimentSpec::builder()
            .name("churn-repro")
            .graph(GraphSpec::Gnp { n: 60, p: 0.08 })
            .algorithm("three-state")
            .churn(ChurnSpec::after_stabilization(ChurnScenario::EdgeChurn {
                fraction: 0.1,
            }))
            .trials(4)
            .base_seed(31)
            .build();
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn helper_runs_on_explicit_graph() {
        let g = mis_graph::generators::complete(16);
        let rounds = stabilization_time_two_state(&g, InitStrategy::AllBlack, 3, 100_000).unwrap();
        assert!(rounds >= 1);
    }

    #[test]
    fn byzantine_trials_contain_every_strategy_and_process() {
        use crate::spec::{ByzantineSpec, VictimSelection};
        use mis_core::ByzantineStrategy;
        for key in ["two-state", "three-state", "three-color"] {
            for strategy in ByzantineStrategy::all() {
                let spec = ExperimentSpec::builder()
                    .name("byzantine")
                    .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
                    .algorithm(key)
                    .byzantine(
                        ByzantineSpec::new(strategy, VictimSelection::Random { count: 2 }).seed(5),
                    )
                    .trials(3)
                    .max_rounds(200_000)
                    .base_seed(19)
                    .build();
                let result = run_experiment(&spec);
                // `stabilized` here means contained (or fully stabilized);
                // `valid_mis` is the is_mis_outside check at radius 2.
                assert!(result.all_stabilized(), "{key} / {strategy}");
                assert!(result.all_valid(), "{key} / {strategy}");
            }
        }
    }

    #[test]
    fn byzantine_trials_are_reproducible() {
        use crate::spec::{ByzantineSpec, VictimSelection};
        use mis_core::ByzantineStrategy;
        let spec = ExperimentSpec::builder()
            .name("byzantine-repro")
            .graph(GraphSpec::Gnp { n: 60, p: 0.1 })
            .algorithm("three-state")
            .byzantine(ByzantineSpec::new(
                ByzantineStrategy::Flipper,
                VictimSelection::HighDegree { count: 2 },
            ))
            .trials(4)
            .base_seed(43)
            .build();
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn byzantine_spec_does_not_shift_honest_rng_streams() {
        // The adversary is keyed by its own seed, so attaching it must not
        // change which coins the honest vertices draw: a trial with an
        // *empty* selection is bit-identical to a byzantine-free trial.
        use crate::spec::{ByzantineSpec, VictimSelection};
        use mis_core::ByzantineStrategy;
        let mut spec = base_spec("two-state");
        spec.trials = 3;
        let plain = run_experiment(&spec);
        spec.byzantine = Some(ByzantineSpec::new(
            ByzantineStrategy::Oscillator,
            VictimSelection::Targeted { ids: vec![] },
        ));
        let with_empty_adversary = run_experiment(&spec);
        assert_eq!(plain.trials, with_empty_adversary.trials);
    }

    #[test]
    #[should_panic(expected = "does not support Byzantine overrides")]
    fn byzantine_capability_is_enforced() {
        use crate::spec::{ByzantineSpec, VictimSelection};
        use mis_core::ByzantineStrategy;
        let spec = ExperimentSpec::builder()
            .algorithm("luby")
            .byzantine(ByzantineSpec::new(
                ByzantineStrategy::Frozen,
                VictimSelection::default(),
            ))
            .build();
        run_trial(&spec, 0);
    }

    #[test]
    fn byzantine_observer_protocol_reports_containment() {
        use mis_core::{ByzantineOverlay, ByzantineStrategy};
        let spec = ExperimentSpec::builder()
            .name("byzantine-observer")
            .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
            .algorithm("two-state")
            .base_seed(59)
            .build();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.base_seed);
        let graph = spec.graph.generate(&mut rng);
        let factory = builtin_registry().get(spec.algorithm_key()).unwrap();
        let config = AlgorithmConfig {
            init: spec.init,
            execution: spec.execution,
            strategy: spec.strategy,
            counter_seed: spec.base_seed ^ COUNTER_SEED_SALT,
        };
        let mut alg = factory.init(&graph, &config, &mut rng);
        let overlay = ByzantineOverlay::new(ByzantineStrategy::Oscillator, vec![0, 1], 7);
        let mut scheduler = spec.scheduler.build();
        let mut log = EventLogObserver::new();
        let outcome = {
            let mut observers: Vec<&mut dyn Observer> = vec![&mut log];
            drive_algorithm(
                alg.as_mut(),
                scheduler.as_mut(),
                &mut rng,
                spec.max_rounds,
                None,
                None,
                Some(&overlay),
                &mut observers,
            )
        };
        assert!(outcome.stabilized, "containment must terminate the trial");
        // One ByzantineRound verdict per executed round (including round 0).
        let verdicts: Vec<bool> = log
            .events
            .iter()
            .filter_map(|e| match e {
                ObserverEvent::ByzantineRound { contained, .. } => Some(*contained),
                _ => None,
            })
            .collect();
        assert_eq!(verdicts.len(), outcome.rounds + 1);
        assert!(
            verdicts
                .iter()
                .rev()
                .take(CONTAINMENT_CONFIRM_ROUNDS)
                .all(|&c| c),
            "the trial must end on a confirmed containment streak: {verdicts:?}"
        );
        assert!(log.first_contained_at().is_some());
        assert_eq!(log.stabilized_at(), Some(outcome.rounds));
        // The oscillator flips its vertices every round, so the exterior is
        // contained but the zone never goes quiet: the final set is an MIS
        // outside radius 2 of {0, 1}.
        assert!(mis_check::is_mis_outside(
            &graph,
            &outcome.black_set,
            &overlay.vertices(),
            CONTAINMENT_RADIUS
        ));
    }

    #[test]
    fn byzantine_with_churn_resamples_victims_and_stays_valid() {
        use crate::spec::{ByzantineSpec, ChurnSpec, VictimSelection};
        use mis_core::ByzantineStrategy;
        // JoinLeave detaches uniformly random vertices, so across trials
        // some adversarial vertices depart; with `resample(true)` the
        // adversary moves to fresh victims and the containment-aware MIS
        // check (which reads the *final* victim set) must still hold.
        let spec = ExperimentSpec::builder()
            .name("byzantine-churn")
            .graph(GraphSpec::Gnp { n: 80, p: 0.08 })
            .algorithm("two-state")
            .byzantine(
                ByzantineSpec::new(
                    ByzantineStrategy::Oscillator,
                    VictimSelection::Random { count: 4 },
                )
                .seed(13)
                .resample(true),
            )
            .churn(
                ChurnSpec::after_stabilization(ChurnScenario::JoinLeave { join: 4, leave: 24 })
                    .bursts(2),
            )
            .trials(4)
            .base_seed(23)
            .build();
        let result = run_experiment(&spec);
        assert!(result.all_stabilized(), "containment must terminate");
        assert!(result.all_valid(), "MIS-outside must hold per trial");

        // Byte-for-byte reproducibility with an adaptive adversary: the
        // re-sampling draws are keyed by the spec seed, not wall clock.
        let again = run_experiment(&spec);
        for (a, b) in result.trials.iter().zip(again.trials.iter()) {
            assert_eq!(a.rounds, b.rounds, "trial {} diverged", a.trial);
            assert_eq!(a.mis_size, b.mis_size, "trial {} diverged", a.trial);
            assert_eq!(a.random_bits, b.random_bits, "trial {} diverged", a.trial);
        }
    }

    #[test]
    fn targeted_faults_corrupt_exactly_the_victims() {
        let victims = vec![3, 11, 27];
        let spec = ExperimentSpec::builder()
            .name("targeted-fault")
            .graph(GraphSpec::Gnp { n: 60, p: 0.1 })
            .algorithm("two-state")
            .fault(FaultSpec::targeted(victims.clone()))
            .trials(2)
            .base_seed(37)
            .build();
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());

        // Re-drive one trial with an event log: the injection must report
        // at most |victims| changed vertices and still recover.
        let mut rng = ChaCha8Rng::seed_from_u64(spec.base_seed);
        let graph = spec.graph.generate(&mut rng);
        let factory = builtin_registry().get(spec.algorithm_key()).unwrap();
        let config = AlgorithmConfig {
            init: spec.init,
            execution: spec.execution,
            strategy: spec.strategy,
            counter_seed: spec.base_seed ^ COUNTER_SEED_SALT,
        };
        let mut alg = factory.init(&graph, &config, &mut rng);
        let mut scheduler = spec.scheduler.build();
        let mut log = EventLogObserver::new();
        let outcome = {
            let mut observers: Vec<&mut dyn Observer> = vec![&mut log];
            drive_algorithm(
                alg.as_mut(),
                scheduler.as_mut(),
                &mut rng,
                spec.max_rounds,
                spec.fault.clone(),
                None,
                None,
                &mut observers,
            )
        };
        assert!(outcome.stabilized);
        let corrupted = log.total_corrupted();
        assert!(
            corrupted <= victims.len(),
            "targeted fault touched {corrupted} > {} vertices",
            victims.len()
        );
        assert_eq!(
            log.events
                .iter()
                .filter(|e| matches!(e, ObserverEvent::FaultInjection { .. }))
                .count(),
            1
        );
    }
}
