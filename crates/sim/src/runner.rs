//! Executes experiment specifications: one deterministic RNG stream per
//! trial, parallel trials, and MIS validation of every outcome.
//!
//! Two layers of parallelism are available and composable per spec:
//! independent trials always run on the rayon trial pool
//! (`run_experiment`), and a spec whose `execution` is
//! [`ExecutionMode::Parallel`](mis_core::ExecutionMode::Parallel)
//! additionally runs each *round* of the engine processes in data-parallel
//! phases with counter-based randomness — the right choice when one trial
//! is a single huge graph.

use std::sync::Arc;

use mis_baselines::{
    greedy_mis_random_order, luby_mis, RandomPriorityMis, SequentialScheduler,
    SequentialSelfStabMis,
};
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::{mis_check, Graph, VertexSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::metrics::{RoundTrace, TrialResult};
use crate::spec::{ExperimentSpec, ProcessSelector};
use crate::stats::Summary;

/// Salt mixed into the per-trial seed to key the counter-based RNG of
/// parallel-mode runs (so the counter key is decorrelated from the ChaCha
/// stream that draws the graph and the initial states).
const COUNTER_SEED_SALT: u64 = 0x0005_EEDC_0DE0_FC01;

/// All trial results of one experiment plus the specification that produced
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The specification that was executed.
    pub spec: ExperimentSpec,
    /// One result per trial, in trial order.
    pub trials: Vec<TrialResult>,
}

impl ExperimentResult {
    /// `true` if every trial stabilized within its round budget.
    pub fn all_stabilized(&self) -> bool {
        self.trials.iter().all(|t| t.stabilized)
    }

    /// `true` if every stabilized trial produced a valid MIS.
    pub fn all_valid(&self) -> bool {
        self.trials.iter().all(|t| !t.stabilized || t.valid_mis)
    }

    /// Summary of stabilization times (in rounds) over all trials.
    pub fn rounds_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.rounds))
    }

    /// Summary of MIS sizes over all trials.
    pub fn mis_size_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.mis_size))
    }

    /// Summary of random bits used per trial.
    pub fn random_bits_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.random_bits as usize))
    }
}

/// Runs a single trial of `spec` with the RNG stream derived from
/// `spec.base_seed + trial`.
///
/// The trial re-samples the graph (for random families), runs the selected
/// process to stabilization or until the round budget is exhausted, validates
/// the resulting black set, and returns the full [`TrialResult`].
pub fn run_trial(spec: &ExperimentSpec, trial: usize) -> TrialResult {
    run_trial_on(spec, trial, None)
}

/// [`run_trial`] with an optional pre-generated graph.
///
/// `shared_graph` is only sound for deterministic graph families
/// ([`GraphSpec::is_deterministic`](crate::spec::GraphSpec::is_deterministic)):
/// their generation consumes no randomness, so skipping it leaves the
/// trial's RNG stream — and therefore every result — unchanged.
fn run_trial_on(spec: &ExperimentSpec, trial: usize, shared_graph: Option<&Graph>) -> TrialResult {
    let seed = spec.base_seed.wrapping_add(trial as u64);
    let counter_seed = seed ^ COUNTER_SEED_SALT;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let generated;
    let graph = match shared_graph {
        Some(g) => {
            debug_assert!(
                spec.graph.is_deterministic(),
                "shared graphs require a deterministic family"
            );
            g
        }
        None => {
            generated = spec.graph.generate(&mut rng);
            &generated
        }
    };

    let outcome = match spec.process {
        ProcessSelector::TwoState => {
            let mut proc = TwoStateProcess::with_init(graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::ThreeState => {
            let mut proc = ThreeStateProcess::with_init(graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::ThreeColor => {
            let mut proc = ThreeColorProcess::with_randomized_switch(graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::RandomPriority => {
            let proc = RandomPriorityMis::random_init(graph, &mut rng);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::Luby => {
            let out = luby_mis(graph, &mut rng);
            DriveOutcome {
                rounds: out.rounds,
                stabilized: true,
                black_set: out.mis,
                random_bits: out.random_bits,
                states_per_vertex: usize::MAX,
                trace: None,
            }
        }
        ProcessSelector::Greedy => {
            // One centralized pass in a random scan order; its shuffle
            // randomness is not metered as per-vertex random bits.
            let mis = greedy_mis_random_order(graph, &mut rng);
            DriveOutcome {
                rounds: 1,
                stabilized: true,
                black_set: mis,
                random_bits: 0,
                states_per_vertex: usize::MAX,
                trace: None,
            }
        }
        ProcessSelector::SequentialSelfStab => {
            let init = spec.init.two_state(graph.n(), &mut rng);
            let mut alg = SequentialSelfStabMis::new(graph, init);
            let out = alg.run(SequentialScheduler::SmallestId, &mut rng);
            DriveOutcome {
                // `rounds` carries the move count: the algorithm's natural
                // cost measure under a central scheduler (at most 2n).
                rounds: out.moves,
                stabilized: true,
                black_set: out.mis,
                random_bits: 0,
                states_per_vertex: 2,
                trace: None,
            }
        }
    };

    let valid_mis = outcome.stabilized && mis_check::is_mis(graph, &outcome.black_set);
    TrialResult {
        trial,
        seed,
        n: graph.n(),
        m: graph.m(),
        rounds: outcome.rounds,
        stabilized: outcome.stabilized,
        valid_mis,
        mis_size: outcome.black_set.len(),
        random_bits: outcome.random_bits,
        states_per_vertex: outcome.states_per_vertex,
        trace: outcome.trace,
    }
}

/// Runs every trial of `spec`, in parallel, and collects the results in trial
/// order.
///
/// For deterministic graph families (complete graphs, paths, cycles, stars,
/// grids, disjoint cliques) the graph is generated **once** and shared
/// across all trials behind an [`Arc`], instead of being regenerated per
/// trial — generation consumes no randomness for those families, so the
/// per-trial RNG streams (and all results) are unchanged.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let shared_graph: Option<Arc<Graph>> = spec.graph.is_deterministic().then(|| {
        // The RNG is unused by deterministic generators; any seed works.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Arc::new(spec.graph.generate(&mut rng))
    });
    let shared_ref = &shared_graph;
    let trials: Vec<TrialResult> = (0..spec.trials)
        .into_par_iter()
        .map(|trial| run_trial_on(spec, trial, shared_ref.as_deref()))
        .collect();
    ExperimentResult {
        spec: spec.clone(),
        trials,
    }
}

/// What driving one algorithm on one graph produced: the measurements every
/// process kind (and baseline) reports into a [`TrialResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Rounds executed (for the sequential baseline: moves executed).
    pub rounds: usize,
    /// Whether the algorithm stabilized/terminated within the round budget.
    pub stabilized: bool,
    /// The final black set (the computed MIS when `stabilized`).
    pub black_set: VertexSet,
    /// Total random bits consumed.
    pub random_bits: u64,
    /// States per vertex of the algorithm (`usize::MAX` for baselines with
    /// super-constant state).
    pub states_per_vertex: usize,
    /// Per-round trace, when requested.
    pub trace: Option<RoundTrace>,
}

/// Drives a [`Process`] to stabilization, optionally recording a per-round
/// trace, and collects the measurements shared by all process kinds.
fn drive<P: Process>(
    mut proc: P,
    rng: &mut ChaCha8Rng,
    max_rounds: usize,
    record_trace: bool,
) -> DriveOutcome {
    let mut trace = record_trace.then(RoundTrace::default);
    if let Some(t) = trace.as_mut() {
        t.counts.push(proc.counts());
    }
    let mut stabilized = proc.is_stabilized();
    while !stabilized && proc.round() < max_rounds {
        proc.step(rng);
        if let Some(t) = trace.as_mut() {
            t.counts.push(proc.counts());
        }
        stabilized = proc.is_stabilized();
    }
    DriveOutcome {
        rounds: proc.round(),
        stabilized,
        black_set: proc.black_set(),
        random_bits: proc.random_bits_used(),
        states_per_vertex: proc.states_per_vertex(),
        trace,
    }
}

/// Convenience wrapper: runs the 2-state process once on an explicit graph
/// and returns its stabilization time. Used by tests and examples that
/// already hold a graph.
///
/// # Errors
///
/// Returns [`mis_core::StabilizationTimeout`] if the process does not
/// stabilize within `max_rounds`.
pub fn stabilization_time_two_state(
    graph: &Graph,
    init: mis_core::init::InitStrategy,
    seed: u64,
    max_rounds: usize,
) -> Result<usize, mis_core::StabilizationTimeout> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = TwoStateProcess::with_init(graph, init, &mut rng);
    proc.run_to_stabilization(&mut rng, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GraphSpec;
    use mis_core::init::InitStrategy;
    use mis_core::ExecutionMode;

    fn base_spec(process: ProcessSelector) -> ExperimentSpec {
        ExperimentSpec {
            name: "unit".into(),
            graph: GraphSpec::Gnp { n: 60, p: 0.08 },
            process,
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            trials: 6,
            max_rounds: 100_000,
            base_seed: 11,
            record_trace: false,
        }
    }

    #[test]
    fn every_process_kind_produces_valid_mis() {
        for process in ProcessSelector::all() {
            let result = run_experiment(&base_spec(process));
            assert_eq!(result.trials.len(), 6);
            assert!(result.all_stabilized(), "{process:?}");
            assert!(result.all_valid(), "{process:?}");
            assert!(result.rounds_summary().max >= 1.0 || result.rounds_summary().max == 0.0);
        }
    }

    #[test]
    fn sequential_selfstab_respects_move_bound() {
        let mut spec = base_spec(ProcessSelector::SequentialSelfStab);
        spec.trials = 4;
        let result = run_experiment(&spec);
        assert!(result.all_valid());
        for t in &result.trials {
            assert!(
                t.rounds <= 2 * t.n,
                "sequential baseline exceeded its 2n move bound: {} moves on n = {}",
                t.rounds,
                t.n
            );
            assert_eq!(t.random_bits, 0, "smallest-id scheduler is deterministic");
        }
    }

    #[test]
    fn greedy_is_a_single_pass() {
        let result = run_experiment(&base_spec(ProcessSelector::Greedy));
        assert!(result.all_valid());
        for t in &result.trials {
            assert_eq!(t.rounds, 1);
            assert_eq!(t.states_per_vertex, usize::MAX);
        }
        assert!(result.trials.iter().all(|t| t.mis_size >= 1));
    }

    /// Large-n scale spec: the incremental engine makes a 50k-vertex sparse
    /// G(n,p) trial cheap enough for the (debug-build) test suite — the round
    /// cost tracks the shrinking active frontier instead of n + m.
    #[test]
    fn large_n_sparse_trial_is_fast_and_valid() {
        let n = 50_000;
        let spec = ExperimentSpec {
            name: "scale-smoke".into(),
            graph: GraphSpec::Gnp {
                n,
                p: 8.0 / n as f64,
            },
            process: ProcessSelector::TwoState,
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            trials: 1,
            max_rounds: 100_000,
            base_seed: 77,
            record_trace: false,
        };
        let result = run_experiment(&spec);
        assert!(result.all_stabilized());
        assert!(result.all_valid());
        assert_eq!(result.trials[0].n, n);
    }

    #[test]
    fn trials_are_reproducible() {
        let spec = base_spec(ProcessSelector::TwoState);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_graph_trials_match_unshared_trials() {
        // run_experiment shares one Arc<Graph> across trials for the
        // deterministic complete-graph family; the per-trial path must give
        // the exact same results.
        let mut spec = base_spec(ProcessSelector::TwoState);
        spec.graph = GraphSpec::Complete { n: 48 };
        spec.trials = 4;
        let shared = run_experiment(&spec);
        let unshared: Vec<TrialResult> = (0..spec.trials)
            .map(|trial| run_trial(&spec, trial))
            .collect();
        assert_eq!(shared.trials, unshared);
    }

    #[test]
    fn parallel_execution_produces_valid_thread_count_invariant_results() {
        for process in [
            ProcessSelector::TwoState,
            ProcessSelector::ThreeState,
            ProcessSelector::ThreeColor,
        ] {
            let mut spec = base_spec(process);
            spec.trials = 3;
            let mut per_thread_results = Vec::new();
            for threads in [1usize, 4] {
                spec.execution = ExecutionMode::Parallel { threads };
                let result = run_experiment(&spec);
                assert!(result.all_stabilized(), "{process:?}");
                assert!(result.all_valid(), "{process:?}");
                per_thread_results.push(result.trials);
            }
            assert_eq!(
                per_thread_results[0], per_thread_results[1],
                "{process:?}: results must not depend on the thread count"
            );
        }
    }

    #[test]
    fn different_seeds_change_outcomes() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        let a = run_experiment(&spec);
        spec.base_seed = 999;
        let b = run_experiment(&spec);
        // Stabilization times should differ for at least one trial.
        let ra: Vec<_> = a.trials.iter().map(|t| t.rounds).collect();
        let rb: Vec<_> = b.trials.iter().map(|t| t.rounds).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn trace_recording_captures_monotone_unstable_counts() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        spec.record_trace = true;
        spec.trials = 2;
        let result = run_experiment(&spec);
        for t in &result.trials {
            let trace = t.trace.as_ref().expect("trace requested");
            assert_eq!(trace.len(), t.rounds + 1);
            // |V_t| is non-increasing over time for the 2-state process.
            let unstable: Vec<_> = trace.counts.iter().map(|c| c.unstable).collect();
            assert!(
                unstable.windows(2).all(|w| w[1] <= w[0]),
                "unstable counts increased: {unstable:?}"
            );
            assert_eq!(*unstable.last().unwrap(), 0);
        }
    }

    #[test]
    fn timeout_is_reported_not_panicked() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        spec.graph = GraphSpec::Complete { n: 256 };
        spec.max_rounds = 1; // far too small
        spec.trials = 2;
        let result = run_experiment(&spec);
        assert!(!result.all_stabilized());
        assert!(
            result.all_valid(),
            "non-stabilized trials must not claim a valid MIS"
        );
    }

    #[test]
    fn helper_runs_on_explicit_graph() {
        let g = mis_graph::generators::complete(16);
        let rounds = stabilization_time_two_state(&g, InitStrategy::AllBlack, 3, 100_000).unwrap();
        assert!(rounds >= 1);
    }
}
