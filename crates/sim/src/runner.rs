//! Executes experiment specifications: one deterministic RNG stream per
//! trial, parallel trials, and MIS validation of every outcome.

use mis_baselines::{luby_mis, RandomPriorityMis};
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::{mis_check, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::metrics::{RoundTrace, TrialResult};
use crate::spec::{ExperimentSpec, ProcessSelector};
use crate::stats::Summary;

/// All trial results of one experiment plus the specification that produced
/// them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The specification that was executed.
    pub spec: ExperimentSpec,
    /// One result per trial, in trial order.
    pub trials: Vec<TrialResult>,
}

impl ExperimentResult {
    /// `true` if every trial stabilized within its round budget.
    pub fn all_stabilized(&self) -> bool {
        self.trials.iter().all(|t| t.stabilized)
    }

    /// `true` if every stabilized trial produced a valid MIS.
    pub fn all_valid(&self) -> bool {
        self.trials.iter().all(|t| !t.stabilized || t.valid_mis)
    }

    /// Summary of stabilization times (in rounds) over all trials.
    pub fn rounds_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.rounds))
    }

    /// Summary of MIS sizes over all trials.
    pub fn mis_size_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.mis_size))
    }

    /// Summary of random bits used per trial.
    pub fn random_bits_summary(&self) -> Summary {
        Summary::from_counts(self.trials.iter().map(|t| t.random_bits as usize))
    }
}

/// Runs a single trial of `spec` with the RNG stream derived from
/// `spec.base_seed + trial`.
///
/// The trial re-samples the graph (for random families), runs the selected
/// process to stabilization or until the round budget is exhausted, validates
/// the resulting black set, and returns the full [`TrialResult`].
pub fn run_trial(spec: &ExperimentSpec, trial: usize) -> TrialResult {
    let seed = spec.base_seed.wrapping_add(trial as u64);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = spec.graph.generate(&mut rng);

    let (rounds, stabilized, mis, random_bits, states_per_vertex, trace) = match spec.process {
        ProcessSelector::TwoState => {
            let proc = TwoStateProcess::with_init(&graph, spec.init, &mut rng);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::ThreeState => {
            let proc = ThreeStateProcess::with_init(&graph, spec.init, &mut rng);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::ThreeColor => {
            let proc = ThreeColorProcess::with_randomized_switch(&graph, spec.init, &mut rng);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::RandomPriority => {
            let proc = RandomPriorityMis::random_init(&graph, &mut rng);
            drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        ProcessSelector::Luby => {
            let out = luby_mis(&graph, &mut rng);
            (out.rounds, true, out.mis, out.random_bits, usize::MAX, None)
        }
    };

    let valid_mis = stabilized && mis_check::is_mis(&graph, &mis);
    TrialResult {
        trial,
        seed,
        n: graph.n(),
        m: graph.m(),
        rounds,
        stabilized,
        valid_mis,
        mis_size: mis.len(),
        random_bits,
        states_per_vertex,
        trace,
    }
}

/// Runs every trial of `spec`, in parallel, and collects the results in trial
/// order.
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let trials: Vec<TrialResult> = (0..spec.trials)
        .into_par_iter()
        .map(|trial| run_trial(spec, trial))
        .collect();
    ExperimentResult {
        spec: spec.clone(),
        trials,
    }
}

/// Drives a [`Process`] to stabilization, optionally recording a per-round
/// trace, and extracts the measurement tuple shared by all process kinds.
fn drive<P: Process>(
    mut proc: P,
    rng: &mut ChaCha8Rng,
    max_rounds: usize,
    record_trace: bool,
) -> (
    usize,
    bool,
    mis_graph::VertexSet,
    u64,
    usize,
    Option<RoundTrace>,
) {
    let mut trace = record_trace.then(RoundTrace::default);
    if let Some(t) = trace.as_mut() {
        t.counts.push(proc.counts());
    }
    let mut stabilized = proc.is_stabilized();
    while !stabilized && proc.round() < max_rounds {
        proc.step(rng);
        if let Some(t) = trace.as_mut() {
            t.counts.push(proc.counts());
        }
        stabilized = proc.is_stabilized();
    }
    (
        proc.round(),
        stabilized,
        proc.black_set(),
        proc.random_bits_used(),
        proc.states_per_vertex(),
        trace,
    )
}

/// Convenience wrapper: runs the 2-state process once on an explicit graph
/// and returns its stabilization time. Used by tests and examples that
/// already hold a graph.
///
/// # Errors
///
/// Returns [`mis_core::StabilizationTimeout`] if the process does not
/// stabilize within `max_rounds`.
pub fn stabilization_time_two_state(
    graph: &Graph,
    init: mis_core::init::InitStrategy,
    seed: u64,
    max_rounds: usize,
) -> Result<usize, mis_core::StabilizationTimeout> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = TwoStateProcess::with_init(graph, init, &mut rng);
    proc.run_to_stabilization(&mut rng, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GraphSpec;
    use mis_core::init::InitStrategy;

    fn base_spec(process: ProcessSelector) -> ExperimentSpec {
        ExperimentSpec {
            name: "unit".into(),
            graph: GraphSpec::Gnp { n: 60, p: 0.08 },
            process,
            init: InitStrategy::Random,
            trials: 6,
            max_rounds: 100_000,
            base_seed: 11,
            record_trace: false,
        }
    }

    #[test]
    fn every_process_kind_produces_valid_mis() {
        for process in [
            ProcessSelector::TwoState,
            ProcessSelector::ThreeState,
            ProcessSelector::ThreeColor,
            ProcessSelector::Luby,
            ProcessSelector::RandomPriority,
        ] {
            let result = run_experiment(&base_spec(process));
            assert_eq!(result.trials.len(), 6);
            assert!(result.all_stabilized(), "{process:?}");
            assert!(result.all_valid(), "{process:?}");
            assert!(result.rounds_summary().max >= 1.0 || result.rounds_summary().max == 0.0);
        }
    }

    #[test]
    fn trials_are_reproducible() {
        let spec = base_spec(ProcessSelector::TwoState);
        let a = run_experiment(&spec);
        let b = run_experiment(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_outcomes() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        let a = run_experiment(&spec);
        spec.base_seed = 999;
        let b = run_experiment(&spec);
        // Stabilization times should differ for at least one trial.
        let ra: Vec<_> = a.trials.iter().map(|t| t.rounds).collect();
        let rb: Vec<_> = b.trials.iter().map(|t| t.rounds).collect();
        assert_ne!(ra, rb);
    }

    #[test]
    fn trace_recording_captures_monotone_unstable_counts() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        spec.record_trace = true;
        spec.trials = 2;
        let result = run_experiment(&spec);
        for t in &result.trials {
            let trace = t.trace.as_ref().expect("trace requested");
            assert_eq!(trace.len(), t.rounds + 1);
            // |V_t| is non-increasing over time for the 2-state process.
            let unstable: Vec<_> = trace.counts.iter().map(|c| c.unstable).collect();
            assert!(
                unstable.windows(2).all(|w| w[1] <= w[0]),
                "unstable counts increased: {unstable:?}"
            );
            assert_eq!(*unstable.last().unwrap(), 0);
        }
    }

    #[test]
    fn timeout_is_reported_not_panicked() {
        let mut spec = base_spec(ProcessSelector::TwoState);
        spec.graph = GraphSpec::Complete { n: 256 };
        spec.max_rounds = 1; // far too small
        spec.trials = 2;
        let result = run_experiment(&spec);
        assert!(!result.all_stabilized());
        assert!(
            result.all_valid(),
            "non-stabilized trials must not claim a valid MIS"
        );
    }

    #[test]
    fn helper_runs_on_explicit_graph() {
        let g = mis_graph::generators::complete(16);
        let rounds = stabilization_time_two_state(&g, InitStrategy::AllBlack, 3, 100_000).unwrap();
        assert!(rounds >= 1);
    }
}
