//! Declarative experiment specifications.

use mis_core::init::InitStrategy;
pub use mis_core::ExecutionMode;
use mis_graph::{generators, Graph};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which graph family a trial should generate.
///
/// Every variant corresponds to a family analyzed (or used as a hard case) in
/// the paper; random families are re-sampled per trial so that statements
/// "w.h.p. over `G(n,p)`" are exercised over both sources of randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Erdős–Rényi `G(n,p)` (Theorems 2, 3).
    Gnp {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Complete graph `K_n` (Theorem 8).
    Complete {
        /// Number of vertices.
        n: usize,
    },
    /// Disjoint union of `count` cliques of size `size` (Remark 9).
    DisjointCliques {
        /// Number of cliques.
        count: usize,
        /// Vertices per clique.
        size: usize,
    },
    /// Uniformly random recursive tree (Theorem 11).
    RandomTree {
        /// Number of vertices.
        n: usize,
    },
    /// Path graph.
    Path {
        /// Number of vertices.
        n: usize,
    },
    /// Cycle graph.
    Cycle {
        /// Number of vertices.
        n: usize,
    },
    /// Star graph.
    Star {
        /// Number of vertices.
        n: usize,
    },
    /// Random `d`-regular graph (Theorem 12's `O(Δ log n)` bound).
    Regular {
        /// Number of vertices.
        n: usize,
        /// Degree of every vertex.
        d: usize,
    },
    /// 2-dimensional grid.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Union of random spanning forests — arboricity at most `forests`
    /// (Theorem 11).
    ForestUnion {
        /// Number of vertices.
        n: usize,
        /// Number of superimposed random forests.
        forests: usize,
    },
}

impl GraphSpec {
    /// `true` if the family is deterministic: generation ignores the RNG and
    /// always yields the same graph, so trials can share one instance (see
    /// `run_experiment`) instead of regenerating it per trial.
    pub fn is_deterministic(&self) -> bool {
        match self {
            GraphSpec::Complete { .. }
            | GraphSpec::DisjointCliques { .. }
            | GraphSpec::Path { .. }
            | GraphSpec::Cycle { .. }
            | GraphSpec::Star { .. }
            | GraphSpec::Grid { .. } => true,
            GraphSpec::Gnp { .. }
            | GraphSpec::RandomTree { .. }
            | GraphSpec::Regular { .. }
            | GraphSpec::ForestUnion { .. } => false,
        }
    }

    /// Generates a graph according to this specification.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid for the family (e.g. a regular
    /// graph with `n · d` odd).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        match *self {
            GraphSpec::Gnp { n, p } => generators::gnp(n, p, rng),
            GraphSpec::Complete { n } => generators::complete(n),
            GraphSpec::DisjointCliques { count, size } => generators::disjoint_cliques(count, size),
            GraphSpec::RandomTree { n } => generators::random_tree(n, rng),
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Star { n } => generators::star(n),
            GraphSpec::Regular { n, d } => {
                generators::regular(n, d, rng).expect("invalid regular graph parameters")
            }
            GraphSpec::Grid { rows, cols } => generators::grid(rows, cols),
            GraphSpec::ForestUnion { n, forests } => generators::forest_union(n, forests, rng),
        }
    }

    /// Number of vertices the generated graph will have.
    pub fn n(&self) -> usize {
        match *self {
            GraphSpec::Gnp { n, .. }
            | GraphSpec::RandomTree { n }
            | GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Star { n }
            | GraphSpec::Regular { n, .. }
            | GraphSpec::ForestUnion { n, .. }
            | GraphSpec::Complete { n } => n,
            GraphSpec::DisjointCliques { count, size } => count * size,
            GraphSpec::Grid { rows, cols } => rows * cols,
        }
    }

    /// A short human-readable label for tables and CSV output.
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::Gnp { n, p } => format!("gnp(n={n},p={p})"),
            GraphSpec::Complete { n } => format!("complete(n={n})"),
            GraphSpec::DisjointCliques { count, size } => {
                format!("cliques(count={count},size={size})")
            }
            GraphSpec::RandomTree { n } => format!("tree(n={n})"),
            GraphSpec::Path { n } => format!("path(n={n})"),
            GraphSpec::Cycle { n } => format!("cycle(n={n})"),
            GraphSpec::Star { n } => format!("star(n={n})"),
            GraphSpec::Regular { n, d } => format!("regular(n={n},d={d})"),
            GraphSpec::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            GraphSpec::ForestUnion { n, forests } => format!("forests(n={n},k={forests})"),
        }
    }
}

/// Which process (or baseline) a trial should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessSelector {
    /// The 2-state MIS process (Definition 4).
    TwoState,
    /// The 3-state MIS process (Definition 5).
    ThreeState,
    /// The 3-color MIS process with the randomized logarithmic switch
    /// (Definition 28, 18 states).
    ThreeColor,
    /// Luby's algorithm (baseline; not self-stabilizing).
    Luby,
    /// The random-priority synchronous self-stabilizing baseline.
    RandomPriority,
    /// The sequential greedy MIS in a uniformly random scan order (baseline;
    /// centralized, not self-stabilizing). Reported with `rounds = 1`: the
    /// whole MIS is built in one centralized pass.
    Greedy,
    /// The deterministic sequential self-stabilizing MIS (Shukla et al. /
    /// Hedetniemi et al.) under the smallest-id central scheduler. Reported
    /// with `rounds` equal to the number of *moves* (single-vertex state
    /// changes), its natural cost measure; at most `2n`.
    SequentialSelfStab,
}

impl ProcessSelector {
    /// Short label used in tables and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            ProcessSelector::TwoState => "two-state",
            ProcessSelector::ThreeState => "three-state",
            ProcessSelector::ThreeColor => "three-color",
            ProcessSelector::Luby => "luby",
            ProcessSelector::RandomPriority => "random-priority",
            ProcessSelector::Greedy => "greedy",
            ProcessSelector::SequentialSelfStab => "sequential-selfstab",
        }
    }

    /// All selectors, in a stable order — handy for comparison experiments
    /// that iterate over every available algorithm.
    pub fn all() -> [ProcessSelector; 7] {
        [
            ProcessSelector::TwoState,
            ProcessSelector::ThreeState,
            ProcessSelector::ThreeColor,
            ProcessSelector::Luby,
            ProcessSelector::RandomPriority,
            ProcessSelector::Greedy,
            ProcessSelector::SequentialSelfStab,
        ]
    }
}

/// A full experiment: a graph family, a process, an initialization, and a
/// trial/seed budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Name used in reports and file names.
    pub name: String,
    /// Graph family to sample per trial.
    pub graph: GraphSpec,
    /// Process (or baseline) to run.
    pub process: ProcessSelector,
    /// Initial-state strategy (ignored by the non-self-stabilizing Luby baseline).
    pub init: InitStrategy,
    /// How the engine processes execute rounds: the sequential shared-stream
    /// model or counter-based intra-round parallelism. Baselines (Luby,
    /// greedy, random-priority, sequential self-stab) always run
    /// sequentially and ignore this field.
    pub execution: ExecutionMode,
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round budget.
    pub max_rounds: usize,
    /// Base seed; trial `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Whether to record per-round traces (memory-heavy for large runs).
    pub record_trace: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_spec_generates_expected_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let specs = [
            GraphSpec::Gnp { n: 30, p: 0.1 },
            GraphSpec::Complete { n: 12 },
            GraphSpec::DisjointCliques { count: 3, size: 4 },
            GraphSpec::RandomTree { n: 25 },
            GraphSpec::Path { n: 9 },
            GraphSpec::Cycle { n: 8 },
            GraphSpec::Star { n: 7 },
            GraphSpec::Regular { n: 10, d: 4 },
            GraphSpec::Grid { rows: 3, cols: 5 },
            GraphSpec::ForestUnion { n: 20, forests: 2 },
        ];
        for spec in specs {
            let g = spec.generate(&mut rng);
            assert_eq!(g.n(), spec.n(), "{}", spec.label());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ProcessSelector::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), ProcessSelector::all().len());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for execution in [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel { threads: 8 },
        ] {
            let spec = ExperimentSpec {
                name: "test".into(),
                graph: GraphSpec::Gnp { n: 10, p: 0.5 },
                process: ProcessSelector::ThreeColor,
                init: InitStrategy::Random,
                execution,
                trials: 3,
                max_rounds: 100,
                base_seed: 1,
                record_trace: true,
            };
            let json = serde_json::to_string(&spec).unwrap();
            let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn deterministic_families_are_flagged() {
        assert!(GraphSpec::Complete { n: 4 }.is_deterministic());
        assert!(GraphSpec::Path { n: 4 }.is_deterministic());
        assert!(GraphSpec::Grid { rows: 2, cols: 2 }.is_deterministic());
        assert!(!GraphSpec::Gnp { n: 4, p: 0.5 }.is_deterministic());
        assert!(!GraphSpec::RandomTree { n: 4 }.is_deterministic());
    }
}
