//! Declarative experiment specifications.
//!
//! A spec names an algorithm by registry key, a graph family, a
//! [`SchedulerSpec`], an optional [`FaultSpec`], and the trial/seed budget.
//! Build specs with [`ExperimentSpec::builder`]; the struct remains `pub`
//! and serde-stable for existing code and stored JSON (legacy JSON naming
//! an algorithm through the retired `ProcessSelector` enum's `process`
//! field still deserializes — the variant name maps onto its registry key).

use mis_core::init::InitStrategy;
use mis_core::scheduler::{CentralDaemon, RandomSubset, Scheduler, Synchronous};
use mis_core::victim_sample;
pub use mis_core::{ByzantineStrategy, ExecutionMode, RoundStrategy};
use mis_graph::{generators, Graph, VertexId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which graph family a trial should generate.
///
/// Every variant corresponds to a family analyzed (or used as a hard case) in
/// the paper; random families are re-sampled per trial so that statements
/// "w.h.p. over `G(n,p)`" are exercised over both sources of randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// Erdős–Rényi `G(n,p)` (Theorems 2, 3).
    Gnp {
        /// Number of vertices.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Complete graph `K_n` (Theorem 8).
    Complete {
        /// Number of vertices.
        n: usize,
    },
    /// Disjoint union of `count` cliques of size `size` (Remark 9).
    DisjointCliques {
        /// Number of cliques.
        count: usize,
        /// Vertices per clique.
        size: usize,
    },
    /// Uniformly random recursive tree (Theorem 11).
    RandomTree {
        /// Number of vertices.
        n: usize,
    },
    /// Path graph.
    Path {
        /// Number of vertices.
        n: usize,
    },
    /// Cycle graph.
    Cycle {
        /// Number of vertices.
        n: usize,
    },
    /// Star graph.
    Star {
        /// Number of vertices.
        n: usize,
    },
    /// Random `d`-regular graph (Theorem 12's `O(Δ log n)` bound).
    Regular {
        /// Number of vertices.
        n: usize,
        /// Degree of every vertex.
        d: usize,
    },
    /// 2-dimensional grid.
    Grid {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Union of random spanning forests — arboricity at most `forests`
    /// (Theorem 11).
    ForestUnion {
        /// Number of vertices.
        n: usize,
        /// Number of superimposed random forests.
        forests: usize,
    },
}

impl GraphSpec {
    /// `true` if the family is deterministic: generation ignores the RNG and
    /// always yields the same graph, so trials can share one instance (see
    /// `run_experiment`) instead of regenerating it per trial.
    pub fn is_deterministic(&self) -> bool {
        match self {
            GraphSpec::Complete { .. }
            | GraphSpec::DisjointCliques { .. }
            | GraphSpec::Path { .. }
            | GraphSpec::Cycle { .. }
            | GraphSpec::Star { .. }
            | GraphSpec::Grid { .. } => true,
            GraphSpec::Gnp { .. }
            | GraphSpec::RandomTree { .. }
            | GraphSpec::Regular { .. }
            | GraphSpec::ForestUnion { .. } => false,
        }
    }

    /// Generates a graph according to this specification.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are invalid for the family (e.g. a regular
    /// graph with `n · d` odd).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        match *self {
            GraphSpec::Gnp { n, p } => generators::gnp(n, p, rng),
            GraphSpec::Complete { n } => generators::complete(n),
            GraphSpec::DisjointCliques { count, size } => generators::disjoint_cliques(count, size),
            GraphSpec::RandomTree { n } => generators::random_tree(n, rng),
            GraphSpec::Path { n } => generators::path(n),
            GraphSpec::Cycle { n } => generators::cycle(n),
            GraphSpec::Star { n } => generators::star(n),
            GraphSpec::Regular { n, d } => {
                generators::regular(n, d, rng).expect("invalid regular graph parameters")
            }
            GraphSpec::Grid { rows, cols } => generators::grid(rows, cols),
            GraphSpec::ForestUnion { n, forests } => generators::forest_union(n, forests, rng),
        }
    }

    /// Number of vertices the generated graph will have.
    pub fn n(&self) -> usize {
        match *self {
            GraphSpec::Gnp { n, .. }
            | GraphSpec::RandomTree { n }
            | GraphSpec::Path { n }
            | GraphSpec::Cycle { n }
            | GraphSpec::Star { n }
            | GraphSpec::Regular { n, .. }
            | GraphSpec::ForestUnion { n, .. }
            | GraphSpec::Complete { n } => n,
            GraphSpec::DisjointCliques { count, size } => count * size,
            GraphSpec::Grid { rows, cols } => rows * cols,
        }
    }

    /// A short human-readable label for tables and CSV output.
    pub fn label(&self) -> String {
        match *self {
            GraphSpec::Gnp { n, p } => format!("gnp(n={n},p={p})"),
            GraphSpec::Complete { n } => format!("complete(n={n})"),
            GraphSpec::DisjointCliques { count, size } => {
                format!("cliques(count={count},size={size})")
            }
            GraphSpec::RandomTree { n } => format!("tree(n={n})"),
            GraphSpec::Path { n } => format!("path(n={n})"),
            GraphSpec::Cycle { n } => format!("cycle(n={n})"),
            GraphSpec::Star { n } => format!("star(n={n})"),
            GraphSpec::Regular { n, d } => format!("regular(n={n},d={d})"),
            GraphSpec::Grid { rows, cols } => format!("grid({rows}x{cols})"),
            GraphSpec::ForestUnion { n, forests } => format!("forests(n={n},k={forests})"),
        }
    }
}

/// Serializable scheduler choice; builds the [`Scheduler`] that drives each
/// trial.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// Every vertex is activated every round (the paper's model, and the
    /// default — specs without a `scheduler` field deserialize to this).
    #[default]
    Synchronous,
    /// One uniformly random vertex per activation (central daemon; a
    /// "round" is one move).
    CentralDaemon,
    /// Every vertex independently activated with probability `p` per round.
    RandomSubset {
        /// Per-vertex activation probability.
        p: f64,
    },
}

impl SchedulerSpec {
    /// Builds the scheduler instance for one trial.
    ///
    /// # Panics
    ///
    /// Panics if a [`SchedulerSpec::RandomSubset`] probability is outside
    /// `[0, 1]`.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match *self {
            SchedulerSpec::Synchronous => Box::new(Synchronous),
            SchedulerSpec::CentralDaemon => Box::new(CentralDaemon),
            SchedulerSpec::RandomSubset { p } => Box::new(RandomSubset::new(p)),
        }
    }

    /// Short label for tables and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            SchedulerSpec::Synchronous => "synchronous",
            SchedulerSpec::CentralDaemon => "central-daemon",
            SchedulerSpec::RandomSubset { .. } => "random-subset",
        }
    }

    /// `true` for the synchronous scheduler.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, SchedulerSpec::Synchronous)
    }
}

/// A transient fault injected during a trial: once the algorithm has
/// stabilized — or when round `at_round` is reached, whichever happens
/// first — vertex states are overwritten with uniformly random values, and
/// the trial keeps running until the algorithm re-stabilizes or the round
/// budget runs out.
///
/// Victims are either `fraction · n` uniformly random vertices (the
/// default) or, when [`victims`](Self::victims) is non-empty, exactly the
/// listed vertices — the targeted-fault mode sharing its selection plumbing
/// with [`ByzantineSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Latest round at which the fault fires (it fires earlier if the
    /// algorithm stabilizes first). Use `usize::MAX` for
    /// "after stabilization only".
    pub at_round: usize,
    /// Fraction of vertices to corrupt, in `[0, 1]`. Ignored when
    /// [`victims`](Self::victims) is non-empty.
    pub fraction: f64,
    /// Explicit victim list (targeted faults). Empty — the serde default,
    /// so pre-existing JSON parses unchanged — means "pick
    /// `ceil(fraction · n)` victims uniformly at random".
    pub victims: Vec<VertexId>,
}

impl FaultSpec {
    /// A fault that corrupts `fraction` of the vertices right after the
    /// algorithm first stabilizes (the standard recovery experiment).
    pub fn after_stabilization(fraction: f64) -> Self {
        FaultSpec {
            at_round: usize::MAX,
            fraction,
            victims: Vec::new(),
        }
    }

    /// A targeted fault that corrupts exactly `victims` right after the
    /// algorithm first stabilizes.
    pub fn targeted(victims: Vec<VertexId>) -> Self {
        FaultSpec {
            at_round: usize::MAX,
            fraction: 0.0,
            victims,
        }
    }

    /// Sets the round at which the fault fires at the latest.
    pub fn at_round(mut self, at_round: usize) -> Self {
        self.at_round = at_round;
        self
    }
}

impl Serialize for FaultSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("at_round".into(), self.at_round.to_value()),
            ("fraction".into(), self.fraction.to_value()),
            ("victims".into(), self.victims.to_value()),
        ])
    }
}

impl Deserialize for FaultSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // `victims` defaults to empty (random-count mode) so fault specs
        // serialized before targeted faults existed keep parsing — the
        // vendored serde derive has no `#[serde(default)]`.
        fn field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
            match value {
                serde::Value::Object(fields) => fields
                    .iter()
                    .find(|(key, _)| key == name)
                    .map(|(_, field)| field),
                _ => None,
            }
        }
        let victims = match field(value, "victims") {
            Some(v) => Deserialize::from_value(v)?,
            None => Vec::new(),
        };
        Ok(FaultSpec {
            at_round: Deserialize::from_value(serde::get_field(value, "at_round")?)?,
            fraction: Deserialize::from_value(serde::get_field(value, "fraction")?)?,
            victims,
        })
    }
}

/// What one churn burst does to the topology. Each variant is a dynamic-graph
/// scenario the re-stabilization experiments exercise; bursts are generated
/// by [`churn::generate_burst`](crate::churn::generate_burst) from the
/// algorithm's *current* graph, so repeated bursts compound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnScenario {
    /// Poisson edge churn: `Poisson(fraction · m)` random existing edges are
    /// removed and an independently drawn `Poisson(fraction · m)` random
    /// non-edges are inserted.
    EdgeChurn {
        /// Expected fraction of the current edge count that churns, in each
        /// direction.
        fraction: f64,
    },
    /// A node arrival/departure wave: `join` new vertices arrive (each wired
    /// to roughly average-degree-many uniformly random existing vertices)
    /// and `leave` uniformly random existing vertices depart (all their
    /// edges are detached; ids are never reused).
    JoinLeave {
        /// Number of arriving vertices.
        join: usize,
        /// Number of departing vertices.
        leave: usize,
    },
    /// A correlated regional failure: a BFS-contiguous region of
    /// `ceil(fraction · n)` vertices goes silent (every incident edge is
    /// detached), modeling the loss of a rack or geographic zone rather than
    /// independent node failures.
    RegionFailure {
        /// Fraction of the vertices that fail together, in `[0, 1]`.
        fraction: f64,
    },
}

impl ChurnScenario {
    /// Short label for tables and CSV output.
    pub fn label(&self) -> String {
        match *self {
            ChurnScenario::EdgeChurn { fraction } => format!("edge-churn(f={fraction})"),
            ChurnScenario::JoinLeave { join, leave } => {
                format!("join-leave(join={join},leave={leave})")
            }
            ChurnScenario::RegionFailure { fraction } => format!("region-failure(f={fraction})"),
        }
    }
}

/// Topology churn injected during a trial: once the algorithm has stabilized
/// — or when round [`at_round`](Self::at_round) is reached, whichever comes
/// first — a burst generated from [`scenario`](Self::scenario) mutates the
/// live graph through [`Algorithm::apply_mutation`](mis_core::Algorithm),
/// and the trial keeps running until the algorithm re-stabilizes on the
/// mutated topology. With `bursts > 1`, each subsequent burst fires at the
/// next re-stabilization.
///
/// Requires an algorithm whose
/// [`supports_topology_change`](mis_core::Algorithm::supports_topology_change)
/// is `true`; the driver rejects churn specs for the others up front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// What each burst does to the topology.
    pub scenario: ChurnScenario,
    /// Latest round at which the first burst fires (it fires earlier if the
    /// algorithm stabilizes first). `usize::MAX` — the default — means
    /// "after stabilization only".
    pub at_round: usize,
    /// Number of bursts (default 1). Burst `i + 1` fires when the algorithm
    /// has re-stabilized after burst `i`.
    pub bursts: usize,
}

impl ChurnSpec {
    /// A single burst of `scenario` right after the algorithm first
    /// stabilizes — the standard re-stabilization experiment.
    pub fn after_stabilization(scenario: ChurnScenario) -> Self {
        ChurnSpec {
            scenario,
            at_round: usize::MAX,
            bursts: 1,
        }
    }

    /// Sets the round at which the first burst fires at the latest.
    pub fn at_round(mut self, at_round: usize) -> Self {
        self.at_round = at_round;
        self
    }

    /// Sets the number of bursts.
    pub fn bursts(mut self, bursts: usize) -> Self {
        self.bursts = bursts;
        self
    }
}

impl Serialize for ChurnSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scenario".into(), self.scenario.to_value()),
            ("at_round".into(), self.at_round.to_value()),
            ("bursts".into(), self.bursts.to_value()),
        ])
    }
}

impl Deserialize for ChurnSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // Only `scenario` is required: `at_round` and `bursts` fall back to
        // the `after_stabilization` defaults when absent (the vendored serde
        // derive has no `#[serde(default)]`, hence the manual impl).
        fn field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
            match value {
                serde::Value::Object(fields) => fields
                    .iter()
                    .find(|(key, _)| key == name)
                    .map(|(_, field)| field),
                _ => None,
            }
        }
        let scenario = Deserialize::from_value(serde::get_field(value, "scenario")?)?;
        let at_round = match field(value, "at_round") {
            Some(v) => Deserialize::from_value(v)?,
            None => usize::MAX,
        };
        let bursts = match field(value, "bursts") {
            Some(v) => Deserialize::from_value(v)?,
            None => 1,
        };
        Ok(ChurnSpec {
            scenario,
            at_round,
            bursts,
        })
    }
}

/// How a fault/adversary campaign picks its victim vertices.
///
/// Shared between [`ByzantineSpec`] (which vertices are adversarial) and
/// targeted [`FaultSpec`]s built from a selection; all modes resolve to a
/// sorted, deduplicated id list via [`resolve`](Self::resolve).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum VictimSelection {
    /// `count` uniformly random vertices, drawn without replacement through
    /// the same partial Fisher–Yates plumbing as random-fraction faults
    /// ([`mis_core::victim_sample`]).
    Random {
        /// Number of victims.
        count: usize,
    },
    /// Exactly these vertex ids.
    Targeted {
        /// The victim ids (out-of-range ids are rejected at resolve time).
        ids: Vec<VertexId>,
    },
    /// The `count` highest-degree vertices — the hub-targeted placement
    /// that maximizes the blast radius of an adversary. Ties break toward
    /// smaller ids, so the selection is deterministic.
    HighDegree {
        /// Number of hubs.
        count: usize,
    },
}

impl Default for VictimSelection {
    /// One uniformly random victim.
    fn default() -> Self {
        VictimSelection::Random { count: 1 }
    }
}

impl VictimSelection {
    /// Short label for tables and JSON output.
    pub fn label(&self) -> String {
        match self {
            VictimSelection::Random { count } => format!("random(count={count})"),
            VictimSelection::Targeted { ids } => format!("targeted(|ids|={})", ids.len()),
            VictimSelection::HighDegree { count } => format!("high-degree(count={count})"),
        }
    }

    /// Resolves the selection against a concrete graph into a sorted,
    /// deduplicated victim list. Random selection is keyed by `seed` only
    /// (not by any trial RNG stream), so the same `(selection, graph, seed)`
    /// always yields the same victims.
    ///
    /// # Panics
    ///
    /// Panics if a targeted id is out of range for the graph.
    pub fn resolve(&self, graph: &Graph, seed: u64) -> Vec<VertexId> {
        let mut victims = match self {
            VictimSelection::Random { count } => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                victim_sample(graph.n(), *count, &mut rng)
            }
            VictimSelection::Targeted { ids } => {
                for &u in ids {
                    assert!(
                        u < graph.n(),
                        "targeted victim {u} out of range for a graph of {} vertices",
                        graph.n()
                    );
                }
                ids.clone()
            }
            VictimSelection::HighDegree { count } => {
                let mut by_degree: Vec<VertexId> = (0..graph.n()).collect();
                by_degree.sort_by_key(|&u| (std::cmp::Reverse(graph.degree(u)), u));
                by_degree.truncate((*count).min(graph.n()));
                by_degree
            }
        };
        victims.sort_unstable();
        victims.dedup();
        victims
    }
}

/// A Byzantine adversary attached to a trial: the selected vertices stop
/// obeying the protocol entirely and instead follow
/// [`strategy`](Self::strategy) every round, from round 0 until the end of
/// the trial (see [`mis_core::byzantine`]).
///
/// Requires an algorithm whose
/// [`supports_byzantine`](mis_core::Algorithm::supports_byzantine) is
/// `true`; the driver rejects the spec for the others up front. Trials
/// terminate on *containment* (stabilization outside the 2-neighborhood of
/// the Byzantine set) instead of global stabilization.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineSpec {
    /// Which adversary the selected vertices run.
    pub strategy: ByzantineStrategy,
    /// Which vertices are adversarial. Defaults to one random vertex.
    pub selection: VictimSelection,
    /// Seed keying both the victim selection and any strategy randomness;
    /// trial `i` uses `seed + i`, so trials see independent adversaries.
    /// Defaults to 0.
    pub seed: u64,
    /// Under churn, whether the adversary replaces victims that leave the
    /// graph with fresh ones (an *adaptive* adversary). Without churn this
    /// has no effect. Defaults to `false`.
    pub resample: bool,
}

impl ByzantineSpec {
    /// An adversary running `strategy` on the vertices of `selection`.
    pub fn new(strategy: ByzantineStrategy, selection: VictimSelection) -> Self {
        ByzantineSpec {
            strategy,
            selection,
            seed: 0,
            resample: false,
        }
    }

    /// Sets the selection/strategy seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the adversary adaptive under churn: departed victims are
    /// replaced by fresh draws from the surviving population.
    pub fn resample(mut self, resample: bool) -> Self {
        self.resample = resample;
        self
    }
}

impl Serialize for ByzantineSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("strategy".into(), self.strategy.to_value()),
            ("selection".into(), self.selection.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("resample".into(), self.resample.to_value()),
        ])
    }
}

impl Deserialize for ByzantineSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // Only `strategy` is required; `selection` and `seed` fall back to
        // their defaults (the vendored serde derive has no
        // `#[serde(default)]`, hence the manual impl).
        fn field<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
            match value {
                serde::Value::Object(fields) => fields
                    .iter()
                    .find(|(key, _)| key == name)
                    .map(|(_, field)| field),
                _ => None,
            }
        }
        let selection = match field(value, "selection") {
            Some(v) => Deserialize::from_value(v)?,
            None => VictimSelection::default(),
        };
        let seed = match field(value, "seed") {
            Some(v) => Deserialize::from_value(v)?,
            None => 0,
        };
        let resample = match field(value, "resample") {
            Some(v) => Deserialize::from_value(v)?,
            None => false,
        };
        Ok(ByzantineSpec {
            strategy: Deserialize::from_value(serde::get_field(value, "strategy")?)?,
            selection,
            seed,
            resample,
        })
    }
}

/// Maps a variant name of the retired `ProcessSelector` enum onto the
/// registry key it always resolved to, so JSON written before the enum was
/// removed (`"process": "TwoState"`) keeps deserializing unchanged.
fn legacy_process_registry_key(variant: &str) -> Option<&'static str> {
    Some(match variant {
        "TwoState" => "two-state",
        "ThreeState" => "three-state",
        "ThreeColor" => "three-color",
        "Luby" => "luby",
        "RandomPriority" => "random-priority",
        "Greedy" => "greedy",
        "SequentialSelfStab" => "sequential-selfstab",
        _ => return None,
    })
}

/// A full experiment: an algorithm, a graph family, a scheduler, an
/// initialization, and a trial/seed budget.
///
/// Prefer [`ExperimentSpec::builder`] for construction; the struct literal
/// form remains available for the legacy field set.
///
/// Serialization is hand-written (the vendored serde derive has no
/// `#[serde(default)]`): the [`scheduler`](Self::scheduler),
/// [`fault`](Self::fault), and related post-redesign fields fall back to
/// their defaults when absent, and a legacy `process` field (the retired
/// `ProcessSelector` enum, serialized as its variant name) still resolves
/// to the matching [`algorithm`](Self::algorithm) registry key — so JSON
/// written before the registry redesign deserializes unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Name used in reports and file names.
    pub name: String,
    /// Graph family to sample per trial.
    pub graph: GraphSpec,
    /// Registry key of the algorithm to run (e.g. `"two-state"`,
    /// `"beeping-two-state"`); the stable names under which factories are
    /// registered in [`builtin_registry`](crate::registry::builtin_registry).
    pub algorithm: String,
    /// Initial-state strategy (ignored by baselines that choose their own
    /// starting configuration, like Luby and random-priority).
    pub init: InitStrategy,
    /// How the engine processes execute rounds: the sequential shared-stream
    /// model or counter-based intra-round parallelism. Algorithms without
    /// parallel support ignore this field.
    pub execution: ExecutionMode,
    /// How full synchronous rounds traverse the graph: adaptive dense/sparse
    /// direction optimization (`auto`, the serde default), or one path
    /// forced (`sparse` / `dense`). Bit-identical across choices; algorithms
    /// without a frontier engine ignore it.
    pub strategy: RoundStrategy,
    /// Which vertices each round activates. Defaults to
    /// [`SchedulerSpec::Synchronous`], the paper's model; anything else
    /// requires the algorithm to support partial activation.
    pub scheduler: SchedulerSpec,
    /// Optional transient fault injected mid-trial (requires the algorithm
    /// to support fault injection).
    pub fault: Option<FaultSpec>,
    /// Optional topology churn injected mid-trial (requires the algorithm
    /// to support topology changes). `None` — the serde default — keeps
    /// pre-churn specs bit-identical.
    pub churn: Option<ChurnSpec>,
    /// Optional Byzantine adversary active for the whole trial (requires
    /// the algorithm to support Byzantine overrides). `None` — the serde
    /// default — keeps pre-Byzantine specs bit-identical.
    pub byzantine: Option<ByzantineSpec>,
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round budget.
    pub max_rounds: usize,
    /// Base seed; trial `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Whether to record per-round traces (memory-heavy for large runs;
    /// ignored by one-shot baselines, which have no rounds to trace).
    pub record_trace: bool,
}

impl Default for ExperimentSpec {
    /// A small, fast default: the 2-state process on a sparse 100-vertex
    /// `G(n,p)`, one trial, synchronous scheduler.
    fn default() -> Self {
        ExperimentSpec {
            name: "experiment".into(),
            graph: GraphSpec::Gnp { n: 100, p: 0.05 },
            algorithm: "two-state".into(),
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            strategy: RoundStrategy::Auto,
            scheduler: SchedulerSpec::Synchronous,
            fault: None,
            churn: None,
            byzantine: None,
            trials: 1,
            max_rounds: 100_000,
            base_seed: 0,
            record_trace: false,
        }
    }
}

impl Serialize for ExperimentSpec {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".into(), self.name.to_value()),
            ("graph".into(), self.graph.to_value()),
            ("algorithm".into(), self.algorithm.to_value()),
            ("init".into(), self.init.to_value()),
            ("execution".into(), self.execution.to_value()),
            ("strategy".into(), self.strategy.to_value()),
            ("scheduler".into(), self.scheduler.to_value()),
            ("fault".into(), self.fault.to_value()),
            ("churn".into(), self.churn.to_value()),
            ("byzantine".into(), self.byzantine.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("max_rounds".into(), self.max_rounds.to_value()),
            ("base_seed".into(), self.base_seed.to_value()),
            ("record_trace".into(), self.record_trace.to_value()),
        ])
    }
}

impl Deserialize for ExperimentSpec {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        // The post-redesign fields (`algorithm`, `scheduler`, `fault`) fall
        // back to their defaults when absent so that specs serialized before
        // the registry redesign keep deserializing — the vendored serde
        // derive has no `#[serde(default)]`, hence the manual impl.
        fn optional<'a>(value: &'a serde::Value, name: &str) -> Option<&'a serde::Value> {
            match value {
                serde::Value::Object(fields) => fields
                    .iter()
                    .find(|(key, _)| key == name)
                    .map(|(_, field)| field),
                _ => None,
            }
        }
        fn with_default<T: Deserialize + Default>(
            value: &serde::Value,
            name: &str,
        ) -> Result<T, serde::Error> {
            match optional(value, name) {
                Some(field) => T::from_value(field),
                None => Ok(T::default()),
            }
        }
        // Registry-first specs carry the key in `algorithm`; specs written
        // while the retired `ProcessSelector` enum existed carry a
        // `process` variant name instead (possibly next to an explicit
        // `"algorithm": null`). The explicit key wins; the variant name
        // maps onto its registry key; with neither the spec names no
        // algorithm at all.
        let algorithm: String = match optional(value, "algorithm") {
            Some(field) if !matches!(field, serde::Value::Null) => Deserialize::from_value(field)?,
            _ => match optional(value, "process") {
                Some(field) => {
                    let variant: String = Deserialize::from_value(field)?;
                    legacy_process_registry_key(&variant)
                        .ok_or_else(|| {
                            serde::Error::custom(format!(
                                "unknown legacy process selector '{variant}'"
                            ))
                        })?
                        .to_string()
                }
                None => {
                    return Err(serde::Error::custom(
                        "spec names no algorithm (missing field `algorithm`)",
                    ))
                }
            },
        };
        Ok(ExperimentSpec {
            name: Deserialize::from_value(serde::get_field(value, "name")?)?,
            graph: Deserialize::from_value(serde::get_field(value, "graph")?)?,
            algorithm,
            init: Deserialize::from_value(serde::get_field(value, "init")?)?,
            execution: {
                let execution: ExecutionMode =
                    Deserialize::from_value(serde::get_field(value, "execution")?)?;
                execution.validate().map_err(serde::Error::custom)?;
                execution
            },
            strategy: with_default(value, "strategy")?,
            scheduler: with_default(value, "scheduler")?,
            fault: with_default(value, "fault")?,
            churn: with_default(value, "churn")?,
            byzantine: with_default(value, "byzantine")?,
            trials: Deserialize::from_value(serde::get_field(value, "trials")?)?,
            max_rounds: Deserialize::from_value(serde::get_field(value, "max_rounds")?)?,
            base_seed: Deserialize::from_value(serde::get_field(value, "base_seed")?)?,
            record_trace: Deserialize::from_value(serde::get_field(value, "record_trace")?)?,
        })
    }
}

impl ExperimentSpec {
    /// Starts building a spec from the defaults.
    pub fn builder() -> ExperimentSpecBuilder {
        ExperimentSpecBuilder::default()
    }

    /// The registry key this spec resolves to — a convenience alias for
    /// [`algorithm`](Self::algorithm) kept for the many call sites written
    /// while the key was still computed from a legacy selector.
    pub fn algorithm_key(&self) -> &str {
        &self.algorithm
    }
}

/// Builder for [`ExperimentSpec`]; obtain one via
/// [`ExperimentSpec::builder`].
///
/// ```
/// use mis_sim::spec::{ExperimentSpec, GraphSpec, SchedulerSpec};
///
/// let spec = ExperimentSpec::builder()
///     .name("beeping-demo")
///     .graph(GraphSpec::Complete { n: 32 })
///     .algorithm("beeping-two-state")
///     .trials(4)
///     .base_seed(7)
///     .build();
/// assert_eq!(spec.algorithm_key(), "beeping-two-state");
/// assert_eq!(spec.scheduler, SchedulerSpec::Synchronous);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExperimentSpecBuilder {
    spec: ExperimentSpec,
}

impl ExperimentSpecBuilder {
    /// Sets the experiment name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Sets the graph family.
    pub fn graph(mut self, graph: GraphSpec) -> Self {
        self.spec.graph = graph;
        self
    }

    /// Selects the algorithm by registry key.
    pub fn algorithm(mut self, key: impl Into<String>) -> Self {
        self.spec.algorithm = key.into();
        self
    }

    /// Sets the initial-state strategy.
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.spec.init = init;
        self
    }

    /// Sets the execution mode of the engine processes.
    pub fn execution(mut self, execution: ExecutionMode) -> Self {
        self.spec.execution = execution;
        self
    }

    /// Sets the round strategy (adaptive dense/sparse by default).
    pub fn strategy(mut self, strategy: RoundStrategy) -> Self {
        self.spec.strategy = strategy;
        self
    }

    /// Sets the activation scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerSpec) -> Self {
        self.spec.scheduler = scheduler;
        self
    }

    /// Injects a transient fault mid-trial.
    pub fn fault(mut self, fault: FaultSpec) -> Self {
        self.spec.fault = Some(fault);
        self
    }

    /// Injects topology churn mid-trial.
    pub fn churn(mut self, churn: ChurnSpec) -> Self {
        self.spec.churn = Some(churn);
        self
    }

    /// Attaches a Byzantine adversary to every trial.
    pub fn byzantine(mut self, byzantine: ByzantineSpec) -> Self {
        self.spec.byzantine = Some(byzantine);
        self
    }

    /// Sets the number of independent trials.
    pub fn trials(mut self, trials: usize) -> Self {
        self.spec.trials = trials;
        self
    }

    /// Sets the per-trial round budget.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.spec.max_rounds = max_rounds;
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.spec.base_seed = base_seed;
        self
    }

    /// Enables per-round trace recording.
    pub fn record_trace(mut self, record_trace: bool) -> Self {
        self.spec.record_trace = record_trace;
        self
    }

    /// Finishes the spec.
    pub fn build(self) -> ExperimentSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn graph_spec_generates_expected_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let specs = [
            GraphSpec::Gnp { n: 30, p: 0.1 },
            GraphSpec::Complete { n: 12 },
            GraphSpec::DisjointCliques { count: 3, size: 4 },
            GraphSpec::RandomTree { n: 25 },
            GraphSpec::Path { n: 9 },
            GraphSpec::Cycle { n: 8 },
            GraphSpec::Star { n: 7 },
            GraphSpec::Regular { n: 10, d: 4 },
            GraphSpec::Grid { rows: 3, cols: 5 },
            GraphSpec::ForestUnion { n: 20, forests: 2 },
        ];
        for spec in specs {
            let g = spec.generate(&mut rng);
            assert_eq!(g.n(), spec.n(), "{}", spec.label());
            assert!(!spec.label().is_empty());
        }
    }

    #[test]
    fn legacy_process_variant_names_map_onto_distinct_registry_keys() {
        let variants = [
            "TwoState",
            "ThreeState",
            "ThreeColor",
            "Luby",
            "RandomPriority",
            "Greedy",
            "SequentialSelfStab",
        ];
        let keys: std::collections::HashSet<_> = variants
            .iter()
            .map(|v| legacy_process_registry_key(v).expect(v))
            .collect();
        assert_eq!(keys.len(), variants.len());
        assert_eq!(legacy_process_registry_key("BeepingTwoState"), None);
    }

    #[test]
    fn spec_round_trips_through_json() {
        for execution in [
            ExecutionMode::Sequential,
            ExecutionMode::Parallel { threads: 8 },
        ] {
            let spec = ExperimentSpec {
                name: "test".into(),
                graph: GraphSpec::Gnp { n: 10, p: 0.5 },
                algorithm: "three-color".into(),
                init: InitStrategy::Random,
                execution,
                strategy: RoundStrategy::Dense,
                scheduler: SchedulerSpec::Synchronous,
                fault: None,
                churn: Some(ChurnSpec::after_stabilization(ChurnScenario::EdgeChurn {
                    fraction: 0.01,
                })),
                byzantine: Some(ByzantineSpec::new(
                    ByzantineStrategy::Flipper,
                    VictimSelection::HighDegree { count: 3 },
                )),
                trials: 3,
                max_rounds: 100,
                base_seed: 1,
                record_trace: true,
            };
            let json = serde_json::to_string(&spec).unwrap();
            let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn absurd_thread_counts_are_rejected_at_parse_time() {
        let spec = ExperimentSpec {
            execution: ExecutionMode::Parallel { threads: 8 },
            ..ExperimentSpec::default()
        };
        let json = serde_json::to_string(&spec)
            .unwrap()
            .replace("\"threads\":8", "\"threads\":1000000");
        let err = serde_json::from_str::<ExperimentSpec>(&json).unwrap_err();
        assert!(
            err.to_string().contains("exceeds"),
            "unexpected message: {err}"
        );
        // `threads: 0` is the documented auto-detect knob, not an error.
        let auto = json.replace("\"threads\":1000000", "\"threads\":0");
        let back: ExperimentSpec = serde_json::from_str(&auto).unwrap();
        assert_eq!(back.execution, ExecutionMode::Parallel { threads: 0 });
    }

    #[test]
    fn deterministic_families_are_flagged() {
        assert!(GraphSpec::Complete { n: 4 }.is_deterministic());
        assert!(GraphSpec::Path { n: 4 }.is_deterministic());
        assert!(GraphSpec::Grid { rows: 2, cols: 2 }.is_deterministic());
        assert!(!GraphSpec::Gnp { n: 4, p: 0.5 }.is_deterministic());
        assert!(!GraphSpec::RandomTree { n: 4 }.is_deterministic());
    }

    /// One representative instance per [`GraphSpec`] variant, built through
    /// an exhaustive `match` (no wildcard arm): adding a variant without
    /// extending this list is a compile error, which forces the author to
    /// also classify the variant in `is_deterministic`.
    fn one_of_each_family() -> Vec<GraphSpec> {
        // Dispatch on a representative to keep the match exhaustive.
        fn witness(spec: GraphSpec) -> GraphSpec {
            match spec {
                GraphSpec::Gnp { .. }
                | GraphSpec::Complete { .. }
                | GraphSpec::DisjointCliques { .. }
                | GraphSpec::RandomTree { .. }
                | GraphSpec::Path { .. }
                | GraphSpec::Cycle { .. }
                | GraphSpec::Star { .. }
                | GraphSpec::Regular { .. }
                | GraphSpec::Grid { .. }
                | GraphSpec::ForestUnion { .. } => spec,
            }
        }
        vec![
            witness(GraphSpec::Gnp { n: 24, p: 0.2 }),
            witness(GraphSpec::Complete { n: 9 }),
            witness(GraphSpec::DisjointCliques { count: 3, size: 3 }),
            witness(GraphSpec::RandomTree { n: 16 }),
            witness(GraphSpec::Path { n: 11 }),
            witness(GraphSpec::Cycle { n: 12 }),
            witness(GraphSpec::Star { n: 8 }),
            witness(GraphSpec::Regular { n: 12, d: 4 }),
            witness(GraphSpec::Grid { rows: 3, cols: 4 }),
            witness(GraphSpec::ForestUnion { n: 16, forests: 2 }),
        ]
    }

    /// `is_deterministic` must agree with observed generator behavior for
    /// *every* variant: a family is deterministic iff generating with two
    /// different RNG streams yields the same graph.
    #[test]
    fn is_deterministic_matches_generator_behavior_for_every_family() {
        for spec in one_of_each_family() {
            let mut rng_a = ChaCha8Rng::seed_from_u64(1);
            let mut rng_b = ChaCha8Rng::seed_from_u64(2);
            let same = spec.generate(&mut rng_a) == spec.generate(&mut rng_b);
            assert_eq!(
                spec.is_deterministic(),
                same,
                "{}: is_deterministic() = {}, but generating with two seeds {} identical graphs",
                spec.label(),
                spec.is_deterministic(),
                if same { "yields" } else { "does not yield" }
            );
        }
    }

    #[test]
    fn scheduler_spec_builds_and_labels() {
        assert_eq!(SchedulerSpec::default(), SchedulerSpec::Synchronous);
        assert!(SchedulerSpec::Synchronous.is_synchronous());
        assert!(!SchedulerSpec::CentralDaemon.is_synchronous());
        for (spec, label) in [
            (SchedulerSpec::Synchronous, "synchronous"),
            (SchedulerSpec::CentralDaemon, "central-daemon"),
            (SchedulerSpec::RandomSubset { p: 0.3 }, "random-subset"),
        ] {
            assert_eq!(spec.label(), label);
            assert_eq!(spec.build().label(), label);
        }
    }

    #[test]
    fn builder_produces_defaults_and_overrides() {
        let default = ExperimentSpec::builder().build();
        assert_eq!(default, ExperimentSpec::default());
        assert_eq!(default.algorithm_key(), "two-state");

        let spec = ExperimentSpec::builder()
            .name("custom")
            .graph(GraphSpec::Complete { n: 8 })
            .algorithm("beeping-two-state")
            .init(InitStrategy::AllBlack)
            .execution(ExecutionMode::Parallel { threads: 2 })
            .scheduler(SchedulerSpec::RandomSubset { p: 0.5 })
            .fault(FaultSpec::after_stabilization(0.25))
            .trials(9)
            .max_rounds(500)
            .base_seed(3)
            .record_trace(true)
            .build();
        assert_eq!(spec.name, "custom");
        assert_eq!(spec.algorithm_key(), "beeping-two-state");
        assert_eq!(spec.trials, 9);
        assert_eq!(spec.fault.unwrap().at_round, usize::MAX);
        // The last key set wins.
        let back = ExperimentSpec::builder()
            .algorithm("beeping-two-state")
            .algorithm("luby")
            .build();
        assert_eq!(back.algorithm_key(), "luby");
    }

    #[test]
    fn churn_spec_fields_default_when_absent() {
        // A spec written with only the scenario must parse with the
        // after-stabilization defaults.
        let json = r#"{"scenario":{"EdgeChurn":{"fraction":0.05}}}"#;
        let churn: ChurnSpec = serde_json::from_str(json).unwrap();
        assert_eq!(
            churn,
            ChurnSpec::after_stabilization(ChurnScenario::EdgeChurn { fraction: 0.05 })
        );
        assert_eq!(churn.at_round, usize::MAX);
        assert_eq!(churn.bursts, 1);
    }

    #[test]
    fn byzantine_spec_fields_default_when_absent() {
        // A spec written with only the strategy must parse with the
        // one-random-victim / seed-0 defaults.
        let json = r#"{"strategy":"Oscillator"}"#;
        let byz: ByzantineSpec = serde_json::from_str(json).unwrap();
        assert_eq!(byz.strategy, ByzantineStrategy::Oscillator);
        assert_eq!(byz.selection, VictimSelection::Random { count: 1 });
        assert_eq!(byz.seed, 0);
        // Full round trip.
        let full = ByzantineSpec::new(
            ByzantineStrategy::Spoofer,
            VictimSelection::Targeted { ids: vec![3, 1] },
        )
        .seed(42);
        let back: ByzantineSpec =
            serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn fault_spec_victims_default_when_absent() {
        // A fault spec serialized before targeted victims existed must
        // parse in random-count mode.
        let json = r#"{"at_round":50,"fraction":0.25}"#;
        let fault: FaultSpec = serde_json::from_str(json).unwrap();
        assert_eq!(fault.at_round, 50);
        assert_eq!(fault.fraction, 0.25);
        assert!(fault.victims.is_empty());
        let targeted = FaultSpec::targeted(vec![5, 9]).at_round(12);
        let back: FaultSpec =
            serde_json::from_str(&serde_json::to_string(&targeted).unwrap()).unwrap();
        assert_eq!(back, targeted);
    }

    #[test]
    fn victim_selection_resolves_deterministically() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::gnp(50, 0.1, &mut rng);
        let random = VictimSelection::Random { count: 5 };
        let a = random.resolve(&g, 7);
        assert_eq!(a, random.resolve(&g, 7), "same seed, same victims");
        assert_ne!(a, random.resolve(&g, 8), "seed must matter");
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");

        let targeted = VictimSelection::Targeted {
            ids: vec![9, 2, 9, 4],
        };
        assert_eq!(targeted.resolve(&g, 0), vec![2, 4, 9]);

        let hubs = VictimSelection::HighDegree { count: 3 }.resolve(&g, 0);
        assert_eq!(hubs.len(), 3);
        let min_hub_degree = hubs.iter().map(|&u| g.degree(u)).min().unwrap();
        for u in g.vertices() {
            if !hubs.contains(&u) {
                assert!(
                    g.degree(u) <= min_hub_degree,
                    "vertex {u} out-degrees a selected hub"
                );
            }
        }
        // Labels are distinct and serde round-trips.
        for sel in [
            random,
            targeted,
            VictimSelection::HighDegree { count: 3 },
            VictimSelection::default(),
        ] {
            let back: VictimSelection =
                serde_json::from_str(&serde_json::to_string(&sel).unwrap()).unwrap();
            assert_eq!(back, sel);
            assert!(!sel.label().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn targeted_selection_rejects_out_of_range_ids() {
        let g = generators::complete(4);
        VictimSelection::Targeted { ids: vec![4] }.resolve(&g, 0);
    }

    #[test]
    fn pre_byzantine_spec_json_still_parses() {
        // A spec serialized before the byzantine field existed (no
        // "byzantine" key) must deserialize with byzantine = None.
        let spec = ExperimentSpec::default();
        let mut json = serde_json::to_string(&spec).unwrap();
        let needle = "\"byzantine\":null,";
        assert!(json.contains(needle), "serialized form: {json}");
        json = json.replace(needle, "");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn pre_churn_spec_json_still_parses() {
        // A spec serialized before the churn field existed (no "churn" key)
        // must deserialize with churn = None.
        let spec = ExperimentSpec::default();
        let mut json = serde_json::to_string(&spec).unwrap();
        let needle = "\"churn\":null,";
        assert!(json.contains(needle), "serialized form: {json}");
        json = json.replace(needle, "");
        let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn churn_spec_builders_compose() {
        let churn = ChurnSpec::after_stabilization(ChurnScenario::JoinLeave { join: 5, leave: 3 })
            .at_round(100)
            .bursts(4);
        assert_eq!(churn.at_round, 100);
        assert_eq!(churn.bursts, 4);
        let spec = ExperimentSpec::builder().churn(churn).build();
        assert_eq!(spec.churn, Some(churn));
    }

    #[test]
    fn churn_scenario_labels_are_distinct_and_round_trip() {
        let scenarios = [
            ChurnScenario::EdgeChurn { fraction: 0.01 },
            ChurnScenario::JoinLeave { join: 2, leave: 2 },
            ChurnScenario::RegionFailure { fraction: 0.1 },
        ];
        let labels: std::collections::HashSet<_> = scenarios.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), scenarios.len());
        for scenario in scenarios {
            let json = serde_json::to_string(&scenario).unwrap();
            let back: ChurnScenario = serde_json::from_str(&json).unwrap();
            assert_eq!(back, scenario);
        }
    }

    #[test]
    fn legacy_process_field_resolves_and_explicit_algorithm_wins() {
        let legacy = r#"{
            "name": "legacy", "graph": {"Complete": {"n": 8}},
            "process": "ThreeColor", "init": "Random",
            "execution": "Sequential", "trials": 1, "max_rounds": 10,
            "base_seed": 0, "record_trace": false
        }"#;
        let spec: ExperimentSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec.algorithm, "three-color");

        let both = legacy.replace(
            "\"process\": \"ThreeColor\",",
            "\"process\": \"ThreeColor\", \"algorithm\": \"beeping-two-state\",",
        );
        let spec: ExperimentSpec = serde_json::from_str(&both).unwrap();
        assert_eq!(spec.algorithm, "beeping-two-state");

        let unknown = legacy.replace("ThreeColor", "FourState");
        assert!(serde_json::from_str::<ExperimentSpec>(&unknown).is_err());

        let neither = legacy.replace("\"process\": \"ThreeColor\",", "");
        assert!(serde_json::from_str::<ExperimentSpec>(&neither).is_err());
    }
}
