//! Churn burst generation: turns a [`ChurnScenario`] into a concrete
//! [`GraphDelta`] against the algorithm's *current* graph.
//!
//! The driver ([`drive_algorithm`](crate::runner::drive_algorithm)) calls
//! [`generate_burst`] with the trial's RNG stream each time a
//! [`ChurnSpec`](crate::spec::ChurnSpec) fires, then applies the delta
//! through [`Algorithm::apply_mutation`](mis_core::Algorithm::apply_mutation)
//! so the process re-stabilizes incrementally from its current
//! configuration instead of restarting. Burst generation is a pure function
//! of `(scenario, graph, rng)` — trials stay reproducible under churn.

use mis_graph::{Graph, GraphDelta, VertexId};
use rand::Rng;

use crate::spec::ChurnScenario;

/// Draws a Poisson(λ) variate.
///
/// Knuth's product-of-uniforms method for small `λ`; for large `λ` (where
/// the product would underflow and cost Θ(λ) uniforms) a normal
/// approximation `λ + √λ·z` via Box–Muller, clamped at zero. The crossover
/// at 30 keeps both branches well inside their accuracy ranges.
fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let z = (-2.0 * u.ln()).sqrt() * v.cos();
        return (lambda + lambda.sqrt() * z).round().max(0.0) as usize;
    }
    let threshold = (-lambda).exp();
    let mut product: f64 = 1.0;
    let mut count = 0usize;
    loop {
        product *= rng.gen_range(0.0..1.0f64);
        if product <= threshold {
            return count;
        }
        count += 1;
    }
}

/// Samples one endpoint slot of a uniformly random edge: `prefix` is the
/// exclusive prefix-sum of degrees (length `n + 1`, last entry `2m`).
fn random_edge<R: Rng + ?Sized>(
    graph: &Graph,
    prefix: &[usize],
    rng: &mut R,
) -> (VertexId, VertexId) {
    let slot = rng.gen_range(0..*prefix.last().unwrap());
    // First vertex whose range of adjacency slots contains `slot`.
    let u = match prefix.binary_search(&slot) {
        Ok(mut i) => {
            // Skip zero-degree vertices that share the same prefix value.
            while prefix[i + 1] == slot {
                i += 1;
            }
            i
        }
        Err(i) => i - 1,
    };
    let v = graph.neighbors(u).as_compact()[slot - prefix[u]].index();
    (u.min(v), u.max(v))
}

/// Generates one churn burst against `graph`.
///
/// The returned delta is always valid for `graph` (`Graph::apply_delta`
/// cannot fail on it): removals name existing edges, insertions name
/// current non-edges, and joins/leaves reference in-range vertices.
///
/// # Panics
///
/// Panics if a [`ChurnScenario::RegionFailure`] fraction is outside
/// `[0, 1]`, or if an insertion scenario targets a graph too dense (or too
/// small) to hold the requested number of new edges.
pub fn generate_burst<R: Rng + ?Sized>(
    scenario: ChurnScenario,
    graph: &Graph,
    rng: &mut R,
) -> GraphDelta {
    let mut delta = GraphDelta::new();
    match scenario {
        ChurnScenario::EdgeChurn { fraction } => {
            let lambda = fraction * graph.m() as f64;
            let remove = poisson(lambda, rng).min(graph.m());
            let insert = poisson(lambda, rng);
            edge_churn(graph, remove, insert, rng, &mut delta);
        }
        ChurnScenario::JoinLeave { join, leave } => {
            join_leave(graph, join, leave, rng, &mut delta);
        }
        ChurnScenario::RegionFailure { fraction } => {
            assert!(
                (0.0..=1.0).contains(&fraction),
                "region-failure fraction {fraction} outside [0, 1]"
            );
            let k = ((fraction * graph.n() as f64).ceil() as usize).min(graph.n());
            for u in bfs_region(graph, k, rng) {
                delta.detach_vertex(u);
            }
        }
    }
    delta
}

fn edge_churn<R: Rng + ?Sized>(
    graph: &Graph,
    remove: usize,
    insert: usize,
    rng: &mut R,
    delta: &mut GraphDelta,
) {
    let n = graph.n();
    if n < 2 {
        return;
    }
    // Removals: uniform random distinct edges, sampled by adjacency slot.
    if remove > 0 && graph.m() > 0 {
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        prefix.push(0);
        for u in graph.vertices() {
            acc += graph.degree(u);
            prefix.push(acc);
        }
        let mut removed = std::collections::HashSet::new();
        // Rejection sampling over edges; bounded retries keep a burst that
        // asks for nearly all edges from looping forever.
        let mut attempts = 0usize;
        while removed.len() < remove && attempts < 20 * remove + 100 {
            attempts += 1;
            let e = random_edge(graph, &prefix, rng);
            if removed.insert(e) {
                delta.remove_edge(e.0, e.1);
            }
        }
    }
    // Insertions: uniform random non-edges (also not inserted twice).
    let max_new = n * (n - 1) / 2 - graph.m();
    let insert = insert.min(max_new);
    let mut inserted = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while inserted.len() < insert && attempts < 20 * insert + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || graph.neighbors(u).contains(v) {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if inserted.insert(e) {
            delta.add_edge(e.0, e.1);
        }
    }
}

fn join_leave<R: Rng + ?Sized>(
    graph: &Graph,
    join: usize,
    leave: usize,
    rng: &mut R,
    delta: &mut GraphDelta,
) {
    let n = graph.n();
    // Arrivals: each new vertex wires to ~average-degree uniformly random
    // existing vertices (at least one when the graph is non-empty), so the
    // wave preserves the sparsity regime.
    let avg_degree = if n == 0 {
        0
    } else {
        ((2 * graph.m()) as f64 / n as f64).round() as usize
    };
    let targets_per_join = avg_degree.clamp(usize::from(n > 0), n);
    for _ in 0..join {
        let mut targets: Vec<VertexId> = Vec::with_capacity(targets_per_join);
        // New vertices attach to *pre-existing* vertices only: ids >= n are
        // other arrivals of this same burst, which keeps the generated ops
        // independent of arrival order.
        let mut attempts = 0usize;
        while targets.len() < targets_per_join && attempts < 20 * targets_per_join + 100 {
            attempts += 1;
            let t = rng.gen_range(0..n.max(1));
            if n > 0 && !targets.contains(&t) {
                targets.push(t);
            }
        }
        delta.add_vertex(targets);
    }
    // Departures: distinct uniformly random existing vertices.
    let leave = leave.min(n);
    let mut leaving = std::collections::HashSet::new();
    while leaving.len() < leave {
        let u = rng.gen_range(0..n);
        if leaving.insert(u) {
            delta.detach_vertex(u);
        }
    }
}

/// Collects a BFS-contiguous region of (up to) `k` vertices starting from a
/// uniformly random seed; when a component is exhausted before `k` vertices
/// are found, the BFS restarts from a fresh random unvisited vertex, so the
/// failure stays as contiguous as the topology allows.
fn bfs_region<R: Rng + ?Sized>(graph: &Graph, k: usize, rng: &mut R) -> Vec<VertexId> {
    let n = graph.n();
    let k = k.min(n);
    let mut visited = vec![false; n];
    let mut region = Vec::with_capacity(k);
    let mut queue = std::collections::VecDeque::new();
    while region.len() < k {
        if queue.is_empty() {
            // Random unvisited restart seed.
            let mut seed = rng.gen_range(0..n);
            while visited[seed] {
                seed = (seed + 1) % n;
            }
            visited[seed] = true;
            queue.push_back(seed);
        }
        let u = queue.pop_front().expect("queue refilled above");
        region.push(u);
        if region.len() == k {
            break;
        }
        for v in graph.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// One representative instance per [`ChurnScenario`] variant, built
    /// through an exhaustive `match` (no wildcard arm): adding a variant
    /// without extending this list is a compile error, which forces the
    /// author to also handle it in `generate_burst`.
    fn one_of_each_scenario() -> Vec<ChurnScenario> {
        fn witness(scenario: ChurnScenario) -> ChurnScenario {
            match scenario {
                ChurnScenario::EdgeChurn { .. }
                | ChurnScenario::JoinLeave { .. }
                | ChurnScenario::RegionFailure { .. } => scenario,
            }
        }
        vec![
            witness(ChurnScenario::EdgeChurn { fraction: 0.1 }),
            witness(ChurnScenario::JoinLeave { join: 3, leave: 2 }),
            witness(ChurnScenario::RegionFailure { fraction: 0.2 }),
        ]
    }

    /// Burst generation is a pure function of `(scenario, graph, rng)`:
    /// the same seed yields the same delta, a different seed a different
    /// one (for every variant).
    #[test]
    fn burst_generation_is_deterministic_for_every_scenario() {
        let g = generators::gnp(60, 0.1, &mut rng(1));
        for scenario in one_of_each_scenario() {
            let a = generate_burst(scenario, &g, &mut rng(7));
            let b = generate_burst(scenario, &g, &mut rng(7));
            assert_eq!(a, b, "{}", scenario.label());
            let c = generate_burst(scenario, &g, &mut rng(8));
            assert_ne!(a, c, "{}", scenario.label());
        }
    }

    /// Every generated burst must apply cleanly to the graph it was
    /// generated from.
    #[test]
    fn bursts_apply_cleanly_for_every_scenario() {
        let g = generators::gnp(60, 0.1, &mut rng(2));
        for scenario in one_of_each_scenario() {
            let delta = generate_burst(scenario, &g, &mut rng(3));
            let (g2, committed) = g.apply_delta(&delta).unwrap_or_else(|e| {
                panic!("{}: invalid burst: {e}", scenario.label());
            });
            assert_eq!(committed.old_n, g.n());
            assert_eq!(g2.n(), committed.new_n);
        }
    }

    #[test]
    fn edge_churn_moves_roughly_the_requested_volume() {
        let g = generators::gnp(200, 0.1, &mut rng(4));
        let m = g.m() as f64;
        let mut total_removed = 0usize;
        let mut total_inserted = 0usize;
        let rounds = 30;
        let mut r = rng(5);
        for _ in 0..rounds {
            let delta = generate_burst(ChurnScenario::EdgeChurn { fraction: 0.05 }, &g, &mut r);
            let (_, committed) = g.apply_delta(&delta).unwrap();
            total_removed += committed.removed.len();
            total_inserted += committed.inserted.len();
        }
        let expect = 0.05 * m * rounds as f64;
        for (what, total) in [("removed", total_removed), ("inserted", total_inserted)] {
            assert!(
                (total as f64) > 0.5 * expect && (total as f64) < 1.5 * expect,
                "{what} {total} far from expected {expect:.0}"
            );
        }
    }

    #[test]
    fn join_leave_changes_vertex_population() {
        let g = generators::gnp(50, 0.1, &mut rng(6));
        let delta = generate_burst(
            ChurnScenario::JoinLeave { join: 4, leave: 3 },
            &g,
            &mut r9(),
        );
        let (g2, committed) = g.apply_delta(&delta).unwrap();
        assert_eq!(g2.n(), g.n() + 4);
        assert_eq!(committed.new_n, g.n() + 4);
        // Arrivals are wired: the new ids have at least one edge each.
        for u in g.n()..g2.n() {
            assert!(g2.degree(u) >= 1, "arrival {u} left isolated");
        }
    }

    fn r9() -> ChaCha8Rng {
        rng(9)
    }

    #[test]
    fn region_failure_detaches_a_connected_region() {
        let g = generators::grid(10, 10);
        let delta = generate_burst(
            ChurnScenario::RegionFailure { fraction: 0.25 },
            &g,
            &mut rng(10),
        );
        let (g2, committed) = g.apply_delta(&delta).unwrap();
        assert_eq!(g2.n(), g.n());
        // 25 vertices detached: they are isolated afterwards.
        let isolated = g2.vertices().filter(|&u| g2.degree(u) == 0).count();
        assert!(
            isolated >= 25,
            "only {isolated} isolated after region failure"
        );
        assert!(!committed.removed.is_empty());
        assert!(committed.inserted.is_empty());
    }

    #[test]
    fn poisson_sampler_tracks_its_mean() {
        let mut r = rng(11);
        for lambda in [0.5, 4.0, 40.0, 400.0] {
            let samples = 2000;
            let total: usize = (0..samples).map(|_| poisson(lambda, &mut r)).sum();
            let mean = total as f64 / samples as f64;
            assert!(
                (mean - lambda).abs() < 4.0 * (lambda / samples as f64).sqrt() + 0.1,
                "poisson({lambda}) sample mean {mean}"
            );
        }
    }

    #[test]
    fn empty_and_tiny_graphs_do_not_panic() {
        for n in [0usize, 1, 2] {
            let g = Graph::empty(n);
            for scenario in one_of_each_scenario() {
                let delta = generate_burst(scenario, &g, &mut rng(12));
                g.apply_delta(&delta).unwrap();
            }
        }
    }
}
