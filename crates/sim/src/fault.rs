//! Transient-fault injection for the self-stabilization experiments (E11).
//!
//! A self-stabilizing algorithm must recover from *any* corruption of its
//! volatile state. The experiment here is the standard one: run the process
//! to stabilization, corrupt a fraction of the vertex states uniformly at
//! random, and measure how long the process takes to re-stabilize (and verify
//! it again ends in a valid MIS).

use mis_core::init::InitStrategy;
use mis_core::{
    Process, RandomizedLogSwitch, ThreeColor, ThreeColorProcess, ThreeState, ThreeStateProcess,
    TwoStateProcess,
};
use mis_graph::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A process whose per-vertex state can be corrupted in place, modelling a
/// transient fault that flips memory contents without restarting the node.
pub trait Corruptible: Process {
    /// Overwrites the states of `ceil(fraction · n)` uniformly chosen vertices
    /// with uniformly random states.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    fn corrupt_fraction<R: Rng>(&mut self, fraction: f64, rng: &mut R);
}

/// Picks `ceil(fraction · n)` distinct victim vertices — the shared sampler
/// behind every corruption path, so the legacy `Corruptible` experiments and
/// [`mis_core::Algorithm::inject_faults`] disturb identically many vertices
/// for the same fraction.
fn victims<R: Rng>(n: usize, fraction: f64, rng: &mut R) -> Vec<usize> {
    mis_core::fault_victims(n, fraction, rng)
}

impl Corruptible for TwoStateProcess<'_> {
    fn corrupt_fraction<R: Rng>(&mut self, fraction: f64, rng: &mut R) {
        for u in victims(self.n(), fraction, rng) {
            let color = if rng.gen_bool(0.5) {
                mis_core::Color::Black
            } else {
                mis_core::Color::White
            };
            self.set_color(u, color);
        }
    }
}

impl Corruptible for ThreeStateProcess<'_> {
    fn corrupt_fraction<R: Rng>(&mut self, fraction: f64, rng: &mut R) {
        for u in victims(self.n(), fraction, rng) {
            let state = match rng.gen_range(0..3) {
                0 => ThreeState::Black1,
                1 => ThreeState::Black0,
                _ => ThreeState::White,
            };
            self.set_state(u, state);
        }
    }
}

impl Corruptible for ThreeColorProcess<'_, RandomizedLogSwitch<'_>> {
    fn corrupt_fraction<R: Rng>(&mut self, fraction: f64, rng: &mut R) {
        for u in victims(self.n(), fraction, rng) {
            let color = match rng.gen_range(0..3) {
                0 => ThreeColor::Black,
                1 => ThreeColor::Gray,
                _ => ThreeColor::White,
            };
            self.set_color(u, color);
        }
        // The switch levels are volatile memory too: corrupt the same
        // fraction of them (independently chosen victims).
        for u in victims(self.n(), fraction, rng) {
            let level = rng.gen_range(0..=5u8);
            self.switch_mut().set_level(u, level);
        }
    }
}

/// Outcome of one fault-recovery trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Rounds the process needed to stabilize from the initial configuration.
    pub initial_rounds: usize,
    /// Rounds needed to re-stabilize after the corruption.
    pub recovery_rounds: usize,
    /// Whether the black set after recovery is a valid MIS.
    pub recovered_to_mis: bool,
    /// Number of vertices whose state the fault actually changed (the
    /// corruption draws a uniformly random state, which may coincide with the
    /// old one).
    pub corrupted_vertices: usize,
}

/// Runs the standard fault-recovery experiment for the 2-state process.
///
/// 1. Run to stabilization from `init` (recording `initial_rounds`).
/// 2. Corrupt `fraction` of the vertex states.
/// 3. Run to stabilization again (recording `recovery_rounds`) and validate
///    the result.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or the process fails to stabilize
/// within `max_rounds` in either phase (the processes stabilize with
/// probability 1, so a generous budget makes this practically impossible).
pub fn two_state_recovery(
    graph: &Graph,
    init: InitStrategy,
    fraction: f64,
    seed: u64,
    max_rounds: usize,
) -> RecoveryOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = TwoStateProcess::with_init(graph, init, &mut rng);
    let initial_rounds = proc
        .run_to_stabilization(&mut rng, max_rounds)
        .expect("initial stabilization failed");

    let before = proc.states();
    proc.corrupt_fraction(fraction, &mut rng);
    let after = proc.states();
    let corrupted_vertices = before
        .iter()
        .zip(after.iter())
        .filter(|(a, b)| a != b)
        .count();

    let start = proc.round();
    let end = proc
        .run_to_stabilization(&mut rng, max_rounds)
        .expect("recovery failed");
    RecoveryOutcome {
        initial_rounds,
        recovery_rounds: end - start,
        recovered_to_mis: mis_graph::mis_check::is_mis(graph, &proc.black_set()),
        corrupted_vertices,
    }
}

/// Same experiment for the 3-color process (colors corrupted; the randomized
/// switch keeps running and re-synchronizes by itself).
///
/// # Panics
///
/// Panics under the same conditions as [`two_state_recovery`].
pub fn three_color_recovery(
    graph: &Graph,
    init: InitStrategy,
    fraction: f64,
    seed: u64,
    max_rounds: usize,
) -> RecoveryOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut proc = ThreeColorProcess::with_randomized_switch(graph, init, &mut rng);
    let initial_rounds = proc
        .run_to_stabilization(&mut rng, max_rounds)
        .expect("initial stabilization failed");

    let before = proc.colors();
    proc.corrupt_fraction(fraction, &mut rng);
    let after = proc.colors();
    let corrupted_vertices = before
        .iter()
        .zip(after.iter())
        .filter(|(a, b)| a != b)
        .count();

    let start = proc.round();
    let end = proc
        .run_to_stabilization(&mut rng, max_rounds)
        .expect("recovery failed");
    RecoveryOutcome {
        initial_rounds,
        recovery_rounds: end - start,
        recovered_to_mis: mis_graph::mis_check::is_mis(graph, &proc.black_set()),
        corrupted_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;

    #[test]
    fn two_state_recovers_from_partial_corruption() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::gnp(150, 0.05, &mut rng);
        let out = two_state_recovery(&g, InitStrategy::Random, 0.3, 7, 200_000);
        assert!(out.recovered_to_mis);
        assert!(out.corrupted_vertices <= (0.3f64 * 150.0).ceil() as usize);
        // Recovery from a 30% corruption should not be slower than, say, 100x
        // the typical full stabilization; this is a sanity bound, not a claim.
        assert!(out.recovery_rounds <= 200_000);
    }

    #[test]
    fn two_state_recovers_from_total_corruption() {
        let g = generators::complete(64);
        let out = two_state_recovery(&g, InitStrategy::AllWhite, 1.0, 11, 200_000);
        assert!(out.recovered_to_mis);
    }

    #[test]
    fn zero_fraction_recovery_is_instant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_tree(100, &mut rng);
        let out = two_state_recovery(&g, InitStrategy::Random, 0.0, 13, 100_000);
        assert_eq!(out.recovery_rounds, 0);
        assert_eq!(out.corrupted_vertices, 0);
        assert!(out.recovered_to_mis);
    }

    #[test]
    fn three_color_recovers() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::gnp(100, 0.3, &mut rng);
        let out = three_color_recovery(&g, InitStrategy::Random, 0.5, 17, 400_000);
        assert!(out.recovered_to_mis);
    }

    #[test]
    fn three_state_corruption_compiles_and_recovers() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::gnp(80, 0.1, &mut rng);
        let mut proc = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        proc.run_to_stabilization(&mut rng, 100_000).unwrap();
        proc.corrupt_fraction(0.4, &mut rng);
        proc.run_to_stabilization(&mut rng, 100_000).unwrap();
        assert!(mis_graph::mis_check::is_mis(&g, &proc.black_set()));
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn invalid_fraction_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::path(5);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        proc.corrupt_fraction(1.5, &mut rng);
    }
}
