//! The builtin algorithm registry: every algorithm the workspace ships,
//! under one stable string key each.
//!
//! | key | algorithm | crate |
//! |-----|-----------|-------|
//! | `two-state` | 2-state MIS process (Definition 4) | `mis-core` |
//! | `three-state` | 3-state MIS process (Definition 5) | `mis-core` |
//! | `three-color` | 3-color process + randomized switch (Definition 28) | `mis-core` |
//! | `beeping-two-state` | 2-state process over the beeping channel | `mis-comm` |
//! | `stone-age-three-state` | 3-state process over the stone-age channel | `mis-comm` |
//! | `stone-age-three-color` | 3-color process over the stone-age channel | `mis-comm` |
//! | `luby` | Luby's algorithm (baseline) | `mis-baselines` |
//! | `random-priority` | random-priority self-stabilizing baseline | `mis-baselines` |
//! | `greedy` | sequential greedy (baseline) | `mis-baselines` |
//! | `sequential-selfstab` | deterministic sequential self-stab (baseline) | `mis-baselines` |
//!
//! [`ExperimentSpec`](crate::spec::ExperimentSpec) resolves its algorithm
//! through [`builtin_registry`]; external algorithms can be run by building
//! a custom [`Registry`] (register your own
//! [`AlgorithmFactory`](mis_core::AlgorithmFactory) next to
//! [`register_builtin_algorithms`]) and calling
//! [`run_experiment_with`](crate::runner::run_experiment_with).

use std::sync::OnceLock;

use mis_core::Registry;

/// Registers every builtin algorithm (core processes, communication-model
/// adaptations, baselines) into `registry`.
pub fn register_builtin_algorithms(registry: &mut Registry) {
    mis_core::register_core_algorithms(registry);
    mis_comm::register_comm_algorithms(registry);
    mis_baselines::register_baseline_algorithms(registry);
}

/// The shared, lazily initialized registry of all builtin algorithms.
pub fn builtin_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut registry = Registry::new();
        register_builtin_algorithms(&mut registry);
        registry
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_all_ten_algorithms() {
        let r = builtin_registry();
        assert_eq!(r.len(), 10);
        for key in [
            "two-state",
            "three-state",
            "three-color",
            "beeping-two-state",
            "stone-age-three-state",
            "stone-age-three-color",
            "luby",
            "random-priority",
            "greedy",
            "sequential-selfstab",
        ] {
            assert!(r.contains(key), "missing builtin algorithm '{key}'");
            assert!(!r.get(key).unwrap().description().is_empty());
        }
    }
}
