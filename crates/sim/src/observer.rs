//! Streaming observers: per-round telemetry without materializing state.
//!
//! The driver ([`drive_algorithm`](crate::runner::drive_algorithm)) pushes
//! events to any number of [`Observer`]s while a trial runs: one callback
//! per executed round with the aggregate [`StateCounts`], one when the
//! algorithm stabilizes, and one per injected fault. Traces
//! ([`TraceObserver`]), CSV emission ([`CsvRoundObserver`]), and custom
//! telemetry (e.g. streaming quantiles at `n = 10^7`, where storing a full
//! trace is not an option) all hang off this one code path instead of
//! each re-implementing the drive loop.
//!
//! When **no** observer is attached the driver skips the per-round
//! [`counts`](mis_core::Algorithm::counts) calls entirely, so algorithms
//! whose counts are `O(n + m)` (the communication models) pay nothing for
//! the API's existence.

use mis_core::StateCounts;
use mis_graph::CommittedDelta;

use crate::metrics::RoundTrace;

/// Per-round containment telemetry streamed while a trial runs under a
/// Byzantine adversary (see
/// [`ByzantineSpec`](crate::spec::ByzantineSpec)).
///
/// The distance histogram locates the damage: entry `d` of
/// [`unstable_by_distance`](Self::unstable_by_distance) counts the unstable
/// vertices at BFS distance `d` from the Byzantine set (entry 0 is the
/// adversarial vertices themselves). A contained configuration has all its
/// mass at distance at most
/// [`CONTAINMENT_RADIUS`](crate::runner::CONTAINMENT_RADIUS).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ByzantineRoundMetrics {
    /// Vertices whose protocol-visible state the adversary actually flipped
    /// this round.
    pub overridden: usize,
    /// Unstable-vertex counts indexed by BFS distance to the Byzantine set;
    /// trailing zeros are trimmed (an empty vector means no unstable vertex
    /// is reachable from the adversary).
    pub unstable_by_distance: Vec<usize>,
    /// Unstable vertices in components the adversary cannot reach.
    pub unstable_unreachable: usize,
    /// Whether every unstable vertex lies within the containment radius of
    /// the Byzantine set.
    pub contained: bool,
}

/// Receives streaming events while a trial is driven.
///
/// All methods have empty default implementations; implement only the
/// events you care about.
pub trait Observer {
    /// Called once before the first round (with the initial configuration
    /// at `round = 0`) and once after every executed round. A fault
    /// injection re-emits the *current* round with the post-corruption
    /// counts (immediately after
    /// [`on_fault_injection`](Self::on_fault_injection)), so recovery
    /// curves include the unstable spike the fault produced.
    fn on_round(&mut self, round: usize, counts: &StateCounts) {
        let _ = (round, counts);
    }

    /// Called once if the algorithm stabilizes within its round budget.
    fn on_stabilized(&mut self, round: usize) {
        let _ = round;
    }

    /// Called after each fault injection with the number of vertices whose
    /// state actually changed.
    fn on_fault_injection(&mut self, round: usize, corrupted: usize) {
        let _ = (round, corrupted);
    }

    /// Called after each churn burst is applied to the live graph, with the
    /// net topology diff the algorithm absorbed. Like a fault injection, a
    /// topology change re-emits the current round via
    /// [`on_round`](Self::on_round) right after this callback, so recovery
    /// curves include the post-mutation unstable spike.
    fn on_topology_change(&mut self, round: usize, delta: &CommittedDelta) {
        let _ = (round, delta);
    }

    /// Called after each round executed under a Byzantine adversary, with
    /// the adversarial overrides applied and the containment verdict for
    /// the resulting configuration. Emitted *before* the round's
    /// [`on_round`](Self::on_round), so the counts that follow already
    /// include the overrides.
    fn on_byzantine_round(&mut self, round: usize, metrics: &ByzantineRoundMetrics) {
        let _ = (round, metrics);
    }
}

/// Collects the per-round [`StateCounts`] into a [`RoundTrace`] — the
/// observer behind `record_trace` experiment specs.
#[derive(Debug, Clone, Default)]
pub struct TraceObserver {
    trace: RoundTrace,
}

impl TraceObserver {
    /// An empty trace observer.
    pub fn new() -> Self {
        TraceObserver::default()
    }

    /// The collected trace.
    pub fn into_trace(self) -> RoundTrace {
        self.trace
    }
}

impl Observer for TraceObserver {
    fn on_round(&mut self, _round: usize, counts: &StateCounts) {
        self.trace.counts.push(*counts);
    }
}

/// One event recorded by [`EventLogObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverEvent {
    /// A round completed (or the initial configuration was reported).
    Round {
        /// Round index.
        round: usize,
        /// Number of non-stable vertices `|V_t|` at that round.
        unstable: usize,
    },
    /// The algorithm stabilized.
    Stabilized {
        /// Round at which it stabilized.
        round: usize,
    },
    /// A transient fault was injected.
    FaultInjection {
        /// Round at which the fault hit.
        round: usize,
        /// Vertices whose state actually changed.
        corrupted: usize,
    },
    /// A churn burst mutated the live graph.
    TopologyChange {
        /// Round at which the burst hit.
        round: usize,
        /// Edges inserted by the burst (net of cancellations).
        inserted: usize,
        /// Edges removed by the burst (net of cancellations).
        removed: usize,
        /// Vertex count after the burst.
        new_n: usize,
    },
    /// A round executed under a Byzantine adversary (the histogram detail
    /// of [`ByzantineRoundMetrics`] is summarized to keep events `Copy`).
    ByzantineRound {
        /// Round index.
        round: usize,
        /// Vertices the adversary actually flipped this round.
        overridden: usize,
        /// Whether every unstable vertex was within the containment radius.
        contained: bool,
    },
}

/// Records every event in order — useful for tests and for debugging
/// scheduler/fault interactions.
#[derive(Debug, Clone, Default)]
pub struct EventLogObserver {
    /// The recorded events, in emission order.
    pub events: Vec<ObserverEvent>,
}

impl EventLogObserver {
    /// An empty log.
    pub fn new() -> Self {
        EventLogObserver::default()
    }

    /// The round reported by the final `Stabilized` event, if any.
    pub fn stabilized_at(&self) -> Option<usize> {
        self.events.iter().rev().find_map(|e| match e {
            ObserverEvent::Stabilized { round } => Some(*round),
            _ => None,
        })
    }

    /// Total vertices corrupted over all fault injections.
    pub fn total_corrupted(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                ObserverEvent::FaultInjection { corrupted, .. } => *corrupted,
                _ => 0,
            })
            .sum()
    }

    /// The first round whose Byzantine verdict was "contained", if any.
    pub fn first_contained_at(&self) -> Option<usize> {
        self.events.iter().find_map(|e| match e {
            ObserverEvent::ByzantineRound {
                round,
                contained: true,
                ..
            } => Some(*round),
            _ => None,
        })
    }
}

impl Observer for EventLogObserver {
    fn on_round(&mut self, round: usize, counts: &StateCounts) {
        self.events.push(ObserverEvent::Round {
            round,
            unstable: counts.unstable,
        });
    }

    fn on_stabilized(&mut self, round: usize) {
        self.events.push(ObserverEvent::Stabilized { round });
    }

    fn on_fault_injection(&mut self, round: usize, corrupted: usize) {
        self.events
            .push(ObserverEvent::FaultInjection { round, corrupted });
    }

    fn on_topology_change(&mut self, round: usize, delta: &CommittedDelta) {
        self.events.push(ObserverEvent::TopologyChange {
            round,
            inserted: delta.inserted.len(),
            removed: delta.removed.len(),
            new_n: delta.new_n,
        });
    }

    fn on_byzantine_round(&mut self, round: usize, metrics: &ByzantineRoundMetrics) {
        self.events.push(ObserverEvent::ByzantineRound {
            round,
            overridden: metrics.overridden,
            contained: metrics.contained,
        });
    }
}

/// Streams per-round counts as CSV rows into an in-memory buffer — the
/// building block the experiment binaries use to dump round-resolved
/// telemetry without holding a trace.
#[derive(Debug, Clone)]
pub struct CsvRoundObserver {
    buffer: String,
}

impl CsvRoundObserver {
    /// A buffer primed with the CSV header.
    pub fn new() -> Self {
        CsvRoundObserver {
            buffer: String::from("round,black,non_black,active,stable_black,unstable\n"),
        }
    }

    /// The accumulated CSV (header plus one row per observed round).
    pub fn csv(&self) -> &str {
        &self.buffer
    }
}

impl Default for CsvRoundObserver {
    fn default() -> Self {
        CsvRoundObserver::new()
    }
}

impl Observer for CsvRoundObserver {
    fn on_round(&mut self, round: usize, counts: &StateCounts) {
        self.buffer.push_str(&format!(
            "{},{},{},{},{},{}\n",
            round,
            counts.black,
            counts.non_black,
            counts.active,
            counts.stable_black,
            counts.unstable
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(unstable: usize) -> StateCounts {
        StateCounts {
            unstable,
            ..StateCounts::default()
        }
    }

    #[test]
    fn trace_observer_collects_rounds() {
        let mut o = TraceObserver::new();
        o.on_round(0, &counts(5));
        o.on_round(1, &counts(2));
        o.on_stabilized(1); // ignored by the trace
        let trace = o.into_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.counts[1].unstable, 2);
    }

    #[test]
    fn event_log_records_in_order() {
        let mut o = EventLogObserver::new();
        o.on_round(0, &counts(4));
        o.on_fault_injection(3, 2);
        o.on_stabilized(7);
        assert_eq!(o.events.len(), 3);
        assert_eq!(o.stabilized_at(), Some(7));
        assert_eq!(o.total_corrupted(), 2);
        assert_eq!(
            o.events[0],
            ObserverEvent::Round {
                round: 0,
                unstable: 4
            }
        );
    }

    #[test]
    fn event_log_without_stabilization() {
        let o = EventLogObserver::new();
        assert_eq!(o.stabilized_at(), None);
        assert_eq!(o.total_corrupted(), 0);
    }

    #[test]
    fn event_log_records_topology_changes() {
        let mut o = EventLogObserver::new();
        let delta = CommittedDelta {
            old_n: 4,
            new_n: 5,
            inserted: vec![(0, 4)],
            removed: vec![(1, 2), (2, 3)],
        };
        o.on_topology_change(6, &delta);
        assert_eq!(
            o.events,
            vec![ObserverEvent::TopologyChange {
                round: 6,
                inserted: 1,
                removed: 2,
                new_n: 5
            }]
        );
    }

    #[test]
    fn event_log_records_byzantine_rounds() {
        let mut o = EventLogObserver::new();
        o.on_byzantine_round(
            2,
            &ByzantineRoundMetrics {
                overridden: 1,
                unstable_by_distance: vec![1, 4, 2, 3],
                unstable_unreachable: 0,
                contained: false,
            },
        );
        o.on_byzantine_round(
            3,
            &ByzantineRoundMetrics {
                overridden: 1,
                unstable_by_distance: vec![1, 2],
                unstable_unreachable: 0,
                contained: true,
            },
        );
        assert_eq!(o.first_contained_at(), Some(3));
        assert_eq!(
            o.events[0],
            ObserverEvent::ByzantineRound {
                round: 2,
                overridden: 1,
                contained: false
            }
        );
    }

    #[test]
    fn csv_observer_streams_rows() {
        let mut o = CsvRoundObserver::new();
        o.on_round(0, &counts(3));
        o.on_round(1, &counts(0));
        let csv = o.csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("round,"));
        assert!(csv.ends_with("1,0,0,0,0,0\n"));
    }
}
