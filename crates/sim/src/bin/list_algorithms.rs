//! Prints the builtin algorithm registry: one line per algorithm with its
//! key, communication model, and description.
//!
//! Usage: `cargo run -p mis-sim --bin list_algorithms` (or
//! `just list-algorithms`). CI runs this as a smoke check that every
//! builtin algorithm registers cleanly.

use mis_sim::builtin_registry;

fn main() {
    let registry = builtin_registry();
    println!(
        "{} registered algorithms\n{:<24} {:<20} description",
        registry.len(),
        "key",
        "communication"
    );
    for factory in registry.factories() {
        println!(
            "{:<24} {:<20} {}",
            factory.key(),
            factory.communication_model().label(),
            factory.description()
        );
    }
}
