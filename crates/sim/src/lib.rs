//! Experiment harness for the `selfstab-mis` workspace.
//!
//! This crate turns the processes of `mis-core` (and the baselines of
//! `mis-baselines`) into reproducible, parallel Monte-Carlo experiments:
//!
//! * [`spec`] — declarative experiment specifications: which graph family
//!   ([`spec::GraphSpec`]), which process ([`spec::ProcessSelector`]), which
//!   initialization, how many trials, which seed.
//! * [`runner`] — executes a specification: every trial gets its own
//!   deterministic RNG stream (derived from the base seed and the trial
//!   index), trials run in parallel with rayon, and every stabilized trial is
//!   validated against [`mis_graph::mis_check::is_mis`].
//! * [`metrics`] — per-trial results and optional per-round traces.
//! * [`stats`] — summary statistics (mean, quantiles, standard deviation)
//!   used by the experiment tables.
//! * [`sweep`] — parameter sweeps producing CSV tables, one row per
//!   parameter value.
//! * [`fault`] — transient-fault injection for the self-stabilization
//!   (recovery) experiments.
//!
//! # Example
//!
//! ```
//! use mis_sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec, ProcessSelector};
//! use mis_sim::runner::run_experiment;
//! use mis_core::init::InitStrategy;
//!
//! let spec = ExperimentSpec {
//!     name: "quick-demo".into(),
//!     graph: GraphSpec::Gnp { n: 100, p: 0.05 },
//!     process: ProcessSelector::TwoState,
//!     init: InitStrategy::Random,
//!     execution: ExecutionMode::Sequential,
//!     trials: 8,
//!     max_rounds: 100_000,
//!     base_seed: 42,
//!     record_trace: false,
//! };
//! let result = run_experiment(&spec);
//! assert_eq!(result.trials.len(), 8);
//! assert!(result.all_stabilized());
//! println!("mean stabilization time: {:.1} rounds", result.rounds_summary().mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod sweep;

pub use metrics::{RoundTrace, TrialResult};
pub use runner::{run_experiment, DriveOutcome, ExperimentResult};
pub use spec::{ExperimentSpec, GraphSpec, ProcessSelector};
pub use stats::Summary;
