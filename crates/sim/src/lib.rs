//! Experiment harness for the `selfstab-mis` workspace.
//!
//! This crate turns every algorithm of the workspace — the `mis-core`
//! processes, the `mis-comm` weak-communication adaptations, and the
//! `mis-baselines` comparators — into reproducible, parallel Monte-Carlo
//! experiments:
//!
//! * [`registry`] — the builtin string-keyed algorithm registry
//!   ([`registry::builtin_registry`]): ten algorithms behind one object-safe
//!   [`mis_core::Algorithm`] seam.
//! * [`spec`] — declarative experiment specifications: which algorithm
//!   (by registry key), which graph family
//!   ([`spec::GraphSpec`]), which scheduler ([`spec::SchedulerSpec`]), which
//!   initialization, optional fault injection, how many trials, which seed.
//!   Build them with [`spec::ExperimentSpec::builder`].
//! * [`runner`] — executes a specification: every trial gets its own
//!   deterministic RNG stream (derived from the base seed and the trial
//!   index), trials run in parallel with rayon, and every stabilized trial is
//!   validated against [`mis_graph::mis_check::is_mis`].
//! * [`observer`] — streaming per-round telemetry
//!   ([`observer::Observer`]): traces, CSV emission, and custom metrics all
//!   feed off the one drive loop in [`runner::drive_algorithm`].
//! * [`churn`] — dynamic-graph burst generation for the live-mutation
//!   experiments: a [`spec::ChurnSpec`] mutates the running algorithm's
//!   graph through [`mis_core::Algorithm::apply_mutation`] and the trial
//!   measures incremental re-stabilization.
//! * Byzantine campaigns — a [`spec::ByzantineSpec`] hands the selected
//!   vertices ([`spec::VictimSelection`]) to an adversary
//!   ([`mis_core::ByzantineStrategy`]) for the whole trial; the driver
//!   terminates on *containment* (all instability within
//!   [`runner::CONTAINMENT_RADIUS`] of the Byzantine set) and validates
//!   with [`mis_graph::mis_check::is_mis_outside`], streaming per-round
//!   [`observer::ByzantineRoundMetrics`] to observers.
//! * [`metrics`] — per-trial results and optional per-round traces.
//! * [`stats`] — summary statistics (mean, quantiles, standard deviation)
//!   used by the experiment tables.
//! * [`sweep`] — parameter sweeps producing CSV tables, one row per
//!   parameter value.
//! * [`fault`] — transient-fault injection for the self-stabilization
//!   (recovery) experiments; prefer [`spec::FaultSpec`] plus the unified
//!   [`mis_core::Algorithm::inject_faults`] for new experiments.
//!
//! # Example
//!
//! ```
//! use mis_sim::spec::{ExperimentSpec, GraphSpec};
//! use mis_sim::runner::run_experiment;
//!
//! // The beeping-model adaptation, addressed by registry key.
//! let spec = ExperimentSpec::builder()
//!     .name("quick-demo")
//!     .graph(GraphSpec::Gnp { n: 100, p: 0.05 })
//!     .algorithm("beeping-two-state")
//!     .trials(8)
//!     .base_seed(42)
//!     .build();
//! let result = run_experiment(&spec);
//! assert_eq!(result.trials.len(), 8);
//! assert!(result.all_stabilized());
//! println!("mean stabilization time: {:.1} rounds", result.rounds_summary().mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod fault;
pub mod metrics;
pub mod observer;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod stats;
pub mod sweep;

pub use churn::generate_burst;
pub use metrics::{RoundTrace, TrialResult};
pub use observer::{
    ByzantineRoundMetrics, CsvRoundObserver, EventLogObserver, Observer, TraceObserver,
};
pub use registry::{builtin_registry, register_builtin_algorithms};
pub use runner::{
    drive_algorithm, run_experiment, run_experiment_with, DriveOutcome, ExperimentResult,
    CONTAINMENT_CONFIRM_ROUNDS, CONTAINMENT_RADIUS,
};
pub use spec::{
    ByzantineSpec, ChurnScenario, ChurnSpec, ExperimentSpec, FaultSpec, GraphSpec, SchedulerSpec,
    VictimSelection,
};
pub use stats::Summary;
