//! Summary statistics over trial outcomes.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of real values (stabilization times, MIS
/// sizes, bit counts, …).
///
/// # Example
///
/// ```
/// use mis_sim::stats::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert!((s.mean - 2.5).abs() < 1e-12);
/// assert!((s.median - 2.5).abs() < 1e-12);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.max, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (unbiased, 0 if fewer than two samples).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
    /// 10th percentile (interpolated).
    pub p10: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// An empty slice yields the all-zero summary; NaN values are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "samples must not contain NaN"
        );
        let count = samples.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p10: 0.0,
                p90: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile(&sorted, 0.5),
            p10: quantile(&sorted, 0.1),
            p90: quantile(&sorted, 0.9),
        }
    }

    /// Convenience constructor from integer samples (e.g. round counts).
    pub fn from_counts<I: IntoIterator<Item = usize>>(samples: I) -> Self {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Summary::from_samples(&v)
    }

    /// Half-width of an approximate 95% confidence interval of the mean
    /// (normal approximation, `1.96 · s/√n`); 0 for fewer than two samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Linear-interpolation quantile of an already sorted, non-empty slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.p10, 7.5);
        assert_eq!(s.p90, 7.5);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn from_counts_matches_from_samples() {
        let a = Summary::from_counts([1usize, 2, 3]);
        let b = Summary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::from_samples(&[1.0, f64::NAN]);
    }

    proptest! {
        /// Invariants: min ≤ p10 ≤ median ≤ p90 ≤ max and min ≤ mean ≤ max.
        #[test]
        fn quantile_ordering(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_samples(&samples);
            prop_assert!(s.min <= s.p10 + 1e-9);
            prop_assert!(s.p10 <= s.median + 1e-9);
            prop_assert!(s.median <= s.p90 + 1e-9);
            prop_assert!(s.p90 <= s.max + 1e-9);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
        }
    }
}
