//! Trace-equivalence regression suite for the registry redesign.
//!
//! The pre-redesign `run_trial` dispatched over a hard-wired match on the
//! seven original algorithms under a fixed synchronous scheduler. This file
//! freezes that implementation verbatim (modulo the removed `DriveOutcome`
//! plumbing) and asserts that, for every legacy algorithm and a fixed seed,
//! the registry path produces **bit-identical** trials: same rounds to
//! stabilization, same MIS, same random-bit counts, same traces.
//!
//! If this suite fails, the redesign changed observable behavior of legacy
//! specs — which it must never do.

use mis_baselines::{
    greedy_mis_random_order, luby_mis, RandomPriorityMis, SequentialScheduler,
    SequentialSelfStabMis,
};
use mis_core::init::InitStrategy;
use mis_core::{Process, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::VertexSet;
use mis_sim::metrics::RoundTrace;
use mis_sim::runner::run_trial;
use mis_sim::spec::{ExecutionMode, ExperimentSpec, GraphSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The counter-RNG salt of the runner, frozen at its pre-redesign value.
const COUNTER_SEED_SALT: u64 = 0x0005_EEDC_0DE0_FC01;

/// The registry keys of the seven algorithms the pre-redesign `run_trial`
/// dispatched over, in its original match order.
const LEGACY_KEYS: [&str; 7] = [
    "two-state",
    "three-state",
    "three-color",
    "random-priority",
    "luby",
    "greedy",
    "sequential-selfstab",
];

/// What the legacy path measured for one trial.
#[derive(Debug, PartialEq, Eq)]
struct LegacyTrial {
    rounds: usize,
    stabilized: bool,
    black_set: VertexSet,
    random_bits: u64,
    states_per_vertex: usize,
    trace: Option<RoundTrace>,
}

/// Frozen copy of the pre-redesign drive loop.
fn legacy_drive<P: Process>(
    mut proc: P,
    rng: &mut ChaCha8Rng,
    max_rounds: usize,
    record_trace: bool,
) -> LegacyTrial {
    let mut trace = record_trace.then(RoundTrace::default);
    if let Some(t) = trace.as_mut() {
        t.counts.push(proc.counts());
    }
    let mut stabilized = proc.is_stabilized();
    while !stabilized && proc.round() < max_rounds {
        proc.step(rng);
        if let Some(t) = trace.as_mut() {
            t.counts.push(proc.counts());
        }
        stabilized = proc.is_stabilized();
    }
    LegacyTrial {
        rounds: proc.round(),
        stabilized,
        black_set: proc.black_set(),
        random_bits: proc.random_bits_used(),
        states_per_vertex: proc.states_per_vertex(),
        trace,
    }
}

/// Frozen copy of the pre-redesign `run_trial` (without graph sharing,
/// which never changed RNG streams).
fn legacy_run_trial(spec: &ExperimentSpec, trial: usize) -> LegacyTrial {
    let seed = spec.base_seed.wrapping_add(trial as u64);
    let counter_seed = seed ^ COUNTER_SEED_SALT;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = spec.graph.generate(&mut rng);

    match spec.algorithm.as_str() {
        "two-state" => {
            let mut proc = TwoStateProcess::with_init(&graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            legacy_drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        "three-state" => {
            let mut proc = ThreeStateProcess::with_init(&graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            legacy_drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        "three-color" => {
            let mut proc = ThreeColorProcess::with_randomized_switch(&graph, spec.init, &mut rng);
            proc.set_execution(spec.execution, counter_seed);
            legacy_drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        "random-priority" => {
            let proc = RandomPriorityMis::random_init(&graph, &mut rng);
            legacy_drive(proc, &mut rng, spec.max_rounds, spec.record_trace)
        }
        "luby" => {
            let out = luby_mis(&graph, &mut rng);
            LegacyTrial {
                rounds: out.rounds,
                stabilized: true,
                black_set: out.mis,
                random_bits: out.random_bits,
                states_per_vertex: usize::MAX,
                trace: None,
            }
        }
        "greedy" => {
            let mis = greedy_mis_random_order(&graph, &mut rng);
            LegacyTrial {
                rounds: 1,
                stabilized: true,
                black_set: mis,
                random_bits: 0,
                states_per_vertex: usize::MAX,
                trace: None,
            }
        }
        "sequential-selfstab" => {
            let init = spec.init.two_state(graph.n(), &mut rng);
            let mut alg = SequentialSelfStabMis::new(&graph, init);
            let out = alg.run(SequentialScheduler::SmallestId, &mut rng);
            LegacyTrial {
                rounds: out.moves,
                stabilized: true,
                black_set: out.mis,
                random_bits: 0,
                states_per_vertex: 2,
                trace: None,
            }
        }
        other => panic!("no legacy driver for algorithm '{other}'"),
    }
}

fn spec(algorithm: &str, graph: GraphSpec, record_trace: bool) -> ExperimentSpec {
    ExperimentSpec {
        name: format!("legacy-equivalence-{algorithm}"),
        graph,
        algorithm: algorithm.to_string(),
        init: InitStrategy::Random,
        execution: ExecutionMode::Sequential,
        trials: 3,
        max_rounds: 200_000,
        base_seed: 20_230_717,
        record_trace,
        ..ExperimentSpec::default()
    }
}

fn assert_equivalent(spec: &ExperimentSpec) {
    for trial in 0..spec.trials {
        let legacy = legacy_run_trial(spec, trial);
        let new = run_trial(spec, trial);
        let label = format!("{} trial {trial}", spec.name);
        assert_eq!(legacy.rounds, new.rounds, "{label}: rounds diverged");
        assert_eq!(legacy.stabilized, new.stabilized, "{label}: stabilized");
        // TrialResult only carries the MIS size; the full black-set equality
        // is pinned separately in `black_sets_are_identical_not_just_equal_sized`.
        assert_eq!(
            legacy.black_set.len(),
            new.mis_size,
            "{label}: MIS size diverged"
        );
        assert_eq!(
            legacy.random_bits, new.random_bits,
            "{label}: random-bit count diverged"
        );
        assert_eq!(
            legacy.states_per_vertex, new.states_per_vertex,
            "{label}: states-per-vertex diverged"
        );
        assert_eq!(legacy.trace, new.trace, "{label}: trace diverged");
    }
}

#[test]
fn all_seven_legacy_algorithms_are_bit_identical_on_gnp() {
    for key in LEGACY_KEYS {
        assert_equivalent(&spec(key, GraphSpec::Gnp { n: 70, p: 0.1 }, false));
    }
}

#[test]
fn all_seven_legacy_algorithms_are_bit_identical_on_complete() {
    for key in LEGACY_KEYS {
        assert_equivalent(&spec(key, GraphSpec::Complete { n: 40 }, false));
    }
}

#[test]
fn traces_are_bit_identical_where_the_legacy_path_recorded_them() {
    for key in LEGACY_KEYS {
        assert_equivalent(&spec(key, GraphSpec::Gnp { n: 50, p: 0.12 }, true));
    }
}

#[test]
fn parallel_execution_stays_bit_identical() {
    for key in ["two-state", "three-state", "three-color"] {
        let mut s = spec(key, GraphSpec::Gnp { n: 60, p: 0.08 }, false);
        s.execution = ExecutionMode::Parallel { threads: 3 };
        assert_equivalent(&s);
    }
}

/// The black set itself (not just its size) must match: re-derive it from a
/// dedicated registry run against the legacy set, for every algorithm.
#[test]
fn black_sets_are_identical_not_just_equal_sized() {
    use mis_core::AlgorithmConfig;
    use mis_sim::builtin_registry;

    for key in LEGACY_KEYS {
        let s = spec(key, GraphSpec::Gnp { n: 60, p: 0.1 }, false);
        let legacy = legacy_run_trial(&s, 0);

        let seed = s.base_seed;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = s.graph.generate(&mut rng);
        let factory = builtin_registry().get(s.algorithm_key()).unwrap();
        let mut alg = factory.init(
            &graph,
            &AlgorithmConfig {
                init: s.init,
                execution: s.execution,
                strategy: s.strategy,
                counter_seed: seed ^ COUNTER_SEED_SALT,
            },
            &mut rng,
        );
        while !alg.is_stabilized() && alg.round() < s.max_rounds {
            alg.step(mis_core::StepCtx::synchronous(&mut rng));
        }
        assert_eq!(
            legacy.black_set,
            alg.black_set(),
            "{}: black set diverged",
            s.name
        );
    }
}
