//! Serde round-trip coverage for the spec and result types, so experiment
//! specifications can be stored next to `BENCH_scale.json` (and re-read by
//! later sessions) without silent drift — including JSON written *before*
//! the registry redesign, which lacks the `algorithm`, `scheduler`,
//! `fault`, and `churn` fields and names its algorithm through the retired
//! `ProcessSelector` enum's `process` field.

use mis_core::init::InitStrategy;
use mis_core::StateCounts;
use mis_sim::metrics::{RoundTrace, TrialResult};
use mis_sim::runner::run_experiment;
use mis_sim::spec::{
    ByzantineSpec, ByzantineStrategy, ChurnScenario, ChurnSpec, ExecutionMode, ExperimentSpec,
    FaultSpec, GraphSpec, RoundStrategy, SchedulerSpec, VictimSelection,
};

fn all_graph_specs() -> Vec<GraphSpec> {
    vec![
        GraphSpec::Gnp { n: 30, p: 0.125 },
        GraphSpec::Complete { n: 12 },
        GraphSpec::DisjointCliques { count: 3, size: 4 },
        GraphSpec::RandomTree { n: 25 },
        GraphSpec::Path { n: 9 },
        GraphSpec::Cycle { n: 8 },
        GraphSpec::Star { n: 7 },
        GraphSpec::Regular { n: 10, d: 4 },
        GraphSpec::Grid { rows: 3, cols: 5 },
        GraphSpec::ForestUnion { n: 20, forests: 2 },
    ]
}

#[test]
fn every_graph_spec_variant_round_trips() {
    for graph in all_graph_specs() {
        let json = serde_json::to_string(&graph).unwrap();
        let back: GraphSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(graph, back, "{}", graph.label());
    }
}

#[test]
fn experiment_spec_round_trips_across_all_knobs() {
    for graph in all_graph_specs() {
        for scheduler in [
            SchedulerSpec::Synchronous,
            SchedulerSpec::CentralDaemon,
            SchedulerSpec::RandomSubset { p: 0.25 },
        ] {
            for (algorithm, fault, churn, byzantine) in [
                ("three-state".to_string(), None, None, None),
                (
                    "beeping-two-state".to_string(),
                    Some(FaultSpec {
                        at_round: 64,
                        fraction: 0.5,
                        victims: vec![1, 5],
                    }),
                    Some(ChurnSpec {
                        scenario: ChurnScenario::JoinLeave { join: 3, leave: 1 },
                        at_round: 32,
                        bursts: 2,
                    }),
                    Some(
                        ByzantineSpec::new(
                            ByzantineStrategy::Spoofer,
                            VictimSelection::Random { count: 2 },
                        )
                        .seed(17),
                    ),
                ),
            ] {
                let spec = ExperimentSpec {
                    name: "roundtrip".into(),
                    graph,
                    algorithm: algorithm.clone(),
                    init: InitStrategy::AllBlack,
                    execution: ExecutionMode::Parallel { threads: 4 },
                    strategy: RoundStrategy::Sparse,
                    scheduler,
                    fault: fault.clone(),
                    churn,
                    byzantine: byzantine.clone(),
                    trials: 7,
                    max_rounds: 123,
                    base_seed: 99,
                    record_trace: true,
                };
                let json = serde_json::to_string(&spec).unwrap();
                let back: ExperimentSpec = serde_json::from_str(&json).unwrap();
                assert_eq!(spec, back);
            }
        }
    }
}

#[test]
fn pre_redesign_spec_json_still_deserializes_with_defaults() {
    // A spec exactly as the pre-registry harness would have serialized it:
    // no `algorithm`, no `scheduler`, no `fault` field.
    let legacy_json = r#"{
        "name": "legacy",
        "graph": {"Gnp": {"n": 40, "p": 0.1}},
        "process": "TwoState",
        "init": "Random",
        "execution": "Sequential",
        "trials": 5,
        "max_rounds": 1000,
        "base_seed": 7,
        "record_trace": false
    }"#;
    let spec: ExperimentSpec = serde_json::from_str(legacy_json).unwrap();
    assert_eq!(spec.algorithm, "two-state");
    assert_eq!(spec.scheduler, SchedulerSpec::Synchronous);
    assert_eq!(spec.fault, None);
    assert_eq!(spec.byzantine, None);
    assert_eq!(spec.strategy, RoundStrategy::Auto);
    assert_eq!(spec.algorithm_key(), "two-state");
    assert_eq!(spec.trials, 5);

    // And it is actually runnable.
    let result = run_experiment(&spec);
    assert!(result.all_stabilized());
    assert!(result.all_valid());
}

#[test]
fn registry_first_spec_json_parses_without_the_legacy_process_field() {
    // Specs written in the redesign's primary style name only a registry
    // key; the legacy `process` field is long retired and may be absent.
    let json = r#"{
        "name": "registry-first",
        "graph": {"Complete": {"n": 16}},
        "algorithm": "stone-age-three-state",
        "init": "Random",
        "execution": "Sequential",
        "trials": 2,
        "max_rounds": 10000,
        "base_seed": 3,
        "record_trace": false
    }"#;
    let spec: ExperimentSpec = serde_json::from_str(json).unwrap();
    assert_eq!(spec.algorithm_key(), "stone-age-three-state");
    let result = run_experiment(&spec);
    assert!(result.all_stabilized() && result.all_valid());

    // Without either field the spec names no algorithm: that must error.
    let missing_both = r#"{
        "name": "broken",
        "graph": {"Complete": {"n": 16}},
        "init": "Random",
        "execution": "Sequential",
        "trials": 2,
        "max_rounds": 10000,
        "base_seed": 3,
        "record_trace": false
    }"#;
    assert!(serde_json::from_str::<ExperimentSpec>(missing_both).is_err());
}

#[test]
fn trial_result_round_trips_with_and_without_trace() {
    for trace in [
        None,
        Some(RoundTrace {
            counts: vec![
                StateCounts {
                    black: 3,
                    non_black: 7,
                    active: 2,
                    stable_black: 1,
                    unstable: 6,
                },
                StateCounts::default(),
            ],
        }),
    ] {
        let result = TrialResult {
            trial: 4,
            seed: 11,
            n: 10,
            m: 20,
            rounds: 15,
            stabilized: true,
            valid_mis: true,
            mis_size: 4,
            random_bits: 99,
            states_per_vertex: 18,
            trace,
        };
        let json = serde_json::to_string(&result).unwrap();
        let back: TrialResult = serde_json::from_str(&json).unwrap();
        assert_eq!(result, back);
    }
}

#[test]
fn experiment_results_round_trip_end_to_end() {
    let spec = ExperimentSpec::builder()
        .name("serde-e2e")
        .graph(GraphSpec::Complete { n: 16 })
        .algorithm("stone-age-three-state")
        .trials(3)
        .base_seed(21)
        .record_trace(true)
        .build();
    let result = run_experiment(&spec);
    let json = serde_json::to_string(&result).unwrap();
    let back: mis_sim::ExperimentResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result, back);
    assert_eq!(back.spec.algorithm_key(), "stone-age-three-state");
}
