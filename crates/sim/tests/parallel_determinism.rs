//! Property test of the parallel engine's **determinism contract**: under
//! counter-based randomness (`ExecutionMode::Parallel`), the number of
//! worker threads must not influence any observable result. For all three
//! processes, `Parallel{1}`, `Parallel{2}`, and `Parallel{8}` are driven
//! through **arbitrary interleavings of rounds, fault injections**
//! (`corrupt_fraction`, the out-of-band mutation path of experiment E11)
//! **and churn bursts** (`generate_burst` + `apply_mutation`, the live
//! re-stabilization path of `exp_churn`) and must produce identical state
//! vectors, black sets, and [`StateCounts`] after every single operation.
//!
//! Thread count only changes how the round's phases are chunked; since every
//! vertex's randomness is a pure function of `(seed, vertex, round, draw)`
//! and all merges are commutative, the partition must be unobservable.
//!
//! All parallel rounds here dispatch onto the **persistent worker pool**
//! (`rayon::global_pool`); interleaving rounds with graph mutations also
//! proves the pool is safely reused across topology changes — workers hold
//! no per-graph state between dispatches.

use mis_core::init::InitStrategy;
use mis_core::{
    ExecutionMode, Process, StateCounts, ThreeColorProcess, ThreeStateProcess, TwoStateProcess,
};
use mis_graph::{generators, Graph, VertexSet};
use mis_sim::fault::Corruptible;
use mis_sim::generate_burst;
use mis_sim::spec::ChurnScenario;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Thread counts the contract is checked over. 1 is the inline path, 2 and
/// 8 exercise real cross-thread interleavings (8 deliberately exceeds the
/// host's core count on small CI machines — oversubscription must not
/// change results either).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn graph_for(seed: u64, n: usize, p_edge: f64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    generators::gnp(n.max(1), p_edge, &mut r)
}

/// One observation of a process after an operation.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot<S> {
    states: Vec<S>,
    black: VertexSet,
    counts: StateCounts,
    random_bits: u64,
}

/// Drives one replica per thread count through the same op sequence and
/// asserts the snapshots stay identical after every op.
///
/// `make` builds a fresh process for a given thread count; `snapshot`
/// observes it; `apply` performs op `(kind, fraction)` with the replica's
/// own (identically seeded) fault RNG.
fn check_thread_invariance<P, S: std::fmt::Debug + PartialEq + Clone>(
    ops: &[(u8, f64)],
    seed: u64,
    mut make: impl FnMut(usize) -> P,
    snapshot: impl Fn(&P) -> Snapshot<S>,
    mut apply: impl FnMut(&mut P, (u8, f64), &mut ChaCha8Rng),
) -> Result<(), TestCaseError> {
    let mut replicas: Vec<(P, ChaCha8Rng)> = THREAD_COUNTS
        .iter()
        .map(|&threads| (make(threads), ChaCha8Rng::seed_from_u64(seed ^ 0xFA17)))
        .collect();
    for (i, &op) in ops.iter().enumerate() {
        let mut first: Option<Snapshot<S>> = None;
        for (replica_idx, (proc, fault_rng)) in replicas.iter_mut().enumerate() {
            apply(proc, op, fault_rng);
            let snap = snapshot(proc);
            match &first {
                None => first = Some(snap),
                Some(expected) => {
                    prop_assert!(
                        &snap == expected,
                        "op {i} ({op:?}): threads {} diverged from threads {}",
                        THREAD_COUNTS[replica_idx],
                        THREAD_COUNTS[0],
                    );
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 2-state process: identical states/black sets/counts across thread
    /// counts under arbitrary step/corrupt interleavings.
    #[test]
    fn two_state_is_thread_count_invariant(
        seed in 0u64..5_000,
        n in 1usize..60,
        p_edge in 0.0f64..0.4,
        ops in proptest::collection::vec((0u8..3, 0.0f64..1.0), 1..10),
    ) {
        let g = graph_for(seed, n, p_edge);
        check_thread_invariance(
            &ops,
            seed,
            |threads| {
                let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0x2A);
                let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
                p.set_execution(ExecutionMode::Parallel { threads }, seed);
                p
            },
            |p| Snapshot {
                states: p.states(),
                black: p.black_set(),
                counts: p.counts(),
                random_bits: p.random_bits_used(),
            },
            |p, (kind, fraction), fault_rng| match kind {
                0 => {
                    let mut unused = ChaCha8Rng::seed_from_u64(0);
                    p.step(&mut unused);
                }
                1 => p.corrupt_fraction(fraction, fault_rng),
                _ => {
                    let scenario = ChurnScenario::EdgeChurn { fraction: fraction * 0.3 };
                    let delta = generate_burst(scenario, p.graph(), fault_rng);
                    p.apply_mutation(&delta).expect("burst is valid for the current graph");
                }
            },
        )?;
    }

    /// 3-state process: same property (including the retiring-black0 path
    /// and the process-owned black1 counters).
    #[test]
    fn three_state_is_thread_count_invariant(
        seed in 0u64..5_000,
        n in 1usize..60,
        p_edge in 0.0f64..0.4,
        ops in proptest::collection::vec((0u8..3, 0.0f64..1.0), 1..10),
    ) {
        let g = graph_for(seed, n, p_edge);
        check_thread_invariance(
            &ops,
            seed,
            |threads| {
                let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0x3B);
                let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
                p.set_execution(ExecutionMode::Parallel { threads }, seed);
                p
            },
            |p| Snapshot {
                states: p.states(),
                black: p.black_set(),
                counts: p.counts(),
                random_bits: p.random_bits_used(),
            },
            |p, (kind, fraction), fault_rng| match kind {
                0 => {
                    let mut unused = ChaCha8Rng::seed_from_u64(0);
                    p.step(&mut unused);
                }
                1 => p.corrupt_fraction(fraction, fault_rng),
                _ => {
                    let scenario = ChurnScenario::EdgeChurn { fraction: fraction * 0.3 };
                    let delta = generate_burst(scenario, p.graph(), fault_rng);
                    p.apply_mutation(&delta).expect("burst is valid for the current graph");
                }
            },
        )?;
    }

    /// 3-color process: same property (colors, the gray/switch gate, and
    /// the counter-based switch sub-process).
    #[test]
    fn three_color_is_thread_count_invariant(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.4,
        ops in proptest::collection::vec((0u8..3, 0.0f64..1.0), 1..8),
    ) {
        let g = graph_for(seed, n, p_edge);
        check_thread_invariance(
            &ops,
            seed,
            |threads| {
                let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0x4C);
                let mut p =
                    ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
                p.set_execution(ExecutionMode::Parallel { threads }, seed);
                p
            },
            |p| Snapshot {
                states: p.colors(),
                black: p.black_set(),
                counts: p.counts(),
                random_bits: p.random_bits_used(),
            },
            |p, (kind, fraction), fault_rng| match kind {
                0 => {
                    let mut unused = ChaCha8Rng::seed_from_u64(0);
                    p.step(&mut unused);
                }
                1 => p.corrupt_fraction(fraction, fault_rng),
                _ => {
                    let scenario = ChurnScenario::EdgeChurn { fraction: fraction * 0.3 };
                    let delta = generate_burst(scenario, p.graph(), fault_rng);
                    p.apply_mutation(&delta).expect("burst is valid for the current graph");
                }
            },
        )?;
    }
}

/// Beyond proptest's small sizes: one larger sparse instance crosses the
/// parallel-work threshold so the chunked (multi-thread) code paths really
/// run, and the final stabilized configurations must still agree bit for
/// bit across thread counts. A churn burst is applied after the first
/// stabilization and the process re-stabilized — the same persistent pool
/// serves the dispatches on both sides of the mutation (the `exp_churn`
/// execution shape).
#[test]
fn large_instance_runs_identically_across_thread_counts() {
    let g = graph_for(99, 20_000, 6.0 / 20_000.0);
    let mut finals = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        p.set_execution(ExecutionMode::Parallel { threads }, 4321);
        let rounds = p
            .run_to_stabilization(&mut r, 100_000)
            .expect("2-state stabilizes on sparse G(n,p)");
        assert!(mis_graph::mis_check::is_mis(&g, &p.black_set()));
        let mut burst_rng = ChaCha8Rng::seed_from_u64(5678);
        let delta = generate_burst(
            ChurnScenario::EdgeChurn { fraction: 0.05 },
            p.graph(),
            &mut burst_rng,
        );
        p.apply_mutation(&delta)
            .expect("burst is valid for the current graph");
        let rounds2 = p
            .run_to_stabilization(&mut r, 100_000)
            .expect("2-state re-stabilizes after the churn burst");
        assert!(mis_graph::mis_check::is_mis(p.graph(), &p.black_set()));
        finals.push((
            rounds,
            rounds2,
            p.black_set(),
            p.counts(),
            p.random_bits_used(),
        ));
    }
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[0], finals[2]);
}
