//! End-to-end runs of the weak-communication models through
//! `run_experiment`: the beeping 2-state adaptation and both stone-age
//! adaptations are ordinary registry algorithms now, driven by the same
//! scheduler/observer harness as everything else.

use mis_sim::runner::run_experiment;
use mis_sim::spec::{ExperimentSpec, GraphSpec, SchedulerSpec};

const COMM_KEYS: [&str; 3] = [
    "beeping-two-state",
    "stone-age-three-state",
    "stone-age-three-color",
];

fn spec(key: &str, graph: GraphSpec, seed: u64) -> ExperimentSpec {
    ExperimentSpec::builder()
        .name(format!("comm-{key}"))
        .graph(graph)
        .algorithm(key)
        .trials(4)
        .max_rounds(500_000)
        .base_seed(seed)
        .build()
}

#[test]
fn comm_models_stabilize_to_valid_mis_on_gnp() {
    for key in COMM_KEYS {
        let result = run_experiment(&spec(key, GraphSpec::Gnp { n: 60, p: 0.1 }, 404));
        assert_eq!(result.trials.len(), 4, "{key}");
        assert!(result.all_stabilized(), "{key} did not stabilize on G(n,p)");
        assert!(
            result.all_valid(),
            "{key} produced an invalid MIS on G(n,p)"
        );
        assert!(
            result.trials.iter().all(|t| t.mis_size >= 1),
            "{key}: empty MIS on a non-empty graph"
        );
    }
}

#[test]
fn comm_models_stabilize_to_valid_mis_on_complete() {
    for key in COMM_KEYS {
        let result = run_experiment(&spec(key, GraphSpec::Complete { n: 32 }, 405));
        assert!(result.all_stabilized(), "{key} did not stabilize on K_n");
        assert!(result.all_valid(), "{key} produced an invalid MIS on K_n");
        // The MIS of a clique is a single vertex.
        assert!(
            result.trials.iter().all(|t| t.mis_size == 1),
            "{key}: clique MIS must have size 1"
        );
    }
}

#[test]
fn comm_models_report_their_state_budgets() {
    let expectations = [
        ("beeping-two-state", 2),
        ("stone-age-three-state", 3),
        ("stone-age-three-color", 18),
    ];
    for (key, states) in expectations {
        let result = run_experiment(&spec(key, GraphSpec::Gnp { n: 30, p: 0.2 }, 406));
        assert!(result.trials.iter().all(|t| t.states_per_vertex == states));
    }
}

#[test]
fn beeping_model_runs_under_partial_activation_schedulers() {
    for scheduler in [
        SchedulerSpec::CentralDaemon,
        SchedulerSpec::RandomSubset { p: 0.4 },
    ] {
        let mut s = spec("beeping-two-state", GraphSpec::Gnp { n: 24, p: 0.2 }, 407);
        s.scheduler = scheduler;
        s.max_rounds = 1_000_000;
        s.trials = 2;
        let result = run_experiment(&s);
        assert!(result.all_stabilized(), "{scheduler:?}");
        assert!(result.all_valid(), "{scheduler:?}");
    }
}

#[test]
fn comm_models_match_their_direct_processes_through_the_harness() {
    // Trace equivalence at harness level: the beeping adapter and the
    // direct 2-state process consume identical RNG streams, so whole
    // TrialResults coincide (modulo the spec stored inside the result).
    let direct = run_experiment(
        &ExperimentSpec::builder()
            .name("direct")
            .graph(GraphSpec::Gnp { n: 50, p: 0.1 })
            .algorithm("two-state")
            .trials(3)
            .base_seed(77)
            .build(),
    );
    let beeping = run_experiment(
        &ExperimentSpec::builder()
            .name("beeping")
            .graph(GraphSpec::Gnp { n: 50, p: 0.1 })
            .algorithm("beeping-two-state")
            .trials(3)
            .base_seed(77)
            .build(),
    );
    assert_eq!(direct.trials, beeping.trials);
}
