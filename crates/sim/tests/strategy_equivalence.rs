//! Property test: the adaptive dense/sparse round engine is **bit-identical**
//! across strategies. For each of the three processes, under arbitrary
//! interleavings of rounds and fault injections, the `auto` strategy must
//! produce exactly the same states, black sets, random-bit tallies, and
//! [`StateCounts`] as (a) the forced `sparse` strategy and (b) the naive
//! `step_reference` full-scan oracle — the same contract the pre-adaptive
//! engine was pinned to, now extended over the strategy dimension.
//!
//! Fault injections interleave with rounds so the strategy decision is
//! exercised right after out-of-band state mutations (`set_color` /
//! `set_state`), not just along the natural dense → sparse trajectory.

use mis_core::init::InitStrategy;
use mis_core::{Process, RoundStrategy, ThreeColorProcess, ThreeStateProcess, TwoStateProcess};
use mis_graph::{generators, Graph};
use mis_sim::fault::Corruptible;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_for(seed: u64, n: usize, p_edge: f64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    generators::gnp(n.max(1), p_edge, &mut r)
}

/// One observation of a process after an operation.
type Snapshot = (
    Vec<u8>,
    mis_graph::VertexSet,
    mis_core::StateCounts,
    u64,
    bool,
);

macro_rules! strategy_equivalence_test {
    ($name:ident, $make:expr, $states:expr, $reference:expr, $salt:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            #[test]
            fn $name(
                seed in 0u64..5_000,
                n in 1usize..60,
                p_edge in 0.0f64..0.5,
                ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
            ) {
                let g = graph_for(seed, n, p_edge);
                // Three replicas driven by identical RNG streams: auto,
                // forced sparse, and the full-scan reference oracle.
                let mut streams: Vec<ChaCha8Rng> = (0..3)
                    .map(|_| ChaCha8Rng::seed_from_u64(seed ^ $salt))
                    .collect();
                let mut auto_proc = $make(&g, &mut streams[0]);
                auto_proc.set_strategy(RoundStrategy::Auto);
                let mut sparse_proc = $make(&g, &mut streams[1]);
                sparse_proc.set_strategy(RoundStrategy::Sparse);
                let mut reference_proc = $make(&g, &mut streams[2]);

                for (i, &(kind, fraction)) in ops.iter().enumerate() {
                    let mut snapshots: Vec<Snapshot> = Vec::new();
                    for (which, rng) in streams.iter_mut().enumerate() {
                        let proc: &mut _ = match which {
                            0 => &mut auto_proc,
                            1 => &mut sparse_proc,
                            _ => &mut reference_proc,
                        };
                        match (kind, which) {
                            (0, 2) => $reference(proc, rng),
                            (0, _) => proc.step(rng),
                            (_, _) => proc.corrupt_fraction(fraction, rng),
                        }
                        snapshots.push((
                            $states(proc),
                            proc.black_set(),
                            proc.counts(),
                            proc.random_bits_used(),
                            proc.is_stabilized(),
                        ));
                    }
                    prop_assert!(
                        snapshots[0] == snapshots[1],
                        "auto vs sparse diverged at op {} (seed {})",
                        i,
                        seed
                    );
                    prop_assert!(
                        snapshots[0] == snapshots[2],
                        "auto vs reference diverged at op {} (seed {})",
                        i,
                        seed
                    );
                }
            }
        }
    };
}

strategy_equivalence_test!(
    two_state_auto_matches_sparse_and_reference,
    |g, rng: &mut ChaCha8Rng| TwoStateProcess::with_init(g, InitStrategy::Random, rng),
    |p: &TwoStateProcess<'_>| p
        .states()
        .iter()
        .map(|c| c.is_black() as u8)
        .collect::<Vec<u8>>(),
    |p: &mut TwoStateProcess<'_>, rng: &mut ChaCha8Rng| p.step_reference(rng),
    0xA110
);

strategy_equivalence_test!(
    three_state_auto_matches_sparse_and_reference,
    |g, rng: &mut ChaCha8Rng| ThreeStateProcess::with_init(g, InitStrategy::Random, rng),
    |p: &ThreeStateProcess<'_>| p
        .states()
        .iter()
        .map(|s| match s {
            mis_core::ThreeState::White => 0u8,
            mis_core::ThreeState::Black1 => 1,
            mis_core::ThreeState::Black0 => 2,
        })
        .collect::<Vec<u8>>(),
    |p: &mut ThreeStateProcess<'_>, rng: &mut ChaCha8Rng| p.step_reference(rng),
    0xB220
);

strategy_equivalence_test!(
    three_color_auto_matches_sparse_and_reference,
    |g, rng: &mut ChaCha8Rng| ThreeColorProcess::with_randomized_switch(
        g,
        InitStrategy::Random,
        rng
    ),
    |p: &ThreeColorProcess<'_, mis_core::RandomizedLogSwitch<'_>>| p
        .colors()
        .iter()
        .map(|c| match c {
            mis_core::ThreeColor::White => 0u8,
            mis_core::ThreeColor::Black => 1,
            mis_core::ThreeColor::Gray => 2,
        })
        .collect::<Vec<u8>>(),
    |p: &mut ThreeColorProcess<'_, mis_core::RandomizedLogSwitch<'_>>, rng: &mut ChaCha8Rng| p
        .step_reference(rng),
    0xC330
);

/// Forced `dense` must also match forced `sparse` along a pure round
/// trajectory (no faults needed — the strategies differ only in traversal).
#[test]
fn forced_dense_matches_forced_sparse_for_all_processes() {
    let g = graph_for(99, 80, 0.08);
    // 2-state.
    let run_two = |strategy: RoundStrategy| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        p.set_strategy(strategy);
        for _ in 0..30 {
            if p.is_stabilized() {
                break;
            }
            p.step(&mut rng);
        }
        (p.states(), p.black_set(), p.random_bits_used(), p.round())
    };
    assert_eq!(
        run_two(RoundStrategy::Dense),
        run_two(RoundStrategy::Sparse)
    );
    // 3-state.
    let run_three = |strategy: RoundStrategy| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
        p.set_strategy(strategy);
        for _ in 0..30 {
            if p.is_stabilized() {
                break;
            }
            p.step(&mut rng);
        }
        (p.states(), p.black_set(), p.random_bits_used(), p.round())
    };
    assert_eq!(
        run_three(RoundStrategy::Dense),
        run_three(RoundStrategy::Sparse)
    );
    // 3-color.
    let run_color = |strategy: RoundStrategy| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut rng);
        p.set_strategy(strategy);
        for _ in 0..30 {
            if p.is_stabilized() {
                break;
            }
            p.step(&mut rng);
        }
        (p.colors(), p.black_set(), p.random_bits_used(), p.round())
    };
    assert_eq!(
        run_color(RoundStrategy::Dense),
        run_color(RoundStrategy::Sparse)
    );
}
