//! Property test: after **arbitrary interleavings** of `step` and
//! `corrupt_fraction`, every piece of the incremental engine bookkeeping —
//! the delta-maintained black-neighbor counters, the frontier, the cached
//! per-vertex flags, and the cached [`StateCounts`] — must equal a
//! from-scratch recount, for all three processes.
//!
//! `corrupt_fraction` exercises the out-of-band mutation path
//! (`set_color`/`set_state`), which must keep the incremental bookkeeping
//! consistent by delta updates rather than full rebuilds; interleaving it
//! with rounds is exactly the fault-recovery workload of experiment E11.

use mis_core::init::InitStrategy;
use mis_core::{
    ExecutionMode, FrontierEngine, Process, RoundStrategy, StateCounts, ThreeColor,
    ThreeColorProcess, ThreeState, ThreeStateProcess, TwoStateProcess,
};
use mis_graph::{generators, Graph, VertexSet};
use mis_sim::fault::Corruptible;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// From-scratch oracle of everything the engine caches.
struct Oracle {
    black_nbrs: Vec<usize>,
    active: VertexSet,
    pending: VertexSet,
    stable_black: VertexSet,
    unstable: VertexSet,
    counts: StateCounts,
}

/// Recomputes all engine bookkeeping from the graph and the blackness /
/// activity / pending predicates alone.
fn oracle(
    g: &Graph,
    black: impl Fn(usize) -> bool,
    active: impl Fn(usize) -> bool,
    pending: impl Fn(usize) -> bool,
) -> Oracle {
    let n = g.n();
    let black_nbrs: Vec<usize> = (0..n)
        .map(|u| g.neighbors(u).iter().filter(|&v| black(v)).count())
        .collect();
    let stable_black_pred = |u: usize| black(u) && black_nbrs[u] == 0;
    let stable = |u: usize| stable_black_pred(u) || g.neighbors(u).iter().any(&stable_black_pred);
    let active_set = VertexSet::from_indices(n, (0..n).filter(|&u| active(u)));
    let pending_set = VertexSet::from_indices(n, (0..n).filter(|&u| pending(u)));
    let stable_black = VertexSet::from_indices(n, (0..n).filter(|&u| stable_black_pred(u)));
    let unstable = VertexSet::from_indices(n, (0..n).filter(|&u| !stable(u)));
    let counts = StateCounts {
        black: (0..n).filter(|&u| black(u)).count(),
        non_black: (0..n).filter(|&u| !black(u)).count(),
        active: active_set.len(),
        stable_black: stable_black.len(),
        unstable: unstable.len(),
    };
    Oracle {
        black_nbrs,
        active: active_set,
        pending: pending_set,
        stable_black,
        unstable,
        counts,
    }
}

/// Asserts that the engine's incremental bookkeeping equals the oracle.
fn assert_engine_matches(
    engine: &FrontierEngine,
    oracle: &Oracle,
    ctx: &str,
) -> Result<(), TestCaseError> {
    for u in 0..engine.n() {
        prop_assert!(
            engine.black_neighbor_count(u) == oracle.black_nbrs[u],
            "black-neighbor counter of vertex {u} diverged ({} vs {}): {ctx}",
            engine.black_neighbor_count(u),
            oracle.black_nbrs[u]
        );
        prop_assert!(
            engine.is_active(u) == oracle.active.contains(u),
            "active flag of vertex {u} diverged: {ctx}"
        );
        prop_assert!(
            engine.is_pending(u) == oracle.pending.contains(u),
            "frontier membership of vertex {u} diverged: {ctx}"
        );
    }
    prop_assert!(engine.active_set() == oracle.active, "active set: {ctx}");
    prop_assert!(engine.pending_set() == oracle.pending, "frontier: {ctx}");
    prop_assert!(
        engine.stable_black_set() == oracle.stable_black,
        "stable black set: {ctx}"
    );
    prop_assert!(
        engine.unstable_set() == oracle.unstable,
        "unstable set: {ctx}"
    );
    prop_assert!(
        engine.counts() == oracle.counts,
        "cached counts diverged ({:?} vs {:?}): {ctx}",
        engine.counts(),
        oracle.counts
    );
    prop_assert!(
        engine.is_stabilized() == (oracle.counts.unstable == 0),
        "stabilization verdict: {ctx}"
    );
    Ok(())
}

fn graph_for(seed: u64, n: usize, p_edge: f64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    generators::gnp(n.max(1), p_edge, &mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// 2-state process: counters + frontier equal a recount after any
    /// step/corrupt interleaving.
    #[test]
    fn two_state_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| states[v].is_black()).count();
                if states[u].is_black() { bn > 0 } else { bn == 0 }
            };
            let o = oracle(&g, |u| states[u].is_black(), active, active);
            let ctx = format!("op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }

    /// 2-state process in **parallel execution**: the scatter + parallel
    /// flush phases must leave exactly the same bookkeeping a from-scratch
    /// recount produces, for a thread count with real chunking.
    #[test]
    fn two_state_parallel_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        proc.set_execution(ExecutionMode::Parallel { threads: 3 }, seed);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| states[v].is_black()).count();
                if states[u].is_black() { bn > 0 } else { bn == 0 }
            };
            let o = oracle(&g, |u| states[u].is_black(), active, active);
            let ctx = format!("op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }

    /// 2-state process with the round strategy **forced to switch every
    /// round** (dense, sparse, dense, …): the dense full recount and the
    /// sparse delta path must hand each other perfectly consistent
    /// bookkeeping in both directions, interleaved with corruption.
    #[test]
    fn two_state_engine_consistent_under_forced_strategy_switching(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xdead);
        let mut proc = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            proc.set_strategy(if i % 2 == 0 {
                RoundStrategy::Dense
            } else {
                RoundStrategy::Sparse
            });
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| states[v].is_black()).count();
                if states[u].is_black() { bn > 0 } else { bn == 0 }
            };
            let o = oracle(&g, |u| states[u].is_black(), active, active);
            let ctx = format!(
                "switching op {i} ({}), seed {seed}",
                if kind == 0 { "step" } else { "corrupt" }
            );
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }

    /// 3-state process under forced per-round strategy switching: the
    /// process-owned black1 counters must survive the dense/sparse handoffs
    /// too.
    #[test]
    fn three_state_engine_consistent_under_forced_strategy_switching(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        let mut proc = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            proc.set_strategy(if i % 2 == 0 {
                RoundStrategy::Dense
            } else {
                RoundStrategy::Sparse
            });
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| match states[u] {
                ThreeState::Black1 => true,
                ThreeState::Black0 => {
                    !g.neighbors(u).iter().any(|v| states[v] == ThreeState::Black1)
                }
                ThreeState::White => !g.neighbors(u).iter().any(|v| states[v].is_black()),
            };
            let pending = |u: usize| states[u].is_black() || active(u);
            let o = oracle(&g, |u| states[u].is_black(), active, pending);
            let ctx = format!(
                "switching op {i} ({}), seed {seed}",
                if kind == 0 { "step" } else { "corrupt" }
            );
            assert_engine_matches(proc.engine(), &o, &ctx)?;
            for u in g.vertices() {
                let expected = g
                    .neighbors(u)
                    .iter()
                    .filter(|&v| states[v] == ThreeState::Black1)
                    .count();
                prop_assert!(
                    proc.black1_neighbor_count(u) == expected,
                    "black1 counter of vertex {u} diverged (switching)"
                );
            }
        }
    }

    /// 3-color process under forced per-round strategy switching (parallel
    /// execution, so the dense parallel recount is exercised too).
    #[test]
    fn three_color_parallel_engine_consistent_under_forced_strategy_switching(
        seed in 0u64..5_000,
        n in 1usize..40,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..10),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xcafe);
        let mut proc = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        proc.set_execution(ExecutionMode::Parallel { threads: 3 }, seed);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            proc.set_strategy(if i % 2 == 0 {
                RoundStrategy::Dense
            } else {
                RoundStrategy::Sparse
            });
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let colors = proc.colors();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| colors[v].is_black()).count();
                match colors[u] {
                    ThreeColor::Black => bn > 0,
                    ThreeColor::White => bn == 0,
                    ThreeColor::Gray => false,
                }
            };
            let pending = |u: usize| active(u) || colors[u] == ThreeColor::Gray;
            let o = oracle(&g, |u| colors[u].is_black(), active, pending);
            let ctx = format!(
                "switching par op {i} ({}), seed {seed}",
                if kind == 0 { "step" } else { "corrupt" }
            );
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }

    /// 3-state process: same property; pending additionally covers retiring
    /// black0 vertices (every black vertex stays on the frontier).
    #[test]
    fn three_state_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        let mut proc = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| match states[u] {
                ThreeState::Black1 => true,
                ThreeState::Black0 => {
                    !g.neighbors(u).iter().any(|v| states[v] == ThreeState::Black1)
                }
                ThreeState::White => !g.neighbors(u).iter().any(|v| states[v].is_black()),
            };
            let pending = |u: usize| states[u].is_black() || active(u);
            let o = oracle(&g, |u| states[u].is_black(), active, pending);
            let ctx = format!("op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
            // The extra black1 counters are process-owned; check them too.
            for u in g.vertices() {
                let expected = g
                    .neighbors(u)
                    .iter()
                    .filter(|&v| states[v] == ThreeState::Black1)
                    .count();
                prop_assert!(
                    proc.black1_neighbor_count(u) == expected,
                    "black1 counter of vertex {u} diverged"
                );
            }
        }
    }

    /// 3-state process in parallel execution: same oracle property, with
    /// the concurrent black1-counter scatter in play.
    #[test]
    fn three_state_parallel_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..50,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..12),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        let mut proc = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        proc.set_execution(ExecutionMode::Parallel { threads: 3 }, seed);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let states = proc.states();
            let active = |u: usize| match states[u] {
                ThreeState::Black1 => true,
                ThreeState::Black0 => {
                    !g.neighbors(u).iter().any(|v| states[v] == ThreeState::Black1)
                }
                ThreeState::White => !g.neighbors(u).iter().any(|v| states[v].is_black()),
            };
            let pending = |u: usize| states[u].is_black() || active(u);
            let o = oracle(&g, |u| states[u].is_black(), active, pending);
            let ctx = format!("par op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
            for u in g.vertices() {
                let expected = g
                    .neighbors(u)
                    .iter()
                    .filter(|&v| states[v] == ThreeState::Black1)
                    .count();
                prop_assert!(
                    proc.black1_neighbor_count(u) == expected,
                    "black1 counter of vertex {u} diverged (parallel)"
                );
            }
        }
    }

    /// 3-color process in parallel execution: same oracle property, with
    /// the counter-based switch advancing alongside the colors.
    #[test]
    fn three_color_parallel_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..40,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..10),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xcafe);
        let mut proc = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        proc.set_execution(ExecutionMode::Parallel { threads: 3 }, seed);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let colors = proc.colors();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| colors[v].is_black()).count();
                match colors[u] {
                    ThreeColor::Black => bn > 0,
                    ThreeColor::White => bn == 0,
                    ThreeColor::Gray => false,
                }
            };
            let pending = |u: usize| active(u) || colors[u] == ThreeColor::Gray;
            let o = oracle(&g, |u| colors[u].is_black(), active, pending);
            let ctx = format!("par op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }

    /// 3-color process (colors + switch levels corrupted): same property;
    /// pending additionally covers gray vertices waiting for their switch.
    #[test]
    fn three_color_engine_consistent_under_interleavings(
        seed in 0u64..5_000,
        n in 1usize..40,
        p_edge in 0.0f64..0.5,
        ops in proptest::collection::vec((0u8..2, 0.0f64..1.0), 1..10),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xcafe);
        let mut proc = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction)) in ops.iter().enumerate() {
            match kind {
                0 => proc.step(&mut r),
                _ => proc.corrupt_fraction(fraction, &mut r),
            }
            let colors = proc.colors();
            let active = |u: usize| {
                let bn = g.neighbors(u).iter().filter(|&v| colors[v].is_black()).count();
                match colors[u] {
                    ThreeColor::Black => bn > 0,
                    ThreeColor::White => bn == 0,
                    ThreeColor::Gray => false,
                }
            };
            let pending = |u: usize| active(u) || colors[u] == ThreeColor::Gray;
            let o = oracle(&g, |u| colors[u].is_black(), active, pending);
            let ctx = format!("op {i} ({}), seed {seed}", if kind == 0 { "step" } else { "corrupt" });
            assert_engine_matches(proc.engine(), &o, &ctx)?;
        }
    }
}
