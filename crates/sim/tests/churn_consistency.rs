//! Property test for the live-mutation path: after **arbitrary
//! interleavings** of rounds, transient faults, and churn bursts, every
//! process's incremental bookkeeping must be bit-identical to a process
//! rebuilt from scratch on the mutated graph — and the process must still
//! re-stabilize to a valid MIS of whatever topology it ended up on.
//!
//! This is the dynamic-graph counterpart of `engine_consistency.rs`: where
//! that file pins the delta-maintained counters under `step`/`corrupt`
//! interleavings on a *fixed* graph, this one additionally mutates the
//! graph itself through [`mis_core`]'s `apply_mutation` path, using the
//! same burst generator ([`mis_sim::generate_burst`]) the experiment
//! runner uses.

use mis_core::init::InitStrategy;
use mis_core::{
    Process, RandomizedLogSwitch, SwitchProcess, ThreeColorProcess, ThreeStateProcess,
    TwoStateProcess,
};
use mis_graph::{generators, mis_check, Graph};
use mis_sim::fault::Corruptible;
use mis_sim::generate_burst;
use mis_sim::spec::ChurnScenario;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_for(seed: u64, n: usize, p_edge: f64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    generators::gnp(n.max(1), p_edge, &mut r)
}

/// Decodes one proptest-drawn op into a churn scenario (or `None` for the
/// non-churn ops handled by the caller).
fn scenario_for(kind: u8, fraction: f64, a: usize, b: usize) -> ChurnScenario {
    match kind % 3 {
        0 => ChurnScenario::EdgeChurn { fraction },
        1 => ChurnScenario::JoinLeave { join: a, leave: b },
        _ => ChurnScenario::RegionFailure { fraction },
    }
}

/// One op of the interleaving: `0` = synchronous round, `1` = transient
/// fault, `2..` = churn burst of a scenario derived from the payload.
type Op = (u8, f64, usize, usize);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..5, 0.0f64..0.4, 0usize..5, 0usize..4), 1..10)
}

macro_rules! check_bitwise_identical {
    ($p:expr, $fresh:expr, $g:expr, $ctx:expr) => {
        prop_assert!(
            $fresh.counts() == $p.counts(),
            "counts diverged ({:?} vs {:?}): {}",
            $fresh.counts(),
            $p.counts(),
            $ctx
        );
        for u in $g.vertices() {
            prop_assert!(
                $fresh.is_active(u) == $p.is_active(u),
                "active flag of vertex {u} diverged: {}",
                $ctx
            );
            prop_assert!(
                $fresh.is_stable(u) == $p.is_stable(u),
                "stable flag of vertex {u} diverged: {}",
                $ctx
            );
            prop_assert!(
                $fresh.black_neighbor_count(u) == $p.black_neighbor_count(u),
                "black-neighbor counter of vertex {u} diverged ({} vs {}): {}",
                $fresh.black_neighbor_count(u),
                $p.black_neighbor_count(u),
                $ctx
            );
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// 2-state process: every churn burst leaves the engine bit-identical
    /// to a fresh rebuild on the mutated graph, through any interleaving
    /// of rounds and faults; afterwards it still reaches a valid MIS.
    #[test]
    fn two_state_mutation_path_matches_fresh_rebuild(
        seed in 0u64..5_000,
        n in 1usize..40,
        p_edge in 0.0f64..0.4,
        ops in ops_strategy(),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xd1ce);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction, a, b)) in ops.iter().enumerate() {
            match kind {
                0 => p.step(&mut r),
                1 => p.corrupt_fraction(fraction, &mut r),
                _ => {
                    let delta = {
                        let scenario = scenario_for(kind, fraction, a, b);
                        generate_burst(scenario, p.graph(), &mut r)
                    };
                    p.apply_mutation(&delta).expect("generated burst is valid");
                }
            }
            let g2 = p.graph().clone();
            let fresh = TwoStateProcess::new(&g2, p.states());
            let ctx = format!("op {i} (kind {kind}), seed {seed}");
            check_bitwise_identical!(p, fresh, g2, ctx);
        }
        let g_final = p.graph().clone();
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        prop_assert!(mis_check::is_mis(&g_final, &p.black_set()));
    }

    /// 3-state process: same property; the process-owned black1 counters
    /// must survive every burst too.
    #[test]
    fn three_state_mutation_path_matches_fresh_rebuild(
        seed in 0u64..5_000,
        n in 1usize..40,
        p_edge in 0.0f64..0.4,
        ops in ops_strategy(),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xfade);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction, a, b)) in ops.iter().enumerate() {
            match kind {
                0 => p.step(&mut r),
                1 => p.corrupt_fraction(fraction, &mut r),
                _ => {
                    let delta = {
                        let scenario = scenario_for(kind, fraction, a, b);
                        generate_burst(scenario, p.graph(), &mut r)
                    };
                    p.apply_mutation(&delta).expect("generated burst is valid");
                }
            }
            let g2 = p.graph().clone();
            let fresh = ThreeStateProcess::new(&g2, p.states());
            let ctx = format!("op {i} (kind {kind}), seed {seed}");
            check_bitwise_identical!(p, fresh, g2, ctx);
            for u in g2.vertices() {
                prop_assert!(
                    fresh.black1_neighbor_count(u) == p.black1_neighbor_count(u),
                    "black1 counter of vertex {u} diverged: op {i}, seed {seed}"
                );
            }
        }
        let g_final = p.graph().clone();
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        prop_assert!(mis_check::is_mis(&g_final, &p.black_set()));
    }

    /// 3-color process with the randomized log-switch: the switch must
    /// track the mutating vertex population, and a fresh process rebuilt
    /// from the surviving colors + switch levels must agree exactly.
    #[test]
    fn three_color_mutation_path_matches_fresh_rebuild(
        seed in 0u64..5_000,
        n in 1usize..32,
        p_edge in 0.0f64..0.4,
        ops in ops_strategy(),
    ) {
        let g = graph_for(seed, n, p_edge);
        let mut r = ChaCha8Rng::seed_from_u64(seed ^ 0xace5);
        let mut p = ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut r);
        for (i, &(kind, fraction, a, b)) in ops.iter().enumerate() {
            match kind {
                0 => p.step(&mut r),
                1 => p.corrupt_fraction(fraction, &mut r),
                _ => {
                    let delta = {
                        let scenario = scenario_for(kind, fraction, a, b);
                        generate_burst(scenario, p.graph(), &mut r)
                    };
                    p.apply_mutation(&delta).expect("generated burst is valid");
                }
            }
            prop_assert!(p.switch().n() == p.n(), "switch population lags: op {i}");
            let g2 = p.graph().clone();
            let levels: Vec<u8> = g2.vertices().map(|u| p.switch().level(u)).collect();
            let fresh_switch = RandomizedLogSwitch::new(&g2, levels, p.switch().zeta());
            let fresh = ThreeColorProcess::new(&g2, p.colors(), fresh_switch);
            let ctx = format!("op {i} (kind {kind}), seed {seed}");
            check_bitwise_identical!(p, fresh, g2, ctx);
        }
        let g_final = p.graph().clone();
        p.run_to_stabilization(&mut r, 1_000_000).unwrap();
        prop_assert!(mis_check::is_mis(&g_final, &p.black_set()));
    }
}
