//! Property test for the Byzantine-override path: after **arbitrary
//! interleavings** of rounds, transient faults, churn bursts, and
//! adversarial overrides ([`ByzantineOverlay::apply`]), every engine
//! process must
//!
//! 1. stay **bit-identical across thread counts** — the same interleaving
//!    driven through `Parallel {1}`, `Parallel {2}`, and `Parallel {8}`
//!    instances yields the same states, counters, and random-bit totals
//!    (the overlay is keyed by its own counter RNG and must never touch
//!    the trial stream or the per-thread partitioning);
//! 2. keep its **cached counters equal to a from-scratch recount** — the
//!    `O(1)` aggregate counts must agree with the materialized black /
//!    active / stable-black / unstable sets after every op, i.e. the
//!    overlay's delta-repair discipline matches `apply_mutation`'s;
//! 3. still **converge under the driver**: handing the surviving instance
//!    to [`drive_algorithm`] with the same overlay terminates (containment
//!    or stabilization) and yields a valid MIS outside the containment
//!    radius of the Byzantine set.

use mis_core::init::InitStrategy;
use mis_core::{
    AlgorithmConfig, ByzantineOverlay, ByzantineStrategy, ExecutionMode, RoundStrategy, StepCtx,
};
use mis_graph::{generators, mis_check, Graph};
use mis_sim::spec::{ChurnScenario, SchedulerSpec};
use mis_sim::{builtin_registry, drive_algorithm, generate_burst, Observer, CONTAINMENT_RADIUS};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn graph_for(seed: u64, n: usize, p_edge: f64) -> Graph {
    let mut r = ChaCha8Rng::seed_from_u64(seed);
    generators::gnp(n.max(1), p_edge, &mut r)
}

/// One op of the interleaving: `0..=1` = synchronous round, `2` = transient
/// fault of `fraction`, `3` = adversarial override sweep, `4..` = churn
/// burst of a scenario derived from the payload.
type Op = (u8, f64, usize, usize);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..6, 0.0f64..0.4, 0usize..5, 0usize..4), 1..8)
}

fn scenario_for(kind: u8, fraction: f64, a: usize, b: usize) -> ChurnScenario {
    match kind % 3 {
        0 => ChurnScenario::EdgeChurn { fraction },
        1 => ChurnScenario::JoinLeave { join: a, leave: b },
        _ => ChurnScenario::RegionFailure { fraction },
    }
}

/// Drives the interleaving against `Parallel {1, 2, 8}` instances of one
/// registry algorithm and checks the three properties of the module doc.
fn check_process(
    key: &str,
    seed: u64,
    n: usize,
    p_edge: f64,
    strategy_idx: usize,
    byz: &[usize],
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let g = graph_for(seed, n, p_edge);
    let strategy = ByzantineStrategy::all()[strategy_idx % 4];
    let victims: Vec<usize> = byz.iter().map(|&v| v % g.n()).collect();
    let overlay = ByzantineOverlay::new(strategy, victims, seed ^ 0xb12a);

    let factory = builtin_registry().get(key).expect("engine key");
    let threads = [1usize, 2, 8];
    let mut algs = Vec::new();
    let mut rngs = Vec::new();
    for &t in &threads {
        let config = AlgorithmConfig {
            init: InitStrategy::Random,
            execution: ExecutionMode::Parallel { threads: t },
            strategy: RoundStrategy::Auto,
            counter_seed: seed ^ 0xc0de,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd1ce);
        algs.push(factory.init(&g, &config, &mut rng));
        rngs.push(rng);
    }

    for (i, &(kind, fraction, a, b)) in ops.iter().enumerate() {
        for (alg, rng) in algs.iter_mut().zip(rngs.iter_mut()) {
            match kind {
                0 | 1 => alg.step(StepCtx::synchronous(rng)),
                2 => {
                    alg.inject_faults(fraction, rng);
                }
                3 => {
                    overlay.apply(alg.as_mut());
                }
                _ => {
                    let delta = {
                        let scenario = scenario_for(kind, fraction, a, b);
                        let graph = alg.current_graph().expect("engine exposes its graph");
                        generate_burst(scenario, graph, rng)
                    };
                    alg.apply_mutation(&delta)
                        .expect("generated burst is valid");
                }
            }
        }
        // Cached counters must equal a from-scratch recount of the
        // materialized sets, on every instance.
        for (alg, &t) in algs.iter().zip(threads.iter()) {
            let counts = alg.counts();
            let p = alg.process();
            let ctx = format!("op {i} (kind {kind}), threads {t}, seed {seed}");
            prop_assert!(counts.black == p.black_set().len(), "black recount: {ctx}");
            prop_assert!(
                counts.active == p.active_set().len(),
                "active recount: {ctx}"
            );
            prop_assert!(
                counts.stable_black == p.stable_black_set().len(),
                "stable-black recount: {ctx}"
            );
            prop_assert!(
                counts.unstable == p.unstable_set().len(),
                "unstable recount: {ctx}"
            );
            prop_assert!(
                counts.black + counts.non_black == alg.n(),
                "partition: {ctx}"
            );
        }
        // Bit-identity across thread counts.
        let reference = &algs[0];
        for (alg, &t) in algs.iter().zip(threads.iter()).skip(1) {
            let ctx = format!("op {i} (kind {kind}), threads {t} vs 1, seed {seed}");
            prop_assert!(alg.n() == reference.n(), "n diverged: {ctx}");
            prop_assert!(alg.counts() == reference.counts(), "counts diverged: {ctx}");
            prop_assert!(
                alg.black_set() == reference.black_set(),
                "black set diverged: {ctx}"
            );
            prop_assert!(
                alg.process().unstable_set() == reference.process().unstable_set(),
                "unstable set diverged: {ctx}"
            );
            prop_assert!(
                alg.random_bits_used() == reference.random_bits_used(),
                "random-bit totals diverged: {ctx}"
            );
        }
    }

    // The surviving instance must still converge under the real driver and
    // satisfy the containment-aware MIS property.
    let alg = algs[0].as_mut();
    let rng = &mut rngs[0];
    let mut scheduler = SchedulerSpec::Synchronous.build();
    let mut observers: Vec<&mut dyn Observer> = Vec::new();
    let outcome = drive_algorithm(
        alg,
        scheduler.as_mut(),
        rng,
        1_000_000,
        None,
        None,
        Some(&overlay),
        &mut observers,
    );
    prop_assert!(outcome.stabilized, "driver must contain or stabilize");
    let final_graph = alg.current_graph().expect("engine exposes its graph");
    prop_assert!(
        mis_check::is_mis_outside(
            final_graph,
            &outcome.black_set,
            &overlay.vertices(),
            CONTAINMENT_RADIUS
        ),
        "MIS-outside violated for {key}, strategy {strategy}, seed {seed}"
    );
    Ok(())
}

/// Drives an adaptive (re-sampling) overlay through an interleaving of
/// churn bursts and override sweeps on a single instance, with a twin
/// overlay replaying the same calls, and checks that
///
/// 1. re-sampling is **deterministic**: the twin ends with the identical
///    victim set (the draws are a pure function of the construction seed
///    and call sequence);
/// 2. after every re-sample the victim set is **well-formed**: sorted,
///    deduplicated, in range, every victim attached (departed victims are
///    replaced or dropped, never kept), and never larger than before.
///
/// (The trial stream is untouched by construction: draws go through the
/// overlay's own counter RNG, never the honest `rng` passed here.)
fn check_resample(
    key: &str,
    seed: u64,
    n: usize,
    p_edge: f64,
    strategy_idx: usize,
    byz: &[usize],
    ops: &[Op],
) -> Result<(), TestCaseError> {
    let g = graph_for(seed, n, p_edge);
    let strategy = ByzantineStrategy::all()[strategy_idx % 4];
    let victims: Vec<usize> = byz.iter().map(|&v| v % g.n()).collect();
    let overlay =
        ByzantineOverlay::new(strategy, victims.clone(), seed ^ 0xb12a).with_resample(true);
    let twin = ByzantineOverlay::new(strategy, victims, seed ^ 0xb12a).with_resample(true);

    let factory = builtin_registry().get(key).expect("engine key");
    let config = AlgorithmConfig {
        init: InitStrategy::Random,
        execution: ExecutionMode::Parallel { threads: 2 },
        strategy: RoundStrategy::Auto,
        counter_seed: seed ^ 0xc0de,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd1ce);
    let mut alg = factory.init(&g, &config, &mut rng);

    for (i, &(kind, fraction, a, b)) in ops.iter().enumerate() {
        match kind {
            0 | 1 => alg.step(StepCtx::synchronous(&mut rng)),
            2 => {
                alg.inject_faults(fraction, &mut rng);
            }
            3 => {
                overlay.apply(alg.as_mut());
            }
            _ => {
                let delta = {
                    let scenario = scenario_for(kind, fraction, a, b);
                    let graph = alg.current_graph().expect("engine exposes its graph");
                    generate_burst(scenario, graph, &mut rng)
                };
                alg.apply_mutation(&delta)
                    .expect("generated burst is valid");
                let graph = alg.current_graph().expect("engine exposes its graph");
                let before = overlay.vertices().len();
                overlay.resample_departed(graph);
                twin.resample_departed(graph);

                let after = overlay.vertices();
                let ctx = format!("op {i} (kind {kind}), seed {seed}, {key}");
                prop_assert!(after.len() <= before, "victim set grew: {ctx}");
                let mut sorted = after.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert!(after == sorted, "set not canonical: {ctx}");
                for &u in &after {
                    prop_assert!(
                        u < graph.n() && graph.degree(u) > 0,
                        "victim {u} departed but survived re-sampling: {ctx}"
                    );
                }
                prop_assert!(
                    after == twin.vertices(),
                    "re-sampling diverged from the twin replay: {ctx}"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn two_state_byzantine_interleavings_are_thread_invariant(
        seed in 0u64..5_000,
        n in 1usize..32,
        p_edge in 0.0f64..0.4,
        strategy_idx in 0usize..4,
        byz in proptest::collection::vec(0usize..64, 0..4),
        ops in ops_strategy(),
    ) {
        check_process("two-state", seed, n, p_edge, strategy_idx, &byz, &ops)?;
    }

    #[test]
    fn three_state_byzantine_interleavings_are_thread_invariant(
        seed in 0u64..5_000,
        n in 1usize..32,
        p_edge in 0.0f64..0.4,
        strategy_idx in 0usize..4,
        byz in proptest::collection::vec(0usize..64, 0..4),
        ops in ops_strategy(),
    ) {
        check_process("three-state", seed, n, p_edge, strategy_idx, &byz, &ops)?;
    }

    #[test]
    fn three_color_byzantine_interleavings_are_thread_invariant(
        seed in 0u64..5_000,
        n in 1usize..28,
        p_edge in 0.0f64..0.4,
        strategy_idx in 0usize..4,
        byz in proptest::collection::vec(0usize..64, 0..4),
        ops in ops_strategy(),
    ) {
        check_process("three-color", seed, n, p_edge, strategy_idx, &byz, &ops)?;
    }

    #[test]
    fn adaptive_overlays_resample_deterministically_under_churn(
        seed in 0u64..5_000,
        n in 1usize..32,
        p_edge in 0.0f64..0.4,
        strategy_idx in 0usize..4,
        byz in proptest::collection::vec(0usize..64, 0..4),
        ops in ops_strategy(),
    ) {
        check_resample("two-state", seed, n, p_edge, strategy_idx, &byz, &ops)?;
    }
}
