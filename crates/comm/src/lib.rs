//! Weak-communication network models and message-passing adaptations of the
//! MIS processes.
//!
//! The paper's processes are interesting precisely because they only need
//! *severely restricted* communication:
//!
//! * the 2-state process fits the **beeping model with sender collision
//!   detection** (full-duplex beeping, Cornejo & Kuhn 2010; Afek et al.
//!   2013): black vertices beep, white vertices listen, and a node only ever
//!   learns the single bit "did at least one neighbor beep?";
//! * the 3-state and 3-color processes fit the **synchronous stone age
//!   model** (Emek & Wattenhofer 2013): nodes transmit one letter from a
//!   constant alphabet per round and, per letter, can only distinguish
//!   "no neighbor sent it" from "at least one neighbor sent it".
//!
//! This crate provides the two channel primitives ([`beeping::beep_round`]
//! and [`stone_age::stone_age_round`]) and node-local adapters that
//! re-implement the processes **using only the channel feedback** — they
//! never read a neighbor's state directly. Each adapter implements
//! [`mis_core::Process`], and the test suites prove *trace equivalence*: fed
//! the same seed and initial states, an adapter visits exactly the same
//! state sequence as the corresponding direct process from `mis-core`.
//!
//! # Example
//!
//! ```
//! use mis_comm::beeping::BeepingTwoStateMis;
//! use mis_core::{Process, init::InitStrategy};
//! use mis_graph::{generators, mis_check};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
//! let g = generators::gnp(100, 0.08, &mut rng);
//! let mut net = BeepingTwoStateMis::with_init(&g, InitStrategy::Random, &mut rng);
//! net.run_to_stabilization(&mut rng, 100_000).unwrap();
//! assert!(mis_check::is_mis(&g, &net.black_set()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod beeping;
pub mod stone_age;

pub use adapters::{
    register_comm_algorithms, BeepingTwoStateAlgorithm, StoneAgeThreeColorAlgorithm,
    StoneAgeThreeStateAlgorithm,
};
