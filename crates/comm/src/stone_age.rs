//! The synchronous stone age communication model (Emek & Wattenhofer 2013)
//! and the stone-age adaptations of the 3-state and 3-color MIS processes.
//!
//! In the stone age model every node transmits, per round, at most one
//! letter from a constant-size alphabet, and for each letter it can only
//! distinguish "no neighbor sent this letter" from "at least one neighbor
//! sent this letter" (the one-two-many principle with counting bound 1).
//! There is no collision detection and no sender identity.

use mis_core::init::InitStrategy;
use mis_core::{Process, StateCounts, ThreeColor, ThreeState, DEFAULT_ZETA};
use mis_graph::{Graph, VertexId, VertexSet};
use rand::{Rng, RngCore};

/// Simulates one synchronous round of the stone age channel.
///
/// `transmit[u]` is the letter node `u` broadcasts this round (or `None` for
/// silence). The result gives each node, for every letter of the alphabet,
/// whether **at least one neighbor** transmitted that letter.
///
/// # Panics
///
/// Panics if `transmit.len() != g.n()` or some letter is `>= alphabet`.
///
/// # Example
///
/// ```
/// use mis_comm::stone_age::stone_age_round;
/// use mis_graph::Graph;
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
/// let heard = stone_age_round(&g, &[Some(0), None, Some(1)], 2);
/// assert_eq!(heard[1], vec![true, true]);  // middle node hears both letters
/// assert_eq!(heard[0], vec![false, false]); // endpoint hears only silence
/// ```
pub fn stone_age_round(g: &Graph, transmit: &[Option<u8>], alphabet: usize) -> Vec<Vec<bool>> {
    assert_eq!(
        transmit.len(),
        g.n(),
        "transmission vector length must equal the number of vertices"
    );
    let mut heard = vec![vec![false; alphabet]; g.n()];
    for u in g.vertices() {
        if let Some(letter) = transmit[u] {
            assert!(
                (letter as usize) < alphabet,
                "letter {letter} outside alphabet of size {alphabet}"
            );
            for v in g.neighbors(u) {
                heard[v][letter as usize] = true;
            }
        }
    }
    heard
}

/// The 3-state MIS process as a stone age algorithm with a 2-letter alphabet.
///
/// Nodes in state `black1` transmit letter 0, nodes in state `black0`
/// transmit letter 1, white nodes stay silent. The node-local update uses
/// only the two per-letter "heard" bits, which is exactly the information the
/// 3-state rule needs: whether some neighbor is `black1`, and whether some
/// neighbor is black at all.
///
/// Trace equivalent to [`mis_core::ThreeStateProcess`] given the same seed
/// and initial states.
#[derive(Debug, Clone)]
pub struct StoneAgeThreeStateMis<'g> {
    graph: &'g Graph,
    states: Vec<ThreeState>,
    round: usize,
    random_bits: u64,
}

/// Alphabet used by [`StoneAgeThreeStateMis`]: letter 0 = "I am black1",
/// letter 1 = "I am black0".
pub const THREE_STATE_ALPHABET: usize = 2;

impl<'g> StoneAgeThreeStateMis<'g> {
    /// Creates the network with the given initial states.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<ThreeState>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        StoneAgeThreeStateMis {
            graph,
            states,
            round: 0,
            random_bits: 0,
        }
    }

    /// Creates the network with states drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        Self::new(graph, init.three_state(graph.n(), rng))
    }

    /// Current state of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: VertexId) -> ThreeState {
        self.states[u]
    }

    /// The full state vector.
    pub fn states(&self) -> &[ThreeState] {
        &self.states
    }

    /// The communication graph the network runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The letter node `u` transmits in the next round (`None` = silence).
    pub fn transmission(&self, u: VertexId) -> Option<u8> {
        match self.states[u] {
            ThreeState::Black1 => Some(0),
            ThreeState::Black0 => Some(1),
            ThreeState::White => None,
        }
    }

    /// Overwrites the state of node `u` in place, modelling a transient
    /// fault that corrupts the node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_state(&mut self, u: VertexId, state: ThreeState) {
        self.states[u] = state;
    }

    /// Executes one stone-age round in which only the nodes of `scheduled`
    /// are activated: the channel round happens as usual, but only
    /// scheduled nodes apply the update rule (re-draw when active, retire
    /// `black0 → white` under a `black1` neighbor); all others keep their
    /// state. A full `scheduled` set is exactly a synchronous
    /// [`step`](Process::step).
    ///
    /// # Panics
    ///
    /// Panics if `scheduled.universe() != n`.
    pub fn step_scheduled(&mut self, scheduled: &VertexSet, rng: &mut dyn RngCore) {
        assert_eq!(
            scheduled.universe(),
            self.graph.n(),
            "scheduled set universe must match the graph"
        );
        let heard = self.heard();
        for u in scheduled.iter() {
            if Self::node_is_active(self.states[u], &heard[u]) {
                self.random_bits += 1;
                self.states[u] = if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                };
            } else if self.states[u] == ThreeState::Black0 {
                self.states[u] = ThreeState::White;
            }
        }
        self.round += 1;
    }

    fn heard(&self) -> Vec<Vec<bool>> {
        let transmit: Vec<Option<u8>> = self
            .graph
            .vertices()
            .map(|u| self.transmission(u))
            .collect();
        stone_age_round(self.graph, &transmit, THREE_STATE_ALPHABET)
    }

    fn node_is_active(state: ThreeState, heard: &[bool]) -> bool {
        let heard_black1 = heard[0];
        let heard_black = heard[0] || heard[1];
        match state {
            ThreeState::Black1 => true,
            ThreeState::Black0 => !heard_black1,
            ThreeState::White => !heard_black,
        }
    }

    fn stable_black(&self, heard: &[Vec<bool>], u: VertexId) -> bool {
        self.states[u].is_black() && !heard[u][0] && !heard[u][1]
    }
}

impl Process for StoneAgeThreeStateMis<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let heard = self.heard();
        for u in self.graph.vertices() {
            if Self::node_is_active(self.states[u], &heard[u]) {
                self.random_bits += 1;
                self.states[u] = if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                };
            } else if self.states[u] == ThreeState::Black0 {
                self.states[u] = ThreeState::White;
            }
        }
        self.round += 1;
    }

    fn is_stabilized(&self) -> bool {
        let heard = self.heard();
        self.graph.vertices().all(|u| {
            self.stable_black(&heard, u)
                || self
                    .graph
                    .neighbors(u)
                    .iter()
                    .any(|v| self.stable_black(&heard, v))
        })
    }

    fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.states[u].is_black()),
        )
    }

    fn active_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| Self::node_is_active(self.states[u], &heard[u])),
        )
    }

    fn stable_black_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| self.stable_black(&heard, u)),
        )
    }

    fn unstable_set(&self) -> VertexSet {
        let stable_black = self.stable_black_set();
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| {
                !stable_black.contains(u)
                    && !self
                        .graph
                        .neighbors(u)
                        .iter()
                        .any(|v| stable_black.contains(v))
            }),
        )
    }

    fn counts(&self) -> StateCounts {
        let heard = self.heard();
        let stable_black = self.stable_black_set();
        let mut c = StateCounts::default();
        for u in self.graph.vertices() {
            if self.states[u].is_black() {
                c.black += 1;
            } else {
                c.non_black += 1;
            }
            if Self::node_is_active(self.states[u], &heard[u]) {
                c.active += 1;
            }
            if stable_black.contains(u) {
                c.stable_black += 1;
            }
            if !stable_black.contains(u)
                && !self
                    .graph
                    .neighbors(u)
                    .iter()
                    .any(|v| stable_black.contains(v))
            {
                c.unstable += 1;
            }
        }
        c
    }

    fn states_per_vertex(&self) -> usize {
        3
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

/// The 3-color MIS process (with its randomized logarithmic switch) as a
/// stone age algorithm with an 18-letter alphabet: each node broadcasts its
/// full local state `(color, level)` as a single letter
/// `color_index * 6 + level`, and the update rule uses only the per-letter
/// "heard" bits to recover "some neighbor is black" and "the maximum level
/// among my neighbors" — the two aggregates the process needs.
///
/// Trace equivalent to
/// [`mis_core::ThreeColorProcess`]`<`[`mis_core::RandomizedLogSwitch`]`>`
/// given the same seed and initial states.
#[derive(Debug, Clone)]
pub struct StoneAgeThreeColorMis<'g> {
    graph: &'g Graph,
    colors: Vec<ThreeColor>,
    levels: Vec<u8>,
    zeta: f64,
    round: usize,
    random_bits: u64,
}

/// Alphabet used by [`StoneAgeThreeColorMis`]: `color_index * 6 + level` with
/// color indices black = 0, white = 1, gray = 2 and levels `0..=5`.
pub const THREE_COLOR_ALPHABET: usize = 18;

impl<'g> StoneAgeThreeColorMis<'g> {
    /// Creates the network with explicit colors and switch levels.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the graph or a level exceeds 5.
    pub fn new(graph: &'g Graph, colors: Vec<ThreeColor>, levels: Vec<u8>) -> Self {
        assert_eq!(
            colors.len(),
            graph.n(),
            "initial color vector length must equal the number of vertices"
        );
        assert_eq!(
            levels.len(),
            graph.n(),
            "initial level vector length must equal the number of vertices"
        );
        assert!(levels.iter().all(|&l| l <= 5), "levels must be in 0..=5");
        StoneAgeThreeColorMis {
            graph,
            colors,
            levels,
            zeta: DEFAULT_ZETA,
            round: 0,
            random_bits: 0,
        }
    }

    /// Creates the network with colors and levels drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        let colors = init.three_color(graph.n(), rng);
        let levels = init.switch_levels(graph.n(), rng);
        Self::new(graph, colors, levels)
    }

    /// Current color of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn color(&self, u: VertexId) -> ThreeColor {
        self.colors[u]
    }

    /// Current switch level of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn level(&self, u: VertexId) -> u8 {
        self.levels[u]
    }

    /// The full color vector.
    pub fn colors(&self) -> &[ThreeColor] {
        &self.colors
    }

    /// The communication graph the network runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Overwrites the color and switch level of node `u` in place, modelling
    /// a transient fault that corrupts the node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range or `level > 5`.
    pub fn set_node_state(&mut self, u: VertexId, color: ThreeColor, level: u8) {
        assert!(level <= 5, "levels must be in 0..=5");
        self.colors[u] = color;
        self.levels[u] = level;
    }

    /// The letter node `u` transmits: its full `(color, level)` state.
    pub fn transmission(&self, u: VertexId) -> Option<u8> {
        let color_index = match self.colors[u] {
            ThreeColor::Black => 0u8,
            ThreeColor::White => 1,
            ThreeColor::Gray => 2,
        };
        Some(color_index * 6 + self.levels[u])
    }

    fn heard(&self) -> Vec<Vec<bool>> {
        let transmit: Vec<Option<u8>> = self
            .graph
            .vertices()
            .map(|u| self.transmission(u))
            .collect();
        stone_age_round(self.graph, &transmit, THREE_COLOR_ALPHABET)
    }

    /// Whether any *black* letter (color index 0, any level) was heard.
    fn heard_black(heard: &[bool]) -> bool {
        heard[..6].iter().any(|&h| h)
    }

    /// Maximum level over all letters heard, or `None` if silence.
    fn heard_max_level(heard: &[bool]) -> Option<u8> {
        (0..18u8)
            .filter(|&l| heard[l as usize])
            .map(|l| l % 6)
            .max()
    }

    fn node_is_active(color: ThreeColor, heard: &[bool]) -> bool {
        match color {
            ThreeColor::Black => Self::heard_black(heard),
            ThreeColor::White => !Self::heard_black(heard),
            ThreeColor::Gray => false,
        }
    }

    fn stable_black(&self, heard: &[Vec<bool>], u: VertexId) -> bool {
        self.colors[u].is_black() && !Self::heard_black(&heard[u])
    }
}

impl Process for StoneAgeThreeColorMis<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let heard = self.heard();
        // Color update (uses the switch output of the previous round, i.e.
        // the current levels), drawing coins in vertex order exactly like the
        // direct 3-color process.
        for u in self.graph.vertices() {
            self.colors[u] = match self.colors[u] {
                ThreeColor::Black if Self::heard_black(&heard[u]) => {
                    self.random_bits += 1;
                    if rng.gen_bool(0.5) {
                        ThreeColor::Black
                    } else {
                        ThreeColor::Gray
                    }
                }
                ThreeColor::White if !Self::heard_black(&heard[u]) => {
                    self.random_bits += 1;
                    if rng.gen_bool(0.5) {
                        ThreeColor::Black
                    } else {
                        ThreeColor::White
                    }
                }
                ThreeColor::Gray if self.levels[u] <= 2 => ThreeColor::White,
                other => other,
            };
        }
        // Switch (level) update, using the maximum level heard over the
        // neighbors plus the node's own level.
        let mut next_levels = self.levels.clone();
        for u in self.graph.vertices() {
            let lvl = self.levels[u];
            let reset = if lvl == 5 {
                self.random_bits += 7;
                !rng.gen_bool(self.zeta)
            } else {
                false
            };
            next_levels[u] = if reset || lvl == 0 {
                5
            } else {
                let max_nbr = Self::heard_max_level(&heard[u]).unwrap_or(0).max(lvl);
                max_nbr - 1
            };
        }
        self.levels = next_levels;
        self.round += 1;
    }

    fn is_stabilized(&self) -> bool {
        let heard = self.heard();
        self.graph.vertices().all(|u| {
            self.stable_black(&heard, u)
                || self
                    .graph
                    .neighbors(u)
                    .iter()
                    .any(|v| self.stable_black(&heard, v))
        })
    }

    fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.colors[u].is_black()),
        )
    }

    fn active_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| Self::node_is_active(self.colors[u], &heard[u])),
        )
    }

    fn stable_black_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| self.stable_black(&heard, u)),
        )
    }

    fn unstable_set(&self) -> VertexSet {
        let stable_black = self.stable_black_set();
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| {
                !stable_black.contains(u)
                    && !self
                        .graph
                        .neighbors(u)
                        .iter()
                        .any(|v| stable_black.contains(v))
            }),
        )
    }

    fn counts(&self) -> StateCounts {
        let heard = self.heard();
        let stable_black = self.stable_black_set();
        let mut c = StateCounts::default();
        for u in self.graph.vertices() {
            if self.colors[u].is_black() {
                c.black += 1;
            } else {
                c.non_black += 1;
            }
            if Self::node_is_active(self.colors[u], &heard[u]) {
                c.active += 1;
            }
            if stable_black.contains(u) {
                c.stable_black += 1;
            }
            if !stable_black.contains(u)
                && !self
                    .graph
                    .neighbors(u)
                    .iter()
                    .any(|v| stable_black.contains(v))
            {
                c.unstable += 1;
            }
        }
        c
    }

    fn states_per_vertex(&self) -> usize {
        18
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_core::{RandomizedLogSwitch, ThreeColorProcess, ThreeStateProcess};
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn stone_age_round_reports_per_letter_bits() {
        let g = generators::star(4);
        // Leaves send letters 0, 1, 1; hub is silent.
        let heard = stone_age_round(&g, &[None, Some(0), Some(1), Some(1)], 3);
        assert_eq!(heard[0], vec![true, true, false]);
        assert_eq!(heard[1], vec![false, false, false]);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn stone_age_round_rejects_bad_letter() {
        let g = generators::path(2);
        stone_age_round(&g, &[Some(5), None], 2);
    }

    #[test]
    fn three_state_transmissions() {
        let g = generators::path(3);
        let net = StoneAgeThreeStateMis::new(
            &g,
            vec![ThreeState::Black1, ThreeState::Black0, ThreeState::White],
        );
        assert_eq!(net.transmission(0), Some(0));
        assert_eq!(net.transmission(1), Some(1));
        assert_eq!(net.transmission(2), None);
    }

    #[test]
    fn three_state_trace_equivalent_to_direct_process() {
        let mut setup_rng = rng(200);
        let g = generators::gnp(60, 0.15, &mut setup_rng);
        let init = InitStrategy::Random.three_state(g.n(), &mut setup_rng);

        let mut direct = ThreeStateProcess::new(&g, init.clone());
        let mut net = StoneAgeThreeStateMis::new(&g, init);
        let mut rng_a = rng(31);
        let mut rng_b = rng(31);
        for round in 0..300 {
            assert_eq!(
                direct.states(),
                net.states(),
                "traces diverged at round {round}"
            );
            assert_eq!(direct.is_stabilized(), net.is_stabilized());
            if direct.is_stabilized() {
                break;
            }
            direct.step(&mut rng_a);
            net.step(&mut rng_b);
        }
        assert_eq!(direct.random_bits_used(), net.random_bits_used());
    }

    #[test]
    fn three_color_trace_equivalent_to_direct_process() {
        let mut setup_rng = rng(300);
        let g = generators::gnp(50, 0.3, &mut setup_rng);
        let colors = InitStrategy::Random.three_color(g.n(), &mut setup_rng);
        let levels = InitStrategy::Random.switch_levels(g.n(), &mut setup_rng);

        let switch = RandomizedLogSwitch::new(&g, levels.clone(), DEFAULT_ZETA);
        let mut direct = ThreeColorProcess::new(&g, colors.clone(), switch);
        let mut net = StoneAgeThreeColorMis::new(&g, colors, levels);
        let mut rng_a = rng(77);
        let mut rng_b = rng(77);
        for round in 0..400 {
            assert_eq!(
                direct.colors(),
                net.colors(),
                "color traces diverged at round {round}"
            );
            for u in g.vertices() {
                assert_eq!(
                    direct.switch().level(u),
                    net.level(u),
                    "level of {u} diverged at round {round}"
                );
            }
            if direct.is_stabilized() && net.is_stabilized() {
                break;
            }
            direct.step(&mut rng_a);
            net.step(&mut rng_b);
        }
        assert_eq!(direct.random_bits_used(), net.random_bits_used());
    }

    #[test]
    fn three_state_stabilizes_to_mis() {
        let mut r = rng(8);
        for g in [generators::complete(16), generators::gnp(60, 0.1, &mut r)] {
            let mut net = StoneAgeThreeStateMis::with_init(&g, InitStrategy::Random, &mut r);
            net.run_to_stabilization(&mut r, 100_000).unwrap();
            assert!(mis_check::is_mis(&g, &net.black_set()));
        }
    }

    #[test]
    fn three_color_stabilizes_to_mis() {
        let mut r = rng(9);
        for g in [generators::complete(16), generators::gnp(60, 0.4, &mut r)] {
            let mut net = StoneAgeThreeColorMis::with_init(&g, InitStrategy::Random, &mut r);
            net.run_to_stabilization(&mut r, 200_000).unwrap();
            assert!(mis_check::is_mis(&g, &net.black_set()));
            assert_eq!(net.states_per_vertex(), 18);
        }
    }

    #[test]
    fn counts_consistency_three_color() {
        let mut r = rng(10);
        let g = generators::gnp(40, 0.2, &mut r);
        let mut net = StoneAgeThreeColorMis::with_init(&g, InitStrategy::AllBlack, &mut r);
        for _ in 0..30 {
            let c = net.counts();
            assert_eq!(c.black, net.black_set().len());
            assert_eq!(c.active, net.active_set().len());
            assert_eq!(c.unstable, net.unstable_set().len());
            if net.is_stabilized() {
                break;
            }
            net.step(&mut r);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Stone-age adaptations reach a valid MIS on random graphs.
        #[test]
        fn stone_age_reaches_mis(seed in 0u64..5000, n in 1usize..35, p_edge in 0.0f64..0.8) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let mut three_state = StoneAgeThreeStateMis::with_init(&g, InitStrategy::Random, &mut r);
            three_state.run_to_stabilization(&mut r, 200_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &three_state.black_set()));

            let mut three_color = StoneAgeThreeColorMis::with_init(&g, InitStrategy::Random, &mut r);
            three_color.run_to_stabilization(&mut r, 400_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &three_color.black_set()));
        }
    }
}
