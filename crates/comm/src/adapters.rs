//! [`Algorithm`] adapters and factories for the weak-communication models,
//! so the beeping and stone-age networks can be driven by the same
//! registry/scheduler/observer harness as the direct processes.

use mis_core::algorithm::{
    fault_victims, uniform3, Algorithm, AlgorithmConfig, AlgorithmFactory, CommunicationModel,
    Registry, StepCtx,
};
use mis_core::{Activation, Color, Process, ThreeColor, ThreeState};
use mis_graph::{Graph, VertexId};
use rand::{Rng, RngCore};

use crate::beeping::BeepingTwoStateMis;
use crate::stone_age::{StoneAgeThreeColorMis, StoneAgeThreeStateMis};

/// Registry key of the beeping 2-state adaptation.
pub const BEEPING_TWO_STATE_KEY: &str = "beeping-two-state";
/// Registry key of the stone-age 3-state adaptation.
pub const STONE_AGE_THREE_STATE_KEY: &str = "stone-age-three-state";
/// Registry key of the stone-age 3-color adaptation.
pub const STONE_AGE_THREE_COLOR_KEY: &str = "stone-age-three-color";

/// The beeping 2-state network as a pluggable [`Algorithm`].
#[derive(Debug, Clone)]
pub struct BeepingTwoStateAlgorithm<'g> {
    inner: BeepingTwoStateMis<'g>,
}

impl<'g> BeepingTwoStateAlgorithm<'g> {
    /// Wraps an existing network instance.
    pub fn new(inner: BeepingTwoStateMis<'g>) -> Self {
        BeepingTwoStateAlgorithm { inner }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &BeepingTwoStateMis<'g> {
        &self.inner
    }
}

impl Algorithm for BeepingTwoStateAlgorithm<'_> {
    fn name(&self) -> &'static str {
        BEEPING_TWO_STATE_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::Beeping
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn step(&mut self, ctx: StepCtx<'_>) {
        match ctx.activation {
            Activation::All => self.inner.step(ctx.rng),
            Activation::Subset(set) => self.inner.step_scheduled(set, ctx.rng),
        }
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for &u in victims {
            let color = if rng.gen_bool(0.5) {
                Color::Black
            } else {
                Color::White
            };
            if self.inner.color(u) != color {
                changed += 1;
            }
            self.inner.set_color(u, color);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        let color = if black { Color::Black } else { Color::White };
        let changed = self.inner.color(u) != color;
        self.inner.set_color(u, color);
        changed
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_partial_activation(&self) -> bool {
        true
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

/// The stone-age 3-state network as a pluggable [`Algorithm`].
#[derive(Debug, Clone)]
pub struct StoneAgeThreeStateAlgorithm<'g> {
    inner: StoneAgeThreeStateMis<'g>,
}

impl<'g> StoneAgeThreeStateAlgorithm<'g> {
    /// Wraps an existing network instance.
    pub fn new(inner: StoneAgeThreeStateMis<'g>) -> Self {
        StoneAgeThreeStateAlgorithm { inner }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &StoneAgeThreeStateMis<'g> {
        &self.inner
    }
}

impl Algorithm for StoneAgeThreeStateAlgorithm<'_> {
    fn name(&self) -> &'static str {
        STONE_AGE_THREE_STATE_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::StoneAge
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn step(&mut self, ctx: StepCtx<'_>) {
        match ctx.activation {
            Activation::All => self.inner.step(ctx.rng),
            Activation::Subset(set) => self.inner.step_scheduled(set, ctx.rng),
        }
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for &u in victims {
            let state = match uniform3(rng) {
                0 => ThreeState::Black1,
                1 => ThreeState::Black0,
                _ => ThreeState::White,
            };
            if self.inner.state(u) != state {
                changed += 1;
            }
            self.inner.set_state(u, state);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        // Black1 is the asserting black letter, mirroring the direct
        // 3-state adapter.
        let state = if black {
            ThreeState::Black1
        } else {
            ThreeState::White
        };
        let changed = self.inner.state(u) != state;
        self.inner.set_state(u, state);
        changed
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_partial_activation(&self) -> bool {
        true
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

/// The stone-age 3-color network as a pluggable [`Algorithm`].
///
/// Like the direct 3-color process, the embedded logarithmic switch is a
/// phase clock that advances every node every round, so partial activation
/// is not supported.
#[derive(Debug, Clone)]
pub struct StoneAgeThreeColorAlgorithm<'g> {
    inner: StoneAgeThreeColorMis<'g>,
}

impl<'g> StoneAgeThreeColorAlgorithm<'g> {
    /// Wraps an existing network instance.
    pub fn new(inner: StoneAgeThreeColorMis<'g>) -> Self {
        StoneAgeThreeColorAlgorithm { inner }
    }

    /// The wrapped network.
    pub fn inner(&self) -> &StoneAgeThreeColorMis<'g> {
        &self.inner
    }
}

impl Algorithm for StoneAgeThreeColorAlgorithm<'_> {
    fn name(&self) -> &'static str {
        STONE_AGE_THREE_COLOR_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::StoneAge
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for &u in victims {
            let color = match uniform3(rng) {
                0 => ThreeColor::Black,
                1 => ThreeColor::Gray,
                _ => ThreeColor::White,
            };
            let level = (rng.next_u32() % 6) as u8;
            if self.inner.color(u) != color || self.inner.level(u) != level {
                changed += 1;
            }
            self.inner.set_node_state(u, color, level);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        // Only the displayed color is overridden; the node's switch level
        // keeps ticking, as in the direct 3-color adapter.
        let color = if black {
            ThreeColor::Black
        } else {
            ThreeColor::White
        };
        let changed = self.inner.color(u) != color;
        self.inner.set_node_state(u, color, self.inner.level(u));
        changed
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

struct BeepingTwoStateFactory;

impl AlgorithmFactory for BeepingTwoStateFactory {
    fn key(&self) -> &'static str {
        BEEPING_TWO_STATE_KEY
    }

    fn description(&self) -> &'static str {
        "2-state process as a beeping algorithm (full-duplex, sender collision detection)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::Beeping
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        Box::new(BeepingTwoStateAlgorithm::new(
            BeepingTwoStateMis::with_init(graph, config.init, rng),
        ))
    }
}

struct StoneAgeThreeStateFactory;

impl AlgorithmFactory for StoneAgeThreeStateFactory {
    fn key(&self) -> &'static str {
        STONE_AGE_THREE_STATE_KEY
    }

    fn description(&self) -> &'static str {
        "3-state process as a stone-age algorithm (2-letter alphabet, no collision detection)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::StoneAge
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        Box::new(StoneAgeThreeStateAlgorithm::new(
            StoneAgeThreeStateMis::with_init(graph, config.init, rng),
        ))
    }
}

struct StoneAgeThreeColorFactory;

impl AlgorithmFactory for StoneAgeThreeColorFactory {
    fn key(&self) -> &'static str {
        STONE_AGE_THREE_COLOR_KEY
    }

    fn description(&self) -> &'static str {
        "3-color process + randomized switch as a stone-age algorithm (18-letter alphabet)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::StoneAge
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        Box::new(StoneAgeThreeColorAlgorithm::new(
            StoneAgeThreeColorMis::with_init(graph, config.init, rng),
        ))
    }
}

/// Registers the weak-communication adaptations (`beeping-two-state`,
/// `stone-age-three-state`, `stone-age-three-color`) in `registry`.
pub fn register_comm_algorithms(registry: &mut Registry) {
    registry.register(Box::new(BeepingTwoStateFactory));
    registry.register(Box::new(StoneAgeThreeStateFactory));
    registry.register(Box::new(StoneAgeThreeColorFactory));
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_core::init::InitStrategy;
    use mis_core::ExecutionMode;
    use mis_graph::{generators, mis_check, VertexSet};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig {
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            strategy: mis_core::RoundStrategy::Auto,
            counter_seed: 3,
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        register_comm_algorithms(&mut r);
        r
    }

    #[test]
    fn all_comm_factories_build_and_stabilize() {
        let r = registry();
        assert_eq!(
            r.keys(),
            vec![
                "beeping-two-state",
                "stone-age-three-color",
                "stone-age-three-state"
            ]
        );
        let mut stream = rng(2);
        let g = generators::gnp(40, 0.15, &mut stream);
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut alg = factory.init(&g, &config(), &mut stream);
            assert_eq!(alg.name(), key);
            assert!(!alg.supports_parallel());
            let mut guard = 0;
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 200_000, "{key} did not stabilize");
            }
            assert!(mis_check::is_mis(&g, &alg.black_set()), "{key}");
        }
    }

    #[test]
    fn full_scheduled_round_matches_synchronous_round() {
        let mut setup = rng(9);
        let g = generators::gnp(30, 0.2, &mut setup);
        let init = InitStrategy::Random.two_state(g.n(), &mut setup);
        let mut sync_net = BeepingTwoStateMis::new(&g, init.clone());
        let mut sched_net = BeepingTwoStateMis::new(&g, init);
        let everyone = VertexSet::from_indices(g.n(), 0..g.n());
        let mut ra = rng(11);
        let mut rb = rng(11);
        for round in 0..80 {
            if sync_net.is_stabilized() {
                break;
            }
            sync_net.step(&mut ra);
            sched_net.step_scheduled(&everyone, &mut rb);
            assert_eq!(sync_net.states(), sched_net.states(), "round {round}");
        }
        assert_eq!(sync_net.random_bits_used(), sched_net.random_bits_used());
    }

    #[test]
    fn stone_age_full_scheduled_round_matches_synchronous_round() {
        let mut setup = rng(13);
        let g = generators::gnp(30, 0.2, &mut setup);
        let init = InitStrategy::Random.three_state(g.n(), &mut setup);
        let mut sync_net = StoneAgeThreeStateMis::new(&g, init.clone());
        let mut sched_net = StoneAgeThreeStateMis::new(&g, init);
        let everyone = VertexSet::from_indices(g.n(), 0..g.n());
        let mut ra = rng(17);
        let mut rb = rng(17);
        for round in 0..80 {
            if sync_net.is_stabilized() {
                break;
            }
            sync_net.step(&mut ra);
            sched_net.step_scheduled(&everyone, &mut rb);
            assert_eq!(sync_net.states(), sched_net.states(), "round {round}");
        }
        assert_eq!(sync_net.random_bits_used(), sched_net.random_bits_used());
    }

    #[test]
    fn comm_models_recover_from_faults() {
        let mut stream = rng(21);
        let g = generators::gnp(40, 0.12, &mut stream);
        let r = registry();
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut alg = factory.init(&g, &config(), &mut stream);
            assert!(alg.supports_fault_injection());
            let mut guard = 0;
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 200_000);
            }
            let changed = alg.inject_faults(0.5, &mut stream);
            assert!(changed > 0, "{key}");
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 400_000, "{key} did not recover");
            }
            assert!(mis_check::is_mis(&g, &alg.black_set()), "{key}");
        }
    }
}
