//! The beeping communication model (full-duplex / sender collision
//! detection) and the beeping adaptation of the 2-state MIS process.

use mis_core::init::InitStrategy;
use mis_core::{Color, Process, StateCounts};
use mis_graph::{Graph, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// What a node does in one beeping round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeepAction {
    /// Transmit a beep (carrier signal) to all neighbors.
    Beep,
    /// Stay silent and listen.
    Listen,
}

/// Simulates one synchronous round of the beeping channel: every node in
/// `beeping` beeps, and the result tells each node whether **at least one of
/// its neighbors** beeped. With sender collision detection (the full-duplex
/// model assumed by the paper) beeping nodes receive this feedback too.
///
/// The channel deliberately returns a single bit per node — nothing about
/// *which* or *how many* neighbors beeped.
///
/// # Panics
///
/// Panics if `beeping.universe() != g.n()`.
///
/// # Example
///
/// ```
/// use mis_comm::beeping::beep_round;
/// use mis_graph::{Graph, VertexSet};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
/// let heard = beep_round(&g, &VertexSet::from_indices(3, [0]));
/// assert_eq!(heard, vec![false, true, false]);
/// ```
pub fn beep_round(g: &Graph, beeping: &VertexSet) -> Vec<bool> {
    assert_eq!(
        beeping.universe(),
        g.n(),
        "beeping set universe must match the graph"
    );
    let mut heard = vec![false; g.n()];
    for u in beeping.iter() {
        for v in g.neighbors(u) {
            heard[v] = true;
        }
    }
    heard
}

/// The 2-state MIS process implemented as a **beeping algorithm**: black
/// nodes beep, white nodes listen, and each node updates its state using
/// only its own color and the single "heard a beep" bit (Section 1 of the
/// paper).
///
/// * a black node that hears a beep (some neighbor is black) re-randomizes;
/// * a white node that hears silence (no neighbor is black) re-randomizes;
/// * all other nodes keep their state.
///
/// The node-local rule never inspects neighbor states, only the channel
/// feedback; nevertheless it is *trace equivalent* to
/// [`mis_core::TwoStateProcess`] (same seed, same initial states, same state
/// sequence), which the test suite checks.
#[derive(Debug, Clone)]
pub struct BeepingTwoStateMis<'g> {
    graph: &'g Graph,
    states: Vec<Color>,
    round: usize,
    random_bits: u64,
}

impl<'g> BeepingTwoStateMis<'g> {
    /// Creates the beeping network with the given initial colors.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<Color>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        BeepingTwoStateMis {
            graph,
            states,
            round: 0,
            random_bits: 0,
        }
    }

    /// Creates the beeping network with states drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        Self::new(graph, init.two_state(graph.n(), rng))
    }

    /// Current color of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn color(&self, u: VertexId) -> Color {
        self.states[u]
    }

    /// The full state vector (indexed by vertex id).
    pub fn states(&self) -> &[Color] {
        &self.states
    }

    /// The communication graph the network runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The action node `u` takes in the next round: black nodes beep, white
    /// nodes listen.
    pub fn action(&self, u: VertexId) -> BeepAction {
        if self.states[u].is_black() {
            BeepAction::Beep
        } else {
            BeepAction::Listen
        }
    }

    /// Overwrites the color of node `u` in place, modelling a transient
    /// fault that corrupts the node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_color(&mut self, u: VertexId, color: Color) {
        self.states[u] = color;
    }

    /// Executes one beeping round in which only the nodes of `scheduled`
    /// are activated: the channel round happens as usual (every black node
    /// beeps), but only scheduled nodes apply the update rule; all others
    /// keep their color. A full `scheduled` set is exactly a synchronous
    /// [`step`](Process::step).
    ///
    /// # Panics
    ///
    /// Panics if `scheduled.universe() != n`.
    pub fn step_scheduled(&mut self, scheduled: &VertexSet, rng: &mut dyn RngCore) {
        assert_eq!(
            scheduled.universe(),
            self.graph.n(),
            "scheduled set universe must match the graph"
        );
        let heard = self.heard();
        for u in scheduled.iter() {
            if Self::node_is_active(self.states[u], heard[u]) {
                self.random_bits += 1;
                self.states[u] = if rng.gen_bool(0.5) {
                    Color::Black
                } else {
                    Color::White
                };
            }
        }
        self.round += 1;
    }

    fn heard(&self) -> Vec<bool> {
        let beeping = VertexSet::from_indices(
            self.graph.n(),
            self.graph.vertices().filter(|&u| self.states[u].is_black()),
        );
        beep_round(self.graph, &beeping)
    }

    fn node_is_active(color: Color, heard_beep: bool) -> bool {
        match color {
            Color::Black => heard_beep,
            Color::White => !heard_beep,
        }
    }
}

impl Process for BeepingTwoStateMis<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let heard = self.heard();
        for u in self.graph.vertices() {
            if Self::node_is_active(self.states[u], heard[u]) {
                self.random_bits += 1;
                self.states[u] = if rng.gen_bool(0.5) {
                    Color::Black
                } else {
                    Color::White
                };
            }
        }
        self.round += 1;
    }

    fn is_stabilized(&self) -> bool {
        let heard = self.heard();
        self.graph
            .vertices()
            .all(|u| !Self::node_is_active(self.states[u], heard[u]))
    }

    fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.states[u].is_black()),
        )
    }

    fn active_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| Self::node_is_active(self.states[u], heard[u])),
        )
    }

    fn stable_black_set(&self) -> VertexSet {
        let heard = self.heard();
        VertexSet::from_indices(
            self.n(),
            self.graph
                .vertices()
                .filter(|&u| self.states[u].is_black() && !heard[u]),
        )
    }

    fn unstable_set(&self) -> VertexSet {
        let stable_black = self.stable_black_set();
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| {
                !stable_black.contains(u)
                    && !self
                        .graph
                        .neighbors(u)
                        .iter()
                        .any(|v| stable_black.contains(v))
            }),
        )
    }

    fn counts(&self) -> StateCounts {
        let heard = self.heard();
        let stable_black = self.stable_black_set();
        let mut c = StateCounts::default();
        for u in self.graph.vertices() {
            if self.states[u].is_black() {
                c.black += 1;
            } else {
                c.non_black += 1;
            }
            if Self::node_is_active(self.states[u], heard[u]) {
                c.active += 1;
            }
            if stable_black.contains(u) {
                c.stable_black += 1;
            }
            if !stable_black.contains(u)
                && !self
                    .graph
                    .neighbors(u)
                    .iter()
                    .any(|v| stable_black.contains(v))
            {
                c.unstable += 1;
            }
        }
        c
    }

    fn states_per_vertex(&self) -> usize {
        2
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_core::TwoStateProcess;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn beep_round_reports_neighbor_beeps_only() {
        let g = generators::star(5);
        // Only a leaf beeps: the hub hears it, other leaves do not.
        let heard = beep_round(&g, &VertexSet::from_indices(5, [1]));
        assert_eq!(heard, vec![true, false, false, false, false]);
        // The hub beeps: every leaf hears it, the hub itself does not
        // (sender collision detection reports *neighbor* beeps only).
        let heard = beep_round(&g, &VertexSet::from_indices(5, [0]));
        assert_eq!(heard, vec![false, true, true, true, true]);
        // Nobody beeps.
        assert!(beep_round(&g, &VertexSet::new(5)).iter().all(|h| !h));
    }

    #[test]
    fn actions_follow_colors() {
        let g = generators::path(2);
        let net = BeepingTwoStateMis::new(&g, vec![Color::Black, Color::White]);
        assert_eq!(net.action(0), BeepAction::Beep);
        assert_eq!(net.action(1), BeepAction::Listen);
    }

    #[test]
    fn trace_equivalent_to_direct_two_state_process() {
        // Same graph, same initial states, same seed => identical state
        // sequences, because the beeping adapter consumes randomness in the
        // same per-vertex order as the direct process.
        let mut setup_rng = rng(100);
        let g = generators::gnp(80, 0.1, &mut setup_rng);
        let init = InitStrategy::Random.two_state(g.n(), &mut setup_rng);

        let mut direct = TwoStateProcess::new(&g, init.clone());
        let mut beeping = BeepingTwoStateMis::new(&g, init);
        let mut rng_a = rng(7);
        let mut rng_b = rng(7);
        for round in 0..300 {
            assert_eq!(
                direct.states(),
                beeping.states(),
                "traces diverged at round {round}"
            );
            assert_eq!(direct.is_stabilized(), beeping.is_stabilized());
            if direct.is_stabilized() {
                break;
            }
            direct.step(&mut rng_a);
            beeping.step(&mut rng_b);
        }
        assert_eq!(direct.random_bits_used(), beeping.random_bits_used());
    }

    #[test]
    fn stabilizes_to_mis() {
        let mut r = rng(5);
        for g in [
            generators::complete(20),
            generators::random_tree(60, &mut r),
            generators::gnp(80, 0.15, &mut r),
        ] {
            let mut net = BeepingTwoStateMis::with_init(&g, InitStrategy::Random, &mut r);
            net.run_to_stabilization(&mut r, 100_000).unwrap();
            assert!(mis_check::is_mis(&g, &net.black_set()));
        }
    }

    #[test]
    fn counts_and_sets_are_consistent() {
        let mut r = rng(6);
        let g = generators::gnp(50, 0.2, &mut r);
        let mut net = BeepingTwoStateMis::with_init(&g, InitStrategy::AllBlack, &mut r);
        for _ in 0..40 {
            let c = net.counts();
            assert_eq!(c.black, net.black_set().len());
            assert_eq!(c.active, net.active_set().len());
            assert_eq!(c.stable_black, net.stable_black_set().len());
            assert_eq!(c.unstable, net.unstable_set().len());
            if net.is_stabilized() {
                break;
            }
            net.step(&mut r);
        }
    }

    #[test]
    #[should_panic(expected = "universe must match")]
    fn beep_round_rejects_mismatched_universe() {
        let g = generators::path(3);
        beep_round(&g, &VertexSet::new(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The beeping adaptation stabilizes to an MIS on random graphs.
        #[test]
        fn beeping_reaches_mis(seed in 0u64..5000, n in 1usize..40, p_edge in 0.0f64..0.6) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let mut net = BeepingTwoStateMis::with_init(&g, InitStrategy::Random, &mut r);
            net.run_to_stabilization(&mut r, 200_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &net.black_set()));
        }
    }
}
