use crate::{Graph, VertexId, VertexSet};

/// An induced subgraph `G[S]`, materialized as a new [`Graph`] together with
/// the mapping between original and induced vertex ids.
///
/// The analysis of the paper repeatedly reasons about induced subgraphs (the
/// subgraph on the non-stable vertices `V_t`, the subgraph on the active
/// vertices `A_t`, …); this type lets experiments materialize those subgraphs
/// and measure their structural properties (average degree, max degree, …).
///
/// # Example
///
/// ```
/// use mis_graph::{Graph, InducedSubgraph, VertexSet};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
/// let s = VertexSet::from_indices(5, [0, 1, 2]);
/// let sub = InducedSubgraph::new(&g, &s);
/// assert_eq!(sub.graph().n(), 3);
/// assert_eq!(sub.graph().m(), 2); // edges (0,1) and (1,2)
/// assert_eq!(sub.original_id(0), 0);
/// assert_eq!(sub.induced_id(2), Some(2));
/// assert_eq!(sub.induced_id(4), None);
/// ```
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `original[i]` is the original id of induced vertex `i`.
    original: Vec<VertexId>,
    /// `induced[v]` is `Some(i)` iff original vertex `v` is induced vertex `i`.
    induced: Vec<Option<VertexId>>,
}

impl InducedSubgraph {
    /// Materializes the subgraph of `g` induced by the vertex set `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s.universe() != g.n()`.
    pub fn new(g: &Graph, s: &VertexSet) -> Self {
        assert_eq!(
            s.universe(),
            g.n(),
            "vertex set universe must match the graph"
        );
        let original: Vec<VertexId> = s.iter().collect();
        let mut induced = vec![None; g.n()];
        for (i, &v) in original.iter().enumerate() {
            induced[v] = Some(i);
        }
        let mut builder = crate::GraphBuilder::new(original.len());
        for (i, &v) in original.iter().enumerate() {
            for w in g.neighbors(v) {
                if let Some(j) = induced[w] {
                    if i < j {
                        builder.add_edge(i, j);
                    }
                }
            }
        }
        InducedSubgraph {
            graph: builder.build(),
            original,
            induced,
        }
    }

    /// The materialized subgraph, with vertices renumbered `0..|S|`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Maps an induced vertex id back to its id in the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a vertex of the subgraph.
    pub fn original_id(&self, i: VertexId) -> VertexId {
        self.original[i]
    }

    /// Maps an original vertex id to its induced id, or `None` if the vertex
    /// is not part of the subgraph.
    pub fn induced_id(&self, v: VertexId) -> Option<VertexId> {
        self.induced.get(v).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_subgraph_of_a_cycle() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let s = VertexSet::from_indices(6, [0, 2, 3, 5]);
        let sub = InducedSubgraph::new(&g, &s);
        // Edges inside {0,2,3,5}: (2,3) and (5,0).
        assert_eq!(sub.graph().n(), 4);
        assert_eq!(sub.graph().m(), 2);
        // Round-trip id mapping.
        for i in sub.graph().vertices() {
            assert_eq!(sub.induced_id(sub.original_id(i)), Some(i));
        }
        assert_eq!(sub.induced_id(1), None);
    }

    #[test]
    fn empty_induced_subgraph() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let sub = InducedSubgraph::new(&g, &VertexSet::new(3));
        assert_eq!(sub.graph().n(), 0);
        assert_eq!(sub.graph().m(), 0);
    }

    #[test]
    fn full_induced_subgraph_equals_original() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let sub = InducedSubgraph::new(&g, &VertexSet::full(4));
        assert_eq!(sub.graph(), &g);
    }

    #[test]
    fn edge_preservation() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]).unwrap();
        let s = VertexSet::from_indices(5, [1, 2, 3]);
        let sub = InducedSubgraph::new(&g, &s);
        // In the induced graph: vertices {1,2,3} -> {0,1,2}; edges (1,2),(2,3),(1,3) -> 3 edges.
        assert_eq!(sub.graph().m(), 3);
        for (a, b) in sub.graph().edges() {
            assert!(g.has_edge(sub.original_id(a), sub.original_id(b)));
        }
    }
}
