use serde::{Deserialize, Serialize};

use crate::{GraphBuilder, GraphError, VertexId};

/// An immutable, simple, undirected graph stored in compressed sparse row
/// (CSR) form.
///
/// Vertices are the integers `0..n`. Each undirected edge `{u, v}` is stored
/// twice (once in each endpoint's adjacency list); adjacency lists are sorted,
/// which allows `O(log deg)` edge queries via binary search.
///
/// `Graph` is cheap to share between threads (`&Graph` is `Send + Sync`) and
/// all process simulators in the workspace borrow it immutably.
///
/// # Example
///
/// ```
/// use mis_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(2, 3));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` is the slice of `adjacency` holding `N(u)`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    adjacency: Vec<VertexId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    pub(crate) fn from_sorted_adjacency(
        offsets: Vec<usize>,
        adjacency: Vec<VertexId>,
        m: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), adjacency.len());
        Graph {
            offsets,
            adjacency,
            m,
        }
    }

    /// Builds a graph on `n` vertices from an iterator of undirected edges.
    ///
    /// Duplicate edges are collapsed. The edge order does not matter.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge of the form `(u, u)` is supplied.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.try_add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds the empty graph (no edges) on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adjacency: Vec::new(),
            m: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The sorted neighbor list `N(u)`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adjacency[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Returns `true` if `{u, v}` is an edge. `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()` or `v >= self.n()`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        assert!(v < self.n(), "vertex {v} out of range");
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.n()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree Δ of the graph; `0` for the empty / edgeless graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph; `0` for the edgeless graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`; `0.0` for the graph on zero vertices.
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.n() as f64
        }
    }

    /// Degree sequence indexed by vertex id.
    pub fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|u| self.degree(u)).collect()
    }

    /// Number of common neighbors `|N(u) ∩ N(v)|`, computed by merging the
    /// two sorted adjacency lists in `O(deg(u) + deg(v))`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn from_edges_basic() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 });
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path4();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = path4();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn common_neighbors_counts() {
        // Triangle 0-1-2 plus vertex 3 adjacent to 0 and 1.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1)]).unwrap();
        assert_eq!(g.common_neighbors(0, 1), 2); // 2 and 3
        assert_eq!(g.common_neighbors(2, 3), 2); // 0 and 1
        assert_eq!(g.common_neighbors(0, 3), 1); // 1
    }

    #[test]
    fn serde_round_trip() {
        let g = path4();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
