use serde::{Deserialize, Serialize};

use crate::{GraphBuilder, GraphError, VertexId};

/// Compact 32-bit vertex id — the on-disk/in-memory id type of the CSR
/// adjacency storage.
///
/// The public graph API works in [`VertexId`] (= `usize`): every accessor
/// takes and yields `usize` ids, and the conversion to and from the compact
/// representation happens **only at the CSR boundary** (inside
/// [`Graph`] and [`GraphBuilder`]). Storing adjacency as `u32` instead of
/// `usize` halves the memory traffic of every neighbor scan — the dominant
/// cost of the simulators' round loops — at the price of capping the vertex
/// count at `u32::MAX` (graph *edges* beyond the 4-billion mark are still
/// supported through the wide offset representation, see [`Graph`]).
///
/// Hot loops that want the raw compact slice (e.g. the dense sweep of the
/// round engine) can get it via [`Neighbors::as_compact`] and widen with
/// [`CompactId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct CompactId(u32);

impl CompactId {
    /// Converts a [`VertexId`] into its compact form.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit in 32 bits.
    #[inline]
    pub fn new(v: VertexId) -> Self {
        assert!(
            u32::try_from(v).is_ok(),
            "vertex id {v} exceeds the u32 CSR limit"
        );
        CompactId(v as u32)
    }

    /// The vertex id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> VertexId {
        self.0 as usize
    }

    /// The raw 32-bit value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Adjacency offsets of the CSR layout.
///
/// Offsets index into the adjacency array (length `2m`), so `u32` suffices
/// up to 2³² stored arcs (≈ 2.1 billion undirected edges); beyond that the
/// builder transparently switches to the wide `u64` representation. Keeping
/// the common case at 32 bits halves the offset array's footprint, which
/// matters for the cache behavior of vertex-order sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Offsets {
    /// 32-bit offsets: adjacency length fits in `u32`.
    Small(Vec<u32>),
    /// 64-bit offsets: graphs past the 4-billion-arc mark.
    Large(Vec<u64>),
}

impl Offsets {
    fn from_usize(offsets: Vec<usize>) -> Self {
        let last = *offsets.last().unwrap_or(&0);
        if u32::try_from(last).is_ok() {
            Offsets::Small(offsets.into_iter().map(|o| o as u32).collect())
        } else {
            Offsets::Large(offsets.into_iter().map(|o| o as u64).collect())
        }
    }

    #[inline]
    fn get(&self, i: usize) -> usize {
        match self {
            Offsets::Small(v) => v[i] as usize,
            Offsets::Large(v) => v[i] as usize,
        }
    }

    fn len(&self) -> usize {
        match self {
            Offsets::Small(v) => v.len(),
            Offsets::Large(v) => v.len(),
        }
    }
}

/// Iterator over a vertex's neighbors, yielding [`VertexId`]s (widening each
/// stored [`CompactId`] on the fly — a zero-cost `u32 → usize` extension).
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, CompactId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        self.inner.next().map(|id| id.index())
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

impl DoubleEndedIterator for NeighborIter<'_> {
    #[inline]
    fn next_back(&mut self) -> Option<VertexId> {
        self.inner.next_back().map(|id| id.index())
    }
}

/// Borrowed view of one vertex's sorted neighbor list.
///
/// This is the CSR boundary: the backing storage holds [`CompactId`]s, but
/// the view iterates and compares in [`VertexId`] (= `usize`), so call sites
/// never handle the compact representation unless they opt in via
/// [`as_compact`](Neighbors::as_compact).
#[derive(Debug, Clone, Copy)]
pub struct Neighbors<'a> {
    ids: &'a [CompactId],
}

impl<'a> Neighbors<'a> {
    /// Number of neighbors (the vertex degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the vertex is isolated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterator over the neighbor ids, in ascending order.
    #[inline]
    pub fn iter(&self) -> NeighborIter<'a> {
        NeighborIter {
            inner: self.ids.iter(),
        }
    }

    /// `true` if `v` is in the list. `O(log deg)` — the list is sorted.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        u32::try_from(v)
            .map(|raw| self.ids.binary_search(&CompactId(raw)).is_ok())
            .unwrap_or(false)
    }

    /// The raw compact (u32) id slice, for bandwidth-critical loops.
    #[inline]
    pub fn as_compact(&self) -> &'a [CompactId] {
        self.ids
    }

    /// Materializes the list as a `Vec<VertexId>` (tests and diagnostics).
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for Neighbors<'a> {
    type Item = VertexId;
    type IntoIter = NeighborIter<'a>;

    #[inline]
    fn into_iter(self) -> NeighborIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &Neighbors<'a> {
    type Item = VertexId;
    type IntoIter = NeighborIter<'a>;

    #[inline]
    fn into_iter(self) -> NeighborIter<'a> {
        self.iter()
    }
}

/// An immutable, simple, undirected graph stored in compressed sparse row
/// (CSR) form.
///
/// Vertices are the integers `0..n`. Each undirected edge `{u, v}` is stored
/// twice (once in each endpoint's adjacency list); adjacency lists are sorted,
/// which allows `O(log deg)` edge queries via binary search.
///
/// # Compact storage
///
/// Adjacency ids are stored as [`CompactId`] (`u32`) and offsets as `u32`
/// (switching to `u64` automatically past 2³² stored arcs), halving the
/// memory bandwidth of neighbor scans relative to a `usize` CSR. The public
/// API is unchanged: [`VertexId`] (= `usize`) in, [`VertexId`] out, with the
/// narrowing/widening confined to this module. Consequently the number of
/// *vertices* is capped at `u32::MAX` (enforced by [`GraphBuilder`]).
///
/// `Graph` is cheap to share between threads (`&Graph` is `Send + Sync`) and
/// all process simulators in the workspace borrow it immutably.
///
/// # Example
///
/// ```
/// use mis_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.neighbors(1).to_vec(), vec![0, 2]);
/// assert!(g.has_edge(2, 3));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u+1]` is the slice of `adjacency` holding `N(u)`.
    offsets: Offsets,
    /// Concatenated, per-vertex-sorted adjacency lists (compact ids).
    adjacency: Vec<CompactId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    pub(crate) fn from_sorted_adjacency(
        offsets: Vec<usize>,
        adjacency: Vec<VertexId>,
        m: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), adjacency.len());
        Graph {
            offsets: Offsets::from_usize(offsets),
            adjacency: adjacency.into_iter().map(CompactId::new).collect(),
            m,
        }
    }

    /// Builds the CSR directly from compact parts (no widening round trip);
    /// used by the bulk generators.
    pub(crate) fn from_compact_parts(
        offsets: Vec<u32>,
        adjacency: Vec<CompactId>,
        m: usize,
    ) -> Self {
        debug_assert_eq!(
            *offsets.last().unwrap_or(&0) as usize,
            adjacency.len(),
            "offsets must cover the adjacency array"
        );
        Graph {
            offsets: Offsets::Small(offsets),
            adjacency,
            m,
        }
    }

    /// Builds a graph on `n` vertices from an iterator of undirected edges.
    ///
    /// Duplicate edges are collapsed. The edge order does not matter.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge of the form `(u, u)` is supplied.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            builder.try_add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Builds the empty graph (no edges) on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: Offsets::Small(vec![0; n + 1]),
            adjacency: Vec::new(),
            m: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Degree of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets.get(u + 1) - self.offsets.get(u)
    }

    /// The sorted neighbor list `N(u)`, as a [`Neighbors`] view yielding
    /// [`VertexId`]s.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> Neighbors<'_> {
        Neighbors {
            ids: &self.adjacency[self.offsets.get(u)..self.offsets.get(u + 1)],
        }
    }

    /// Returns `true` if `{u, v}` is an edge. `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.n()` or `v >= self.n()`.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        assert!(v < self.n(), "vertex {v} out of range");
        self.neighbors(u).contains(v)
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.n()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree Δ of the graph; `0` for the empty / edgeless graph.
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Minimum degree of the graph; `0` for the edgeless graph.
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).min().unwrap_or(0)
    }

    /// Average degree `2m / n`; `0.0` for the graph on zero vertices.
    pub fn average_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.n() as f64
        }
    }

    /// Degree sequence indexed by vertex id.
    pub fn degrees(&self) -> Vec<usize> {
        self.vertices().map(|u| self.degree(u)).collect()
    }

    /// Splits `0..n` into up to `parts` contiguous vertex ranges of
    /// near-equal **volume** (each vertex weighted `1 + deg(u)`), so a
    /// full-sweep phase chunked this way balances actual work instead of
    /// vertex counts — on degree-skewed graphs, count-balanced chunks
    /// serialize the sweep on whichever chunk drew the hubs.
    ///
    /// The split points are found by binary search on the CSR offsets
    /// (`weight(0..u) = offsets[u] + u`), so the whole computation is
    /// `O(parts · log n)`. Empty trailing ranges are dropped; the returned
    /// ranges are non-empty, in order, and cover `0..n` exactly (an empty
    /// vec for the empty graph).
    pub fn balanced_ranges(&self, parts: usize) -> Vec<(usize, usize)> {
        let n = self.n();
        let parts = parts.max(1);
        if n == 0 {
            return Vec::new();
        }
        let weight = |u: usize| self.offsets.get(u) + u;
        let total = weight(n);
        let mut ranges = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 1..=parts {
            if start >= n {
                break;
            }
            let target = total * p / parts;
            // Smallest end > start with weight(0..end) >= target.
            let (mut lo, mut hi) = (start + 1, n);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if weight(mid) < target {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            let end = if p == parts { n } else { lo };
            ranges.push((start, end));
            start = end;
        }
        ranges
    }

    /// Number of common neighbors `|N(u) ∩ N(v)|`, computed by merging the
    /// two sorted adjacency lists in `O(deg(u) + deg(v))`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        let (a, b) = (
            self.neighbors(u).as_compact(),
            self.neighbors(v).as_compact(),
        );
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

// The serde impls are hand-written so the JSON shape stays what the old
// `usize`-CSR derive produced (`offsets`/`adjacency` as plain number arrays):
// the compact representation is an in-memory layout choice, not a format
// change.
impl Serialize for Graph {
    fn to_value(&self) -> serde::Value {
        let offsets: Vec<serde::Value> = match &self.offsets {
            Offsets::Small(v) => v.iter().map(|&o| serde::Value::U64(o.into())).collect(),
            Offsets::Large(v) => v.iter().map(|&o| serde::Value::U64(o)).collect(),
        };
        let adjacency: Vec<serde::Value> = self
            .adjacency
            .iter()
            .map(|id| serde::Value::U64(id.raw().into()))
            .collect();
        serde::Value::Object(vec![
            ("offsets".into(), serde::Value::Array(offsets)),
            ("adjacency".into(), serde::Value::Array(adjacency)),
            ("m".into(), self.m.to_value()),
        ])
    }
}

impl Deserialize for Graph {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let offsets: Vec<usize> = Deserialize::from_value(serde::get_field(value, "offsets")?)?;
        let adjacency: Vec<u32> = Deserialize::from_value(serde::get_field(value, "adjacency")?)?;
        let m: usize = Deserialize::from_value(serde::get_field(value, "m")?)?;
        if *offsets.last().unwrap_or(&0) != adjacency.len() {
            return Err(serde::Error::custom(
                "graph offsets do not cover the adjacency array",
            ));
        }
        Ok(Graph {
            offsets: Offsets::from_usize(offsets),
            adjacency: adjacency.into_iter().map(CompactId).collect(),
            m,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn from_edges_basic() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(0).to_vec(), vec![1]);
        assert_eq!(g.neighbors(1).to_vec(), vec![0, 2]);
        assert_eq!(g.neighbors(2).to_vec(), vec![1, 3]);
        assert_eq!(g.neighbors(3).to_vec(), vec![2]);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0).to_vec(), vec![1]);
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(3, [(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = Graph::from_edges(3, [(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 3, n: 3 });
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = path4();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = path4();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_statistics() {
        let g = path4();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn balanced_ranges_cover_and_balance_volume() {
        // A star graph is maximally skewed: vertex 0 has degree n-1.
        let n = 101;
        let star = Graph::from_edges(n, (1..n).map(|v| (0, v))).unwrap();
        for parts in [1, 2, 3, 4, 8, 200] {
            let ranges = star.balanced_ranges(parts);
            assert!(!ranges.is_empty() && ranges.len() <= parts);
            // Coverage: contiguous, in order, exactly 0..n.
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0);
                assert!(w[0].0 < w[0].1);
            }
        }
        // Volume balance: with 2 parts, the hub chunk must stay small in
        // vertex count (the hub alone carries ~half the total volume).
        let two = star.balanced_ranges(2);
        assert!(two[0].1 - two[0].0 < n / 3, "hub chunk too wide: {two:?}");
        // Degenerate cases.
        assert!(Graph::empty(0).balanced_ranges(4).is_empty());
        assert_eq!(Graph::empty(3).balanced_ranges(8).len(), 3);
        assert_eq!(path4().balanced_ranges(1), vec![(0, 4)]);
    }

    #[test]
    fn common_neighbors_counts() {
        // Triangle 0-1-2 plus vertex 3 adjacent to 0 and 1.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1)]).unwrap();
        assert_eq!(g.common_neighbors(0, 1), 2); // 2 and 3
        assert_eq!(g.common_neighbors(2, 3), 2); // 0 and 1
        assert_eq!(g.common_neighbors(0, 3), 1); // 1
    }

    #[test]
    fn neighbors_view_helpers() {
        let g = path4();
        let n1 = g.neighbors(1);
        assert_eq!(n1.len(), 2);
        assert!(!n1.is_empty());
        assert!(n1.contains(0) && n1.contains(2));
        assert!(!n1.contains(3));
        assert!(!n1.contains(usize::MAX)); // beyond the u32 range, never stored
        assert_eq!(n1.iter().rev().collect::<Vec<_>>(), vec![2, 0]);
        assert_eq!(n1.iter().len(), 2);
        assert_eq!(
            n1.as_compact(),
            &[CompactId::new(0), CompactId::new(2)],
            "compact slice exposes the raw u32 ids"
        );
        assert_eq!(CompactId::new(7).raw(), 7);
        assert_eq!(CompactId::new(7).index(), 7);
        // Both `for v in g.neighbors(u)` and `&view` iteration work.
        let mut collected = Vec::new();
        for v in g.neighbors(1) {
            collected.push(v);
        }
        for v in &n1 {
            collected.push(v);
        }
        assert_eq!(collected, vec![0, 2, 0, 2]);
    }

    #[test]
    fn serde_round_trip() {
        let g = path4();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn serde_rejects_inconsistent_offsets() {
        let json = r#"{"offsets":[0,2],"adjacency":[1],"m":1}"#;
        assert!(serde_json::from_str::<Graph>(json).is_err());
    }

    #[test]
    fn wide_offsets_behave_like_small_ones() {
        // Force the Large representation through the internal constructor:
        // behaviorally identical; only the offset width differs.
        let small = path4();
        let wide = Graph {
            offsets: Offsets::Large(vec![0, 1, 3, 5, 6]),
            adjacency: [1usize, 0, 2, 1, 3, 2].map(CompactId::new).to_vec(),
            m: 3,
        };
        assert_eq!(wide.n(), small.n());
        for u in wide.vertices() {
            assert_eq!(wide.neighbors(u).to_vec(), small.neighbors(u).to_vec());
            assert_eq!(wide.degree(u), small.degree(u));
        }
        // Serde canonicalizes back to the small representation here (the
        // adjacency fits in u32 offsets), and equality is by content.
        let back: Graph = serde_json::from_str(&serde_json::to_string(&wide).unwrap()).unwrap();
        assert_eq!(back, small);
    }
}
