use std::error::Error;
use std::fmt;

/// Errors produced while constructing or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was outside the range `0..n` of the graph being built.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was supplied; the processes in this crate are
    /// defined on simple graphs only.
    SelfLoop {
        /// The vertex with the attempted self-loop.
        vertex: usize,
    },
    /// A generator was asked for a parameter combination it cannot satisfy,
    /// e.g. a `d`-regular graph with `n * d` odd.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} is out of range for a graph on {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop on vertex {vertex} is not allowed in a simple graph"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 7, n: 5 };
        assert!(e.to_string().contains("vertex 7"));
        assert!(e.to_string().contains("5 vertices"));

        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));

        let e = GraphError::InvalidParameter {
            reason: "n*d must be even".into(),
        };
        assert!(e.to_string().contains("n*d must be even"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }
}
