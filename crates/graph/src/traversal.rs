//! Breadth-first traversal utilities: single-source distances, eccentricity,
//! and multi-source BFS. These back the diameter computation used by the
//! good-graph property (P6) and by the logarithmic-switch analysis, which
//! distinguishes graphs of diameter at most 2.

use std::collections::VecDeque;

use crate::{Graph, VertexId};

/// Distance value reported for vertices unreachable from the source.
pub const UNREACHABLE: usize = usize::MAX;

/// Single-source BFS distances from `source`.
///
/// Returns a vector `dist` with `dist[v]` the hop distance from `source` to
/// `v`, or [`UNREACHABLE`] if `v` is in a different connected component.
///
/// # Panics
///
/// Panics if `source >= g.n()`.
///
/// # Example
///
/// ```
/// use mis_graph::{Graph, traversal};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(d[2], 2);
/// assert_eq!(d[3], traversal::UNREACHABLE);
/// ```
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<usize> {
    assert!(source < g.n(), "source {source} out of range");
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS distances: `dist[v]` is the hop distance from `v` to the
/// *nearest* vertex of `sources`, or [`UNREACHABLE`] if no source reaches it.
/// With an empty source set every vertex is unreachable.
///
/// This is the distance-to-the-Byzantine-set map behind the containment
/// metrics: level 0 is the adversarial set `B` itself, level `r` its exact
/// r-th neighborhood shell.
///
/// # Panics
///
/// Panics if any source is `>= g.n()`.
///
/// # Example
///
/// ```
/// use mis_graph::{Graph, traversal};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// let d = traversal::multi_source_bfs_distances(&g, [0, 3]);
/// assert_eq!(d, vec![0, 1, 1, 0, traversal::UNREACHABLE]);
/// ```
pub fn multi_source_bfs_distances(
    g: &Graph,
    sources: impl IntoIterator<Item = VertexId>,
) -> Vec<usize> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    for s in sources {
        assert!(s < g.n(), "source {s} out of range");
        if dist[s] == UNREACHABLE {
            dist[s] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `source`: the maximum BFS distance to any vertex reachable
/// from it. Returns `None` if some vertex of the graph is unreachable (the
/// graph is disconnected), since the eccentricity is infinite in that case.
pub fn eccentricity(g: &Graph, source: VertexId) -> Option<usize> {
    let dist = bfs_distances(g, source);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// BFS order (vertices in the order they are first discovered) from `source`.
pub fn bfs_order(g: &Graph, source: VertexId) -> Vec<VertexId> {
    assert!(source < g.n(), "source {source} out of range");
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_a_path() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(eccentricity(&g, 0), Some(4));
        assert_eq!(eccentricity(&g, 2), Some(2));
    }

    #[test]
    fn disconnected_graph_has_unreachable_vertices() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 0), None);
    }

    #[test]
    fn bfs_order_visits_each_reachable_vertex_once() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (2, 3), (4, 5)]).unwrap();
        let order = bfs_order(&g, 0);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), 4);
        assert!(!set.contains(&4));
    }

    #[test]
    fn multi_source_distances_take_the_nearest_source() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)]).unwrap();
        let d = multi_source_bfs_distances(&g, [0, 4]);
        assert_eq!(d[..5], [0, 1, 2, 1, 0]);
        assert_eq!(d[5], UNREACHABLE);
        // Duplicated sources are harmless; empty sources reach nothing.
        assert_eq!(multi_source_bfs_distances(&g, [2, 2]), bfs_distances(&g, 2));
        assert_eq!(
            multi_source_bfs_distances(&g, []),
            vec![UNREACHABLE; 7],
            "no sources, no reachability"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn multi_source_rejects_bad_source() {
        let g = Graph::empty(2);
        multi_source_bfs_distances(&g, [2]);
    }

    #[test]
    fn single_vertex_graph() {
        let g = Graph::empty(1);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
        assert_eq!(eccentricity(&g, 0), Some(0));
        assert_eq!(bfs_order(&g, 0), vec![0]);
    }
}
