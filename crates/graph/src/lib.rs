//! Graph substrate for the `selfstab-mis` workspace.
//!
//! This crate provides everything the MIS processes of Giakkoupis & Ziccardi
//! (PODC 2023) need from a graph library:
//!
//! * [`Graph`] — an immutable, compressed-sparse-row (CSR) undirected graph,
//!   built through [`GraphBuilder`] or directly from an edge list.
//! * [`VertexSet`] — a dense bitset over the vertex ids of a graph, used to
//!   represent the evolving sets `B_t`, `A_t`, `I_t`, `V_t` of the paper.
//! * [`generators`] — the graph families used in the paper's analysis:
//!   Erdős–Rényi `G(n,p)`, complete graphs, disjoint cliques, trees and
//!   forests (bounded arboricity), regular graphs, grids, and more.
//! * [`properties`] — structural analysis: degrees, degeneracy/arboricity
//!   bounds, diameter, common neighbors, and the *(n,p)-good graph* checker
//!   of Definition 17.
//! * [`mis_check`] — validation of independence and maximality of a vertex
//!   set, used to verify that every process stabilizes to a correct MIS.
//! * [`traversal`], [`components`], [`union_find`] — supporting algorithms.
//!
//! # Example
//!
//! ```
//! use mis_graph::{GraphBuilder, mis_check};
//!
//! // A triangle plus a pendant vertex.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! b.add_edge(2, 3);
//! let g = b.build();
//!
//! assert_eq!(g.n(), 4);
//! assert_eq!(g.m(), 4);
//! assert_eq!(g.degree(2), 3);
//!
//! // {0, 3} is a maximal independent set of this graph.
//! let mis = mis_graph::VertexSet::from_indices(4, [0, 3]);
//! assert!(mis_check::is_mis(&g, &mis));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod delta;
mod error;
mod subgraph;
mod vertex_set;

pub mod components;
pub mod generators;
pub mod mis_check;
pub mod properties;
pub mod traversal;
pub mod union_find;

pub use builder::GraphBuilder;
pub use csr::{CompactId, Graph, NeighborIter, Neighbors};
pub use delta::{CommittedDelta, DynamicGraph, GraphDelta, Mutation};
pub use error::GraphError;
pub use subgraph::InducedSubgraph;
pub use vertex_set::VertexSet;

/// Vertex identifier. Vertices of an `n`-vertex graph are `0..n`.
pub type VertexId = usize;
