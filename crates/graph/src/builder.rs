use crate::{Graph, GraphError, VertexId};

/// Incremental builder for [`Graph`].
///
/// The builder accepts undirected edges in any order, silently ignores
/// duplicates, rejects self-loops and out-of-range endpoints, and produces a
/// CSR [`Graph`] with sorted adjacency lists on [`GraphBuilder::build`].
///
/// # Example
///
/// ```
/// use mis_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 1); // duplicate of (1, 2); ignored
/// let g = b.build();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    adjacency: Vec<Vec<VertexId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices (ids `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds `u32::MAX`: the CSR stores vertex ids compactly
    /// as `u32` (see [`crate::CompactId`]).
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "the compact CSR supports at most u32::MAX vertices, got {n}"
        );
        GraphBuilder {
            n,
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of vertices of the graph being built.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either endpoint is `>= n`. Use
    /// [`GraphBuilder::try_add_edge`] for a fallible version.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.try_add_edge(u, v).expect("invalid edge");
    }

    /// Adds the undirected edge `{u, v}`, returning an error instead of
    /// panicking on invalid input.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`, [`GraphError::VertexOutOfRange`]
    /// if either endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        Ok(())
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    ///
    /// Duplicate edges are collapsed here (adjacency lists are sorted and
    /// deduplicated), so calling `add_edge(u, v)` twice yields a single edge.
    pub fn build(mut self) -> Graph {
        let mut m = 0usize;
        for list in &mut self.adjacency {
            list.sort_unstable();
            list.dedup();
            m += list.len();
        }
        debug_assert!(m % 2 == 0, "every undirected edge must appear twice");
        let m = m / 2;

        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut adjacency = Vec::with_capacity(2 * m);
        offsets.push(0);
        for list in &self.adjacency {
            adjacency.extend_from_slice(list);
            offsets.push(adjacency.len());
        }
        Graph::from_sorted_adjacency(offsets, adjacency, m)
    }
}

impl Extend<(VertexId, VertexId)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builder_collapses_duplicates() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 3);
        b.add_edge(2, 3);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(0).to_vec(), vec![1]);
        assert_eq!(g.neighbors(2).to_vec(), vec![3]);
    }

    #[test]
    fn try_add_edge_rejects_self_loop_without_mutating() {
        let mut b = GraphBuilder::new(2);
        assert!(b.try_add_edge(0, 0).is_err());
        let g = b.build();
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn add_edge_panics_on_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn extend_adds_edges() {
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 1), (1, 2), (3, 4)]);
        let g = b.build();
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn empty_builder_builds_edgeless_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 0);
    }

    proptest! {
        /// Building from a random edge list always yields sorted, symmetric,
        /// loop-free adjacency, and the edge count matches the number of
        /// distinct unordered pairs supplied.
        #[test]
        fn builder_invariants(edges in proptest::collection::vec((0usize..20, 0usize..20), 0..200)) {
            let n = 20;
            let mut b = GraphBuilder::new(n);
            let mut distinct = std::collections::HashSet::new();
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                    distinct.insert((u.min(v), u.max(v)));
                }
            }
            let g = b.build();
            prop_assert_eq!(g.m(), distinct.len());
            for u in g.vertices() {
                let nbrs = g.neighbors(u).to_vec();
                // sorted, no duplicates, no self loops
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(!nbrs.contains(&u));
                // symmetry
                for &v in &nbrs {
                    prop_assert!(g.neighbors(v).contains(u));
                }
            }
        }
    }
}
