//! Disjoint-set (union–find) data structure with union by rank and path
//! compression, used by the connected-component analysis and by the random
//! tree / forest generators to avoid creating cycles.

/// Disjoint-set forest over the elements `0..n`.
///
/// # Example
///
/// ```
/// use mis_graph::union_find::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already connected
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.component_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the canonical representative of `x`'s set, compressing paths.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `x` and `y`.
    ///
    /// Returns `true` if the two elements were in different sets (i.e. a merge
    /// actually happened).
    ///
    /// # Panics
    ///
    /// Panics if either element is out of range.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either element is out of range.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Current number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(2), 2);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }

    proptest! {
        /// Union–find agrees with a naive label-propagation implementation.
        #[test]
        fn matches_naive(unions in proptest::collection::vec((0usize..50, 0usize..50), 0..120)) {
            let n = 50;
            let mut uf = UnionFind::new(n);
            let mut label: Vec<usize> = (0..n).collect();
            for (x, y) in unions {
                uf.union(x, y);
                let (lx, ly) = (label[x], label[y]);
                if lx != ly {
                    for l in label.iter_mut() {
                        if *l == ly { *l = lx; }
                    }
                }
            }
            for x in 0..n {
                for y in 0..n {
                    prop_assert_eq!(uf.connected(x, y), label[x] == label[y]);
                }
            }
            let distinct: std::collections::HashSet<_> = label.iter().copied().collect();
            prop_assert_eq!(uf.component_count(), distinct.len());
        }
    }
}
