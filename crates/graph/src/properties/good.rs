//! The *(n,p)-good graph* checker of Definition 17.
//!
//! Properties (P1)–(P4) quantify over all vertex subsets (or pairs/triples of
//! subsets), so they cannot be verified exactly in polynomial time; following
//! the spirit of Lemma 18 ("a `G(n,p)` graph is good w.h.p."), the checker
//! verifies them over a configurable number of *randomly sampled* subsets, and
//! verifies (P5) and (P6) exactly. A reported violation is always a genuine
//! counterexample; a clean report is statistical evidence, matching how the
//! property is used in the paper (it holds w.h.p. over the graph).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::properties::{has_diameter_at_most_2, max_common_neighbors};
use crate::{Graph, VertexId, VertexSet};

/// Configuration for the sampled checks of properties (P1)–(P4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodGraphConfig {
    /// Number of random subsets sampled per property.
    pub samples_per_property: usize,
    /// The edge probability `p` the graph is checked against (the `p` of
    /// "(n,p)-good"). Must be in `(0, 1)`.
    pub p: f64,
}

impl GoodGraphConfig {
    /// A reasonable default: 200 sampled subsets per property.
    pub fn new(p: f64) -> Self {
        GoodGraphConfig {
            samples_per_property: 200,
            p,
        }
    }
}

/// Outcome of checking one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropertyResult {
    /// Number of sampled (or exhaustive) checks performed.
    pub checks: usize,
    /// Number of violations found.
    pub violations: usize,
}

impl PropertyResult {
    /// `true` if no violation was found.
    pub fn holds(&self) -> bool {
        self.violations == 0
    }
}

/// Aggregate report over properties (P1)–(P6) of Definition 17.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoodGraphReport {
    /// (P1) induced average degree bound: every sampled `S` has average degree
    /// of `G[S]` at most `max(8 p |S|, 4 ln n)`.
    pub p1_induced_average_degree: PropertyResult,
    /// (P2) expansion of large sets: for sampled `S` with `|S| ≥ 40 ln(n)/p`,
    /// at most `|S|/2` outside vertices have fewer than `p|S|/2` neighbors in `S`.
    pub p2_large_set_expansion: PropertyResult,
    /// (P3) neighborhood domination: for sampled disjoint `S, T, I` with
    /// `|S| ≥ 2|T|` and `(S ∪ T) ∩ N(I) = ∅`,
    /// `|N(T) \ N⁺(S ∪ I)| ≤ |N(S) \ N⁺(I)| + 8 ln²(n)/p`.
    pub p3_neighborhood_domination: PropertyResult,
    /// (P4) sparse cuts: for sampled disjoint `S, T` with `|S| ≥ |T|` and
    /// `|T| ≤ ln(n)/p`, `|E(S,T)| ≤ 6 |S| ln n`.
    pub p4_cut_bound: PropertyResult,
    /// (P5) common neighbors: no two vertices share more than
    /// `max(6 n p², 4 ln n)` common neighbors (checked exactly).
    pub p5_common_neighbors: PropertyResult,
    /// (P6) diameter: if `p ≥ 2 √(ln(n)/n)` then `diam(G) ≤ 2`
    /// (checked exactly; vacuously holds for smaller `p`).
    pub p6_diameter: PropertyResult,
    /// The maximum common-neighbor count found while checking (P5).
    pub max_common_neighbors: usize,
}

impl GoodGraphReport {
    /// `true` if no property violation was detected.
    pub fn is_good(&self) -> bool {
        self.p1_induced_average_degree.holds()
            && self.p2_large_set_expansion.holds()
            && self.p3_neighborhood_domination.holds()
            && self.p4_cut_bound.holds()
            && self.p5_common_neighbors.holds()
            && self.p6_diameter.holds()
    }
}

fn ln_n(n: usize) -> f64 {
    (n.max(2) as f64).ln()
}

fn sample_subset<R: Rng + ?Sized>(pool: &[VertexId], size: usize, rng: &mut R) -> Vec<VertexId> {
    let size = size.min(pool.len());
    let mut pool: Vec<VertexId> = pool.to_vec();
    pool.shuffle(rng);
    pool.truncate(size);
    pool
}

/// Average degree of the subgraph induced by `s` (slice of distinct vertices).
fn induced_avg_degree(g: &Graph, s: &[VertexId]) -> f64 {
    if s.is_empty() {
        return 0.0;
    }
    let set = VertexSet::from_indices(g.n(), s.iter().copied());
    let mut endpoints = 0usize;
    for &u in s {
        endpoints += g.neighbors(u).iter().filter(|&v| set.contains(v)).count();
    }
    endpoints as f64 / s.len() as f64
}

/// Checks whether `g` satisfies the (n,p)-good properties of Definition 17,
/// sampling random subsets for the universally-quantified properties
/// (P1)–(P4) and checking (P5)–(P6) exactly.
///
/// # Panics
///
/// Panics if `config.p` is not in `(0, 1)`.
///
/// # Example
///
/// ```
/// use mis_graph::{generators, properties::{check_good, GoodGraphConfig}};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
/// let p = 0.1;
/// let g = generators::gnp(300, p, &mut rng);
/// let report = check_good(&g, GoodGraphConfig::new(p), &mut rng);
/// assert!(report.is_good());
/// ```
pub fn check_good<R: Rng + ?Sized>(
    g: &Graph,
    config: GoodGraphConfig,
    rng: &mut R,
) -> GoodGraphReport {
    assert!(
        config.p > 0.0 && config.p < 1.0,
        "p must be in (0, 1), got {}",
        config.p
    );
    let n = g.n();
    let p = config.p;
    let ln = ln_n(n);
    let samples = config.samples_per_property;
    let all: Vec<VertexId> = g.vertices().collect();

    // ---- (P1) ----
    let mut p1 = PropertyResult {
        checks: 0,
        violations: 0,
    };
    for _ in 0..samples {
        if n == 0 {
            break;
        }
        let size = rng.gen_range(1..=n);
        let s = sample_subset(&all, size, rng);
        let bound = (8.0 * p * s.len() as f64).max(4.0 * ln);
        p1.checks += 1;
        if induced_avg_degree(g, &s) > bound + 1e-9 {
            p1.violations += 1;
        }
    }

    // ---- (P2) ----
    let mut p2 = PropertyResult {
        checks: 0,
        violations: 0,
    };
    let min_size = (40.0 * ln / p).ceil() as usize;
    if min_size <= n {
        for _ in 0..samples {
            let size = rng.gen_range(min_size..=n);
            let s = sample_subset(&all, size, rng);
            let set = VertexSet::from_indices(n, s.iter().copied());
            let threshold = p * s.len() as f64 / 2.0;
            let poor = g
                .vertices()
                .filter(|&u| !set.contains(u))
                .filter(|&u| {
                    (g.neighbors(u).iter().filter(|&v| set.contains(v)).count() as f64) < threshold
                })
                .count();
            p2.checks += 1;
            if poor > s.len() / 2 {
                p2.violations += 1;
            }
        }
    }

    // ---- (P3) ----
    let mut p3 = PropertyResult {
        checks: 0,
        violations: 0,
    };
    for _ in 0..samples {
        if n < 4 {
            break;
        }
        // Sample a small I, exclude its neighborhood, then split the remainder
        // into S and T with |S| >= 2|T|.
        let i_size = rng.gen_range(0..=(n / 8).max(1));
        let i_vec = sample_subset(&all, i_size, rng);
        let i_set = VertexSet::from_indices(n, i_vec.iter().copied());
        let mut n_of_i = VertexSet::new(n);
        for &u in &i_vec {
            for v in g.neighbors(u) {
                if !i_set.contains(v) {
                    n_of_i.insert(v);
                }
            }
        }
        let pool: Vec<VertexId> = g
            .vertices()
            .filter(|&v| !i_set.contains(v) && !n_of_i.contains(v))
            .collect();
        if pool.len() < 3 {
            continue;
        }
        let t_size = rng.gen_range(1..=(pool.len() / 3).max(1));
        let chosen = sample_subset(&pool, 3 * t_size, rng);
        let (t_vec, s_vec) = chosen.split_at(t_size.min(chosen.len()));
        if s_vec.len() < 2 * t_vec.len() || t_vec.is_empty() {
            continue;
        }
        let s_set = VertexSet::from_indices(n, s_vec.iter().copied());
        let t_set = VertexSet::from_indices(n, t_vec.iter().copied());

        // N(T) \ N+(S ∪ I)
        let mut lhs = 0usize;
        let mut counted = VertexSet::new(n);
        for &t in t_vec {
            for v in g.neighbors(t) {
                if counted.contains(v) || t_set.contains(v) {
                    continue;
                }
                let in_closed_si = s_set.contains(v)
                    || i_set.contains(v)
                    || g.neighbors(v)
                        .iter()
                        .any(|w| s_set.contains(w) || i_set.contains(w));
                if !in_closed_si {
                    counted.insert(v);
                    lhs += 1;
                }
            }
        }
        // N(S) \ N+(I)
        let mut rhs = 0usize;
        let mut counted = VertexSet::new(n);
        for &s in s_vec {
            for v in g.neighbors(s) {
                if counted.contains(v) || s_set.contains(v) {
                    continue;
                }
                let in_closed_i =
                    i_set.contains(v) || g.neighbors(v).iter().any(|w| i_set.contains(w));
                if !in_closed_i {
                    counted.insert(v);
                    rhs += 1;
                }
            }
        }
        p3.checks += 1;
        if (lhs as f64) > rhs as f64 + 8.0 * ln * ln / p + 1e-9 {
            p3.violations += 1;
        }
    }

    // ---- (P4) ----
    let mut p4 = PropertyResult {
        checks: 0,
        violations: 0,
    };
    let t_max = (ln / p).floor().max(1.0) as usize;
    for _ in 0..samples {
        if n < 2 {
            break;
        }
        let t_size = rng.gen_range(1..=t_max.min(n / 2).max(1));
        let chosen = sample_subset(
            &all,
            n.min(t_size + rng.gen_range(t_size..=n.max(t_size + 1))),
            rng,
        );
        if chosen.len() < 2 * t_size {
            continue;
        }
        let (t_vec, s_vec) = chosen.split_at(t_size);
        if s_vec.len() < t_vec.len() {
            continue;
        }
        let s_set = VertexSet::from_indices(n, s_vec.iter().copied());
        let cut: usize = t_vec
            .iter()
            .map(|&t| g.neighbors(t).iter().filter(|&v| s_set.contains(v)).count())
            .sum();
        p4.checks += 1;
        if (cut as f64) > 6.0 * s_vec.len() as f64 * ln + 1e-9 {
            p4.violations += 1;
        }
    }

    // ---- (P5) exact ----
    let max_common = max_common_neighbors(g);
    let p5_bound = (6.0 * n as f64 * p * p).max(4.0 * ln);
    let p5 = PropertyResult {
        checks: 1,
        violations: usize::from(max_common as f64 > p5_bound + 1e-9),
    };

    // ---- (P6) exact ----
    let p6_applies = p >= 2.0 * (ln / n.max(1) as f64).sqrt();
    let p6 = if p6_applies {
        PropertyResult {
            checks: 1,
            violations: usize::from(!has_diameter_at_most_2(g)),
        }
    } else {
        PropertyResult {
            checks: 0,
            violations: 0,
        }
    };

    GoodGraphReport {
        p1_induced_average_degree: p1,
        p2_large_set_expansion: p2,
        p3_neighborhood_domination: p3,
        p4_cut_bound: p4,
        p5_common_neighbors: p5,
        p6_diameter: p6,
        max_common_neighbors: max_common,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sparse_gnp_is_good() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let p = 0.05;
        let g = generators::gnp(400, p, &mut rng);
        let report = check_good(&g, GoodGraphConfig::new(p), &mut rng);
        assert!(report.is_good(), "report: {report:?}");
        assert!(report.p1_induced_average_degree.checks > 0);
        assert!(report.p4_cut_bound.checks > 0);
        assert_eq!(report.p5_common_neighbors.checks, 1);
    }

    #[test]
    fn dense_gnp_is_good_and_p6_applies() {
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        let p = 0.5;
        let g = generators::gnp(200, p, &mut rng);
        let report = check_good(&g, GoodGraphConfig::new(p), &mut rng);
        assert!(report.is_good(), "report: {report:?}");
        assert_eq!(
            report.p6_diameter.checks, 1,
            "P6 must be exercised for dense p"
        );
    }

    #[test]
    fn adversarial_graph_violates_p5() {
        // Complete bipartite K_{2,k}: the two left vertices share k common
        // neighbors, far above the bound for a claimed tiny p.
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let n = 60;
        let mut b = crate::GraphBuilder::new(n);
        for v in 2..n {
            b.add_edge(0, v);
            b.add_edge(1, v);
        }
        let g = b.build();
        let report = check_good(&g, GoodGraphConfig::new(0.01), &mut rng);
        assert!(!report.p5_common_neighbors.holds());
        assert!(!report.is_good());
        assert_eq!(report.max_common_neighbors, n - 2);
    }

    #[test]
    fn disconnected_dense_claim_violates_p6() {
        // Two disjoint cliques with p claimed to be large: diameter is infinite.
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let g = generators::disjoint_cliques(2, 30);
        let report = check_good(&g, GoodGraphConfig::new(0.9), &mut rng);
        assert_eq!(report.p6_diameter.checks, 1);
        assert!(!report.p6_diameter.holds());
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn rejects_invalid_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        check_good(&Graph::empty(3), GoodGraphConfig::new(0.0), &mut rng);
    }

    #[test]
    fn report_serializes() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let p = 0.1;
        let g = generators::gnp(50, p, &mut rng);
        let report = check_good(
            &g,
            GoodGraphConfig {
                samples_per_property: 20,
                p,
            },
            &mut rng,
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: GoodGraphReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
