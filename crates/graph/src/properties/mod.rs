//! Structural graph properties used by the analysis and the experiments:
//! degeneracy (an arboricity proxy), diameter, common-neighbor statistics,
//! and the *(n,p)-good graph* checker of Definition 17.

mod good;

pub use good::{check_good, GoodGraphConfig, GoodGraphReport};

use crate::traversal::{bfs_distances, UNREACHABLE};
use crate::{Graph, VertexId};

/// Degeneracy of the graph: the smallest `k` such that every subgraph has a
/// vertex of degree at most `k`, computed by the standard peeling (smallest-
/// degree-first removal) algorithm in `O(n + m)`.
///
/// The degeneracy `d` sandwiches the arboricity `λ`:
/// `λ ≤ d ≤ 2λ - 1`, so it serves as the "bounded arboricity" certificate
/// required by Theorem 11's experiments.
///
/// # Example
///
/// ```
/// use mis_graph::{generators, properties};
///
/// // A tree has degeneracy 1, a cycle 2, a clique n - 1.
/// assert_eq!(properties::degeneracy(&generators::path(10)), 1);
/// assert_eq!(properties::degeneracy(&generators::cycle(10)), 2);
/// assert_eq!(properties::degeneracy(&generators::complete(6)), 5);
/// ```
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    let mut degree: Vec<usize> = g.degrees();
    let max_deg = g.max_degree();
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in g.vertices() {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut degeneracy = 0;
    let mut processed = 0;
    let mut cursor = 0;
    while processed < n {
        // Find the lowest non-empty bucket at or below the cursor, else move up.
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = buckets[cursor].pop().unwrap();
        if removed[v] || degree[v] != cursor {
            // Stale entry (vertex already removed or re-bucketed).
            continue;
        }
        removed[v] = true;
        processed += 1;
        degeneracy = degeneracy.max(cursor);
        for w in g.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
    }
    degeneracy
}

/// Peeling order and core numbers: returns `(order, core)` where `order` is
/// the smallest-degree-first elimination order and `core[v]` is the core
/// number (the largest `k` such that `v` belongs to the `k`-core).
pub fn core_decomposition(g: &Graph) -> (Vec<VertexId>, Vec<usize>) {
    let n = g.n();
    let mut degree: Vec<usize> = g.degrees();
    let max_deg = g.max_degree();
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut core = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut current = 0usize;
    let mut cursor = 0usize;
    while order.len() < n {
        while cursor > 0 && !buckets[cursor - 1].is_empty() {
            cursor -= 1;
        }
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = buckets[cursor].pop().unwrap();
        if removed[v] || degree[v] != cursor {
            continue;
        }
        removed[v] = true;
        current = current.max(cursor);
        core[v] = current;
        order.push(v);
        for w in g.neighbors(v) {
            if !removed[w] {
                degree[w] -= 1;
                buckets[degree[w]].push(w);
            }
        }
    }
    (order, core)
}

/// Exact diameter of a connected graph by all-pairs BFS (`O(n · (n + m))`).
///
/// Returns `None` if the graph is disconnected or has no vertices.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let mut diam = 0usize;
    for u in g.vertices() {
        let dist = bfs_distances(g, u);
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            diam = diam.max(d);
        }
    }
    Some(diam)
}

/// Fast check whether `diam(G) ≤ 2`: every non-adjacent pair must share a
/// common neighbor. `O(Σ_u deg(u)²)` via neighborhood marking, which is much
/// cheaper than all-pairs BFS on the dense graphs where it matters.
pub fn has_diameter_at_most_2(g: &Graph) -> bool {
    let n = g.n();
    if n <= 1 {
        return true;
    }
    // reach[v] true if v is u, a neighbor of u, or at distance 2 from u.
    let mut stamp = vec![usize::MAX; n];
    for u in g.vertices() {
        stamp[u] = u;
        for v in g.neighbors(u) {
            stamp[v] = u;
            for w in g.neighbors(v) {
                stamp[w] = u;
            }
        }
        if stamp.iter().any(|&s| s != u) {
            return false;
        }
    }
    true
}

/// Maximum number of common neighbors over all vertex pairs, computed exactly
/// by counting wedges (`O(Σ_v deg(v)²)`); bound (P5) of Definition 17.
pub fn max_common_neighbors(g: &Graph) -> usize {
    let n = g.n();
    if n < 2 {
        return 0;
    }
    let mut counts = std::collections::HashMap::new();
    for v in g.vertices() {
        let nbrs = g.neighbors(v).as_compact();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                *counts.entry((nbrs[i], nbrs[j])).or_insert(0usize) += 1;
            }
        }
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Average degree of the subgraph induced by `vertices`, without
/// materializing the subgraph. Returns `0.0` for an empty selection.
pub fn induced_average_degree(g: &Graph, vertices: &crate::VertexSet) -> f64 {
    if vertices.is_empty() {
        return 0.0;
    }
    let mut internal_edge_endpoints = 0usize;
    for u in vertices.iter() {
        internal_edge_endpoints += g
            .neighbors(u)
            .iter()
            .filter(|&v| vertices.contains(v))
            .count();
    }
    internal_edge_endpoints as f64 / vertices.len() as f64
}

/// The `θ_u(i)` quantity of equation (3) in the paper, approximated greedily:
/// the maximum, over subsets `S ⊆ N(u)` with `|S| ≤ i`, of
/// `|N(u) ∩ N⁺(S)|`, where we greedily pick the neighbors whose closed
/// neighborhoods cover the most of `N(u)`.
///
/// The exact maximum is NP-hard in general (max-coverage); the greedy value
/// is within a `(1 - 1/e)` factor and is what the experiments report.
pub fn theta_greedy(g: &Graph, u: VertexId, i: usize) -> usize {
    let nbrs = g.neighbors(u);
    if nbrs.is_empty() || i == 0 {
        return 0;
    }
    let nbr_set: std::collections::HashSet<VertexId> = nbrs.iter().collect();
    let mut covered: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut chosen = 0usize;
    while chosen < i {
        let mut best: Option<(VertexId, usize)> = None;
        for s in nbrs {
            let gain = std::iter::once(s)
                .chain(g.neighbors(s).iter())
                .filter(|w| nbr_set.contains(w) && !covered.contains(w))
                .count();
            if best.map_or(true, |(_, g0)| gain > g0) {
                best = Some((s, gain));
            }
        }
        match best {
            Some((s, gain)) if gain > 0 => {
                covered.insert(s);
                for w in g.neighbors(s) {
                    if nbr_set.contains(&w) {
                        covered.insert(w);
                    }
                }
                chosen += 1;
            }
            _ => break,
        }
    }
    covered.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::VertexSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn degeneracy_of_known_families() {
        assert_eq!(degeneracy(&Graph::empty(0)), 0);
        assert_eq!(degeneracy(&Graph::empty(5)), 0);
        assert_eq!(degeneracy(&generators::path(10)), 1);
        assert_eq!(degeneracy(&generators::star(10)), 1);
        assert_eq!(degeneracy(&generators::cycle(10)), 2);
        assert_eq!(degeneracy(&generators::complete(7)), 6);
        assert_eq!(degeneracy(&generators::grid(4, 4)), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(degeneracy(&generators::random_tree(100, &mut rng)), 1);
    }

    #[test]
    fn core_decomposition_matches_degeneracy() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::gnp(80, 0.1, &mut rng);
        let (order, core) = core_decomposition(&g);
        assert_eq!(order.len(), g.n());
        let d = degeneracy(&g);
        assert_eq!(core.iter().copied().max().unwrap_or(0), d);
    }

    #[test]
    fn diameter_of_known_families() {
        assert_eq!(diameter(&generators::path(5)), Some(4));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&generators::star(5)), Some(2));
        assert_eq!(diameter(&Graph::empty(3)), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }

    #[test]
    fn diameter_at_most_2_check_agrees_with_exact() {
        let graphs = vec![
            generators::complete(6),
            generators::star(8),
            generators::path(4),
            generators::cycle(5),
            generators::cycle(4),
            Graph::empty(1),
            Graph::empty(3),
        ];
        for g in graphs {
            let exact = diameter(&g).is_some_and(|d| d <= 2);
            assert_eq!(
                has_diameter_at_most_2(&g),
                exact,
                "graph with n = {}",
                g.n()
            );
        }
    }

    #[test]
    fn dense_gnp_has_diameter_2() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // p = 0.5 with n = 60 is far above the 2*sqrt(ln n / n) threshold of (P6).
        let g = generators::gnp(60, 0.5, &mut rng);
        assert!(has_diameter_at_most_2(&g));
    }

    #[test]
    fn max_common_neighbors_of_known_families() {
        assert_eq!(max_common_neighbors(&generators::complete(5)), 3);
        assert_eq!(max_common_neighbors(&generators::path(5)), 1);
        assert_eq!(max_common_neighbors(&generators::star(6)), 1);
        assert_eq!(max_common_neighbors(&generators::cycle(4)), 2);
        assert_eq!(max_common_neighbors(&Graph::empty(3)), 0);
    }

    #[test]
    fn induced_average_degree_of_clique_subset() {
        let g = generators::complete(6);
        let s = VertexSet::from_indices(6, [0, 1, 2]);
        // Induced K_3: average degree 2.
        assert!((induced_average_degree(&g, &s) - 2.0).abs() < 1e-12);
        assert_eq!(induced_average_degree(&g, &VertexSet::new(6)), 0.0);
    }

    #[test]
    fn theta_greedy_simple_cases() {
        // Star: N(hub) = leaves, no two leaves adjacent, so one chosen leaf
        // covers only itself.
        let g = generators::star(6);
        assert_eq!(theta_greedy(&g, 0, 1), 1);
        assert_eq!(theta_greedy(&g, 0, 3), 3);
        // Clique: any single neighbor covers all of N(u).
        let g = generators::complete(6);
        assert_eq!(theta_greedy(&g, 0, 1), 5);
        // Degenerate inputs.
        assert_eq!(theta_greedy(&generators::path(3), 0, 0), 0);
        assert_eq!(theta_greedy(&Graph::empty(2), 0, 2), 0);
    }
}
