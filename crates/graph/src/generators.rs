//! Generators for the graph families used in the paper's analysis.
//!
//! * [`gnp`] — Erdős–Rényi `G(n,p)` random graphs (Theorems 2, 3, 19, 32),
//!   using Batagelj–Brandes geometric skipping so sparse graphs cost
//!   `O(n + m)` rather than `O(n²)`.
//! * [`complete`] and [`disjoint_cliques`] — the clique families of
//!   Theorem 8 and Remark 9.
//! * [`random_tree`], [`path`], [`star`], [`binary_tree`], [`forest_union`]
//!   — trees and bounded-arboricity graphs (Theorem 11).
//! * [`regular`] — random `d`-regular multigraph-free graphs (Theorem 12's
//!   `O(Δ log n)` bound).
//! * [`cycle`], [`grid`], [`bipartite`], [`barbell`] — additional families
//!   used in tests, examples, and robustness experiments.
//!
//! All generators are deterministic given the supplied RNG, so experiments
//! are reproducible from a seed.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, VertexId};

/// Erdős–Rényi random graph `G(n,p)`: every unordered pair becomes an edge
/// independently with probability `p`.
///
/// Uses geometric skipping, so the running time is `O(n + m)` in expectation.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Example
///
/// ```
/// use mis_graph::generators::gnp;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = gnp(100, 0.05, &mut rng);
/// assert_eq!(g.n(), 100);
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if n == 0 || p == 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut builder = GraphBuilder::new(n);
    // Batagelj–Brandes: walk the strictly-lower-triangular adjacency matrix in
    // row-major order, skipping ahead by geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen::<f64>();
        // Gap to the next selected pair.
        let gap = ((1.0 - r).ln() / log_q).floor() as i64;
        w += 1 + gap;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            builder.add_edge(v as usize, w as usize);
        }
    }
    builder.build()
}

/// Counter-based parallel `G(n,p)`: the same Erdős–Rényi distribution as
/// [`gnp`], but keyed on `(seed, row)` instead of a shared sequential RNG
/// stream, so rows are independent and can be generated **in parallel with
/// results identical for every thread count** (and identical to the
/// single-threaded run).
///
/// Each row `v` walks its strictly-lower-triangular slots `w < v` with
/// geometrically distributed skips drawn from a SplitMix64 stream seeded by
/// `(seed, v)` — the per-vertex-randomness idea the round engine uses,
/// applied to graph setup (which dominates wall-clock at `n = 10⁷` in the
/// scale experiment). Rows are partitioned into contiguous, volume-balanced
/// blocks; block edge lists are concatenated in row order and scattered into
/// the compact CSR with a counting sort, which leaves every adjacency list
/// sorted without a per-list sort (row `v` contributes its smaller neighbors
/// in ascending order before later rows append the larger ones).
///
/// Uses all available cores; see [`gnp_counter_threads`] to pin the worker
/// count. Note the sampled graph differs from [`gnp`]'s for the same seed —
/// the two draw from different randomness models (same distribution).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
pub fn gnp_counter(n: usize, p: f64, seed: u64) -> Graph {
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    gnp_counter_threads(n, p, seed, threads)
}

/// [`gnp_counter`] with an explicit worker-thread count (the result does not
/// depend on it).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
pub fn gnp_counter_threads(n: usize, p: f64, seed: u64, threads: usize) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if n == 0 || p == 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let log_q = (1.0 - p).ln();
    if log_q == 0.0 {
        // p is so small that 1 - p rounds to 1.0 (p < ~1e-16): the geometric
        // skip would divide by zero. The expected edge count p·n(n−1)/2 is
        // indistinguishable from zero at any representable n, so the empty
        // graph is the distributionally correct sample.
        return Graph::empty(n);
    }

    // Volume-balanced contiguous row blocks: the expected work of rows
    // `0..v` grows like `v²`, so boundaries at `n·sqrt(i/k)` equalize it.
    let blocks = threads.max(1).min(n);
    let mut bounds = Vec::with_capacity(blocks);
    let mut lo = 0usize;
    for i in 1..=blocks {
        let hi = if i == blocks {
            n
        } else {
            (((n as f64) * (i as f64 / blocks as f64).sqrt()).round() as usize).clamp(lo, n)
        };
        if hi > lo {
            bounds.push((lo, hi));
            lo = hi;
        }
    }

    // The persistent process-wide pool for this width: generation shares
    // workers with the round engine instead of spawning its own.
    let pool = rayon::global_pool(bounds.len().max(1));
    let bounds_ref = &bounds;
    // Per-block edge lists, in row order within and across blocks.
    let block_edges: Vec<Vec<(u32, u32)>> = pool.broadcast(|ctx| {
        let (lo, hi) = bounds_ref[ctx.index()];
        let mut edges = Vec::with_capacity((p * triangle(lo, hi)).ceil() as usize + 1);
        for v in lo.max(1)..hi {
            let mut state = row_key(seed, v);
            let mut w: i64 = -1;
            loop {
                let r = unit_f64(splitmix64(&mut state));
                w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
                if w >= v as i64 {
                    break;
                }
                edges.push((v as u32, w as u32));
            }
        }
        edges
    });

    // Counting-sort CSR assembly. Processing edges in generation order keeps
    // each adjacency list sorted: row v first receives its smaller neighbors
    // (ascending w), later rows append the larger ones (ascending v).
    let m: usize = block_edges.iter().map(Vec::len).sum();
    let arcs = 2 * m;
    assert!(
        u32::try_from(arcs).is_ok(),
        "gnp_counter supports at most 2^31 edges (got m = {m})"
    );
    let mut degree = vec![0u32; n];
    for block in &block_edges {
        for &(v, w) in block {
            degree[v as usize] += 1;
            degree[w as usize] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0u32);
    for &d in &degree {
        acc += d;
        offsets.push(acc);
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut adjacency = vec![crate::CompactId::new(0); arcs];
    for block in &block_edges {
        for &(v, w) in block {
            adjacency[cursor[v as usize] as usize] = crate::CompactId::new(w as usize);
            cursor[v as usize] += 1;
            adjacency[cursor[w as usize] as usize] = crate::CompactId::new(v as usize);
            cursor[w as usize] += 1;
        }
    }
    Graph::from_compact_parts(offsets, adjacency, m)
}

/// Expected number of lower-triangular slots in rows `lo..hi`.
fn triangle(lo: usize, hi: usize) -> f64 {
    let t = |v: usize| (v as f64) * (v as f64 - 1.0) / 2.0;
    t(hi) - t(lo)
}

/// Mixes `(seed, row)` into the initial SplitMix64 state.
fn row_key(seed: u64, row: usize) -> u64 {
    (seed ^ (row as u64).wrapping_mul(0xA24B_AED4_963E_E407)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One SplitMix64 step (Steele–Lea–Flood); a full-period, well-mixed 64-bit
/// stream — ample for graph sampling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a 64-bit word to `[0, 1)` with 53-bit precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Disjoint union of `count` cliques, each on `size` vertices
/// (`n = count * size` vertices total).
///
/// With `count = size = √n` this is the family of Remark 9, on which the
/// 2-state process needs `Θ(log² n)` rounds in expectation.
pub fn disjoint_cliques(count: usize, size: usize) -> Graph {
    let n = count * size;
    let mut builder = GraphBuilder::new(n);
    for c in 0..count {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                builder.add_edge(base + i, base + j);
            }
        }
    }
    builder.build()
}

/// The path `P_n` on `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        builder.add_edge(i - 1, i);
    }
    builder.build()
}

/// The cycle `C_n` on `n` vertices.
///
/// # Panics
///
/// Panics if `n` is 1 or 2 (a simple cycle needs at least 3 vertices); `n = 0`
/// yields the empty graph.
pub fn cycle(n: usize) -> Graph {
    if n == 0 {
        return Graph::empty(0);
    }
    assert!(
        n >= 3,
        "a simple cycle requires at least 3 vertices, got {n}"
    );
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        builder.add_edge(i, (i + 1) % n);
    }
    builder.build()
}

/// The star `K_{1,n-1}`: vertex 0 is the hub, vertices `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for leaf in 1..n {
        builder.add_edge(0, leaf);
    }
    builder.build()
}

/// A uniformly random labelled tree on `n` vertices, generated by the random
/// attachment construction (each vertex `i ≥ 1` attaches to a uniformly
/// random earlier vertex after a random relabelling), which yields a random
/// recursive tree — a bounded-arboricity (arboricity 1) family suitable for
/// Theorem 11 experiments.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    // Random relabelling so the root is not always vertex 0.
    let mut labels: Vec<VertexId> = (0..n).collect();
    labels.shuffle(rng);
    let mut builder = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        builder.add_edge(labels[i], labels[parent]);
    }
    builder.build()
}

/// The complete binary tree on `n` vertices: vertex `i` has children `2i + 1`
/// and `2i + 2` when those are `< n`.
pub fn binary_tree(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for i in 0..n {
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                builder.add_edge(i, child);
            }
        }
    }
    builder.build()
}

/// Union of `forests` independently sampled random spanning forests on the
/// same vertex set, giving a graph of arboricity at most `forests`.
///
/// Each forest is a uniformly random recursive tree, so the resulting graph
/// has at most `forests * (n - 1)` edges and arboricity ≤ `forests` — the
/// bounded-arboricity family of Theorem 11.
pub fn forest_union<R: Rng + ?Sized>(n: usize, forests: usize, rng: &mut R) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for _ in 0..forests {
        if n <= 1 {
            break;
        }
        let mut labels: Vec<VertexId> = (0..n).collect();
        labels.shuffle(rng);
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            if labels[i] != labels[parent] {
                builder.add_edge(labels[i], labels[parent]);
            }
        }
    }
    builder.build()
}

/// A random `d`-regular simple graph on `n` vertices via the configuration
/// model with *edge-swap repair*: an initial random stub pairing is cleaned
/// up by repeatedly swapping endpoints of offending pairs (self-loops or
/// duplicate edges) with randomly chosen other pairs. This keeps the degree
/// sequence exactly `d`-regular and converges quickly for every `d < n`,
/// unlike the classic rejection scheme whose acceptance probability vanishes
/// already for moderate `d`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n * d` is odd or `d >= n`.
pub fn regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if d >= n && !(n == 0 && d == 0) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree d = {d} must be smaller than n = {n}"),
        });
    }
    if (n * d) % 2 != 0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("n * d must be even, got n = {n}, d = {d}"),
        });
    }
    if n == 0 || d == 0 {
        return Ok(Graph::empty(n));
    }

    // Random stub pairing (may contain self-loops and multi-edges).
    let mut stubs: Vec<VertexId> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(VertexId, VertexId)> = stubs.chunks(2).map(|c| (c[0], c[1])).collect();

    // Repair sweeps: swap an endpoint of every offending pair with a random
    // other pair, until the multiset of pairs forms a simple graph.
    let key = |u: VertexId, v: VertexId| (u.min(v), u.max(v));
    loop {
        let mut seen = std::collections::HashSet::with_capacity(pairs.len());
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if u == v || !seen.insert(key(u, v)) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            break;
        }
        for i in bad {
            let j = rng.gen_range(0..pairs.len());
            if i == j {
                continue;
            }
            let (a, b) = pairs[i];
            let (c, e) = pairs[j];
            // Swap the second endpoints: (a,b),(c,e) -> (a,e),(c,b).
            pairs[i] = (a, e);
            pairs[j] = (c, b);
        }
    }

    let mut builder = GraphBuilder::new(n);
    for (u, v) in pairs {
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// The `rows × cols` grid graph (4-neighborhood).
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut builder = GraphBuilder::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    builder.build()
}

/// Random bipartite graph: sides `0..left` and `left..left + right`, each
/// cross pair present independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn bipartite<R: Rng + ?Sized>(left: usize, right: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let mut builder = GraphBuilder::new(left + right);
    for u in 0..left {
        for v in 0..right {
            if rng.gen_bool(p) {
                builder.add_edge(u, left + v);
            }
        }
    }
    builder.build()
}

/// Random geometric graph: `n` points are placed uniformly at random on the
/// unit square and two vertices are adjacent when their Euclidean distance is
/// at most `radius`.
///
/// This is the standard model for wireless sensor deployments, the
/// application domain the paper's beeping-model algorithms target. Returns
/// the graph together with the generated positions (indexed by vertex id) so
/// callers can visualize or post-process the layout.
///
/// # Panics
///
/// Panics if `radius` is negative or NaN.
pub fn random_geometric<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    rng: &mut R,
) -> (Graph, Vec<(f64, f64)>) {
    assert!(radius >= 0.0, "radius must be non-negative, got {radius}");
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut builder = GraphBuilder::new(n);
    let r2 = radius * radius;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            if dx * dx + dy * dy <= r2 {
                builder.add_edge(i, j);
            }
        }
    }
    (builder.build(), positions)
}

/// Barabási–Albert preferential-attachment graph: starting from a clique on
/// `attach` vertices, every new vertex attaches to `attach` distinct existing
/// vertices chosen with probability proportional to their current degree.
///
/// Produces the heavy-tailed degree distributions typical of real networks;
/// used by robustness experiments outside the families the paper analyzes.
///
/// # Panics
///
/// Panics if `attach == 0` or `attach >= n` (for `n > 0`).
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, attach: usize, rng: &mut R) -> Graph {
    if n == 0 {
        return Graph::empty(0);
    }
    assert!(attach >= 1, "attach must be at least 1");
    assert!(attach < n, "attach = {attach} must be smaller than n = {n}");
    let mut builder = GraphBuilder::new(n);
    // Degree-weighted sampling via the repeated-endpoints trick: every edge
    // endpoint is pushed onto `endpoints`, and sampling a uniform element of
    // that list samples a vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::new();
    for u in 0..attach {
        for v in (u + 1)..attach {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    // Special case attach == 1: the seed "clique" has a single vertex and no
    // edges, so seed the endpoint list with vertex 0.
    if endpoints.is_empty() {
        endpoints.push(0);
    }
    for v in attach.max(1)..n {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < attach.min(v) {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if target != v {
                targets.insert(target);
            }
        }
        for &t in &targets {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

/// The barbell graph: two cliques `K_k` joined by a path on `bridge` extra
/// vertices (total `2k + bridge` vertices). A classic "hard to mix" topology
/// used in robustness experiments.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    let n = 2 * k + bridge;
    let mut builder = GraphBuilder::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            builder.add_edge(i, j);
            builder.add_edge(k + bridge + i, k + bridge + j);
        }
    }
    // Path through the bridge vertices connecting the two cliques.
    if k > 0 {
        let mut prev = k - 1;
        for b in 0..bridge {
            builder.add_edge(prev, k + b);
            prev = k + b;
        }
        if n > k {
            builder.add_edge(prev, k + bridge);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::properties;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn complete_graph_edge_count() {
        for n in [0, 1, 2, 5, 20] {
            let g = complete(n);
            assert_eq!(g.n(), n);
            assert_eq!(g.m(), n * n.saturating_sub(1) / 2);
            if n > 0 {
                assert_eq!(g.max_degree(), n - 1);
                assert_eq!(g.min_degree(), n - 1);
            }
        }
    }

    #[test]
    fn gnp_extremes() {
        let mut r = rng(0);
        let g = gnp(50, 0.0, &mut r);
        assert_eq!(g.m(), 0);
        let g = gnp(50, 1.0, &mut r);
        assert_eq!(g.m(), 50 * 49 / 2);
        let g = gnp(0, 0.5, &mut r);
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn gnp_edge_count_is_near_expectation() {
        let mut r = rng(42);
        let (n, p) = (400, 0.05);
        let g = gnp(n, p, &mut r);
        let expected = p * (n * (n - 1) / 2) as f64;
        // 5 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.m() as f64 - expected).abs() < 5.0 * sd,
            "m = {}, expected ≈ {expected}",
            g.m()
        );
    }

    #[test]
    fn gnp_is_reproducible_from_seed() {
        let g1 = gnp(100, 0.1, &mut rng(7));
        let g2 = gnp(100, 0.1, &mut rng(7));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn gnp_rejects_bad_p() {
        gnp(10, 1.5, &mut rng(0));
    }

    #[test]
    fn gnp_counter_extremes_and_expectation() {
        assert_eq!(gnp_counter(0, 0.5, 1).n(), 0);
        assert_eq!(gnp_counter(50, 0.0, 1).m(), 0);
        assert_eq!(gnp_counter(50, 1.0, 1).m(), 50 * 49 / 2);
        let (n, p) = (400, 0.05);
        let g = gnp_counter(n, p, 42);
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (g.m() as f64 - expected).abs() < 5.0 * sd,
            "m = {}, expected ≈ {expected}",
            g.m()
        );
    }

    #[test]
    fn gnp_counter_is_thread_count_invariant_and_seeded() {
        for &(n, p) in &[(1usize, 0.5), (2, 0.9), (123, 0.07), (200, 0.3)] {
            let baseline = gnp_counter_threads(n, p, 7, 1);
            for threads in [2usize, 3, 8, 64] {
                assert_eq!(
                    baseline,
                    gnp_counter_threads(n, p, 7, threads),
                    "n={n}, p={p}, threads={threads}"
                );
            }
            assert_eq!(baseline, gnp_counter_threads(n, p, 7, 1));
        }
        assert_ne!(gnp_counter(300, 0.1, 1), gnp_counter(300, 0.1, 2));
    }

    #[test]
    fn gnp_counter_is_simple_and_sorted() {
        let g = gnp_counter(250, 0.08, 99);
        for u in g.vertices() {
            let nbrs = g.neighbors(u).to_vec();
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "vertex {u}: {nbrs:?}");
            assert!(!nbrs.contains(&u));
            for &v in &nbrs {
                assert!(g.neighbors(v).contains(u), "asymmetric edge ({u},{v})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn gnp_counter_rejects_bad_p() {
        gnp_counter(10, -0.1, 0);
    }

    #[test]
    fn gnp_counter_subnormal_p_yields_the_empty_graph() {
        // p < ~1e-16 makes (1 - p).ln() == 0.0; the generator must not
        // divide by zero (garbage edges) and the distribution rounds to the
        // edgeless graph.
        let g = gnp_counter(1000, 1e-18, 5);
        assert_eq!(g.n(), 1000);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn disjoint_cliques_structure() {
        let g = disjoint_cliques(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 4 * 3);
        let cc = crate::components::connected_components(&g);
        assert_eq!(cc.count(), 4);
        assert!(cc.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn path_cycle_star_shapes() {
        let p = path(5);
        assert_eq!(p.m(), 4);
        assert_eq!(p.max_degree(), 2);
        let c = cycle(5);
        assert_eq!(c.m(), 5);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
        let s = star(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.m(), 5);
        assert_eq!(cycle(0).n(), 0);
        assert_eq!(path(1).m(), 0);
        assert_eq!(star(1).m(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn random_tree_is_a_tree() {
        for seed in 0..10u64 {
            let g = random_tree(50, &mut rng(seed));
            assert_eq!(g.m(), 49);
            assert!(is_connected(&g));
        }
        assert_eq!(random_tree(0, &mut rng(0)).n(), 0);
        assert_eq!(random_tree(1, &mut rng(0)).m(), 0);
    }

    #[test]
    fn binary_tree_is_a_tree() {
        let g = binary_tree(15);
        assert_eq!(g.m(), 14);
        assert!(is_connected(&g));
        assert_eq!(g.degree(0), 2);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn forest_union_bounds_arboricity() {
        let g = forest_union(60, 3, &mut rng(3));
        assert!(g.m() <= 3 * 59);
        // Degeneracy is an upper bound on arboricity up to a factor 2; here we
        // use it as a sanity check that the graph is sparse everywhere.
        assert!(properties::degeneracy(&g) <= 6);
    }

    #[test]
    fn regular_graph_degrees() {
        let g = regular(30, 4, &mut rng(5)).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 30 * 4 / 2);
        // Invalid parameter combinations.
        assert!(regular(5, 5, &mut rng(0)).is_err());
        assert!(regular(5, 3, &mut rng(0)).is_err());
        assert_eq!(regular(6, 0, &mut rng(0)).unwrap().m(), 0);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn bipartite_has_no_intra_side_edges() {
        let g = bipartite(10, 15, 0.3, &mut rng(9));
        for (u, v) in g.edges() {
            assert!((u < 10) != (v < 10), "edge ({u},{v}) stays within a side");
        }
    }

    #[test]
    fn random_geometric_respects_radius() {
        let (g, pos) = random_geometric(80, 0.2, &mut rng(11));
        assert_eq!(g.n(), 80);
        assert_eq!(pos.len(), 80);
        for (u, v) in g.edges() {
            let dx = pos[u].0 - pos[v].0;
            let dy = pos[u].1 - pos[v].1;
            assert!((dx * dx + dy * dy).sqrt() <= 0.2 + 1e-12);
        }
        // Radius 0 produces the edgeless graph; radius sqrt(2) the complete graph.
        assert_eq!(random_geometric(20, 0.0, &mut rng(12)).0.m(), 0);
        assert_eq!(random_geometric(20, 1.5, &mut rng(13)).0.m(), 190);
    }

    #[test]
    fn barabasi_albert_degree_structure() {
        let g = barabasi_albert(200, 3, &mut rng(14));
        assert_eq!(g.n(), 200);
        // Every non-seed vertex attaches with at least `attach` edges (some
        // may coincide with earlier edges), so the graph is connected and has
        // at least (n - attach) * 1 edges and at most attach * n edges.
        assert!(is_connected(&g));
        assert!(g.m() >= 200 - 3);
        assert!(g.m() <= 3 * 200);
        // Preferential attachment produces a hub: the max degree should be
        // noticeably above the attachment parameter.
        assert!(g.max_degree() >= 10, "max degree {}", g.max_degree());
        // Degenerate and invalid parameters.
        assert_eq!(barabasi_albert(0, 2, &mut rng(15)).n(), 0);
        assert_eq!(barabasi_albert(5, 1, &mut rng(16)).m(), 4);
    }

    #[test]
    #[should_panic(expected = "must be smaller than n")]
    fn barabasi_albert_rejects_large_attach() {
        barabasi_albert(3, 3, &mut rng(17));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 2);
        assert_eq!(g.n(), 12);
        assert!(is_connected(&g));
        // Two K_5s contribute 2 * 10 edges, bridge path contributes 3.
        assert_eq!(g.m(), 23);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// G(n,p) never produces self-loops or duplicate edges and respects n.
        #[test]
        fn gnp_is_simple(seed in 0u64..1000, n in 0usize..120, p in 0.0f64..1.0) {
            let g = gnp(n, p, &mut rng(seed));
            prop_assert_eq!(g.n(), n);
            prop_assert!(g.m() <= n.saturating_mul(n.saturating_sub(1)) / 2);
            for u in g.vertices() {
                prop_assert!(!g.neighbors(u).contains(u));
            }
        }

        /// Random trees are connected and acyclic (n - 1 edges).
        #[test]
        fn random_tree_invariants(seed in 0u64..1000, n in 2usize..100) {
            let g = random_tree(n, &mut rng(seed));
            prop_assert_eq!(g.m(), n - 1);
            prop_assert!(is_connected(&g));
        }

        /// Regular graphs have every degree exactly d.
        #[test]
        fn regular_invariants(seed in 0u64..200, n in 4usize..40, d in 1usize..4) {
            prop_assume!(n * d % 2 == 0 && d < n);
            let g = regular(n, d, &mut rng(seed)).unwrap();
            prop_assert!(g.vertices().all(|v| g.degree(v) == d));
        }
    }
}
