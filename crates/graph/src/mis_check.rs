//! Validation of (maximal) independent sets.
//!
//! Every experiment in the workspace verifies its output with these
//! functions: after a process reports stabilization, the set of black
//! vertices must be an MIS of the input graph (independence + maximality).

use crate::{Graph, VertexId, VertexSet};

/// A witness explaining why a vertex set is *not* a maximal independent set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisViolation {
    /// Two adjacent vertices are both in the set.
    IndependenceViolated {
        /// First endpoint (in the set).
        u: VertexId,
        /// Second endpoint (in the set, adjacent to `u`).
        v: VertexId,
    },
    /// A vertex outside the set has no neighbor in the set, so it could be
    /// added without breaking independence.
    MaximalityViolated {
        /// The vertex that could be added.
        vertex: VertexId,
    },
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::IndependenceViolated { u, v } => {
                write!(
                    f,
                    "independence violated: adjacent vertices {u} and {v} are both in the set"
                )
            }
            MisViolation::MaximalityViolated { vertex } => {
                write!(
                    f,
                    "maximality violated: vertex {vertex} has no neighbor in the set"
                )
            }
        }
    }
}

/// Returns `true` if no two vertices of `s` are adjacent in `g`.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_independent(g: &Graph, s: &VertexSet) -> bool {
    check_independent(g, s).is_none()
}

/// Returns `true` if every vertex outside `s` has a neighbor in `s`.
///
/// Note this is *dominance of the complement*, the maximality condition for
/// independent sets; it does not by itself imply independence.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_maximal(g: &Graph, s: &VertexSet) -> bool {
    check_maximal(g, s).is_none()
}

/// Returns `true` if `s` is a maximal independent set of `g`.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_mis(g: &Graph, s: &VertexSet) -> bool {
    check_mis(g, s).is_none()
}

/// Returns the first independence violation found, if any.
pub fn check_independent(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    assert_eq!(
        s.universe(),
        g.n(),
        "vertex set universe must match the graph"
    );
    for u in s.iter() {
        for v in g.neighbors(u) {
            if v > u && s.contains(v) {
                return Some(MisViolation::IndependenceViolated { u, v });
            }
        }
    }
    None
}

/// Returns the first maximality violation found, if any.
pub fn check_maximal(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    assert_eq!(
        s.universe(),
        g.n(),
        "vertex set universe must match the graph"
    );
    for u in g.vertices() {
        if !s.contains(u) && !g.neighbors(u).iter().any(|v| s.contains(v)) {
            return Some(MisViolation::MaximalityViolated { vertex: u });
        }
    }
    None
}

/// Returns the first MIS violation found (independence checked first), if any.
pub fn check_mis(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    check_independent(g, s).or_else(|| check_maximal(g, s))
}

/// Greedily extends an independent set `s` to a maximal one by scanning
/// vertices in increasing id order. The input must be independent.
///
/// # Panics
///
/// Panics if `s` is not independent or its universe does not match `g`.
pub fn greedy_completion(g: &Graph, s: &VertexSet) -> VertexSet {
    assert!(is_independent(g, s), "input set must be independent");
    let mut result = s.clone();
    for u in g.vertices() {
        if !result.contains(u) && !g.neighbors(u).iter().any(|v| result.contains(v)) {
            result.insert(u);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build()
    }

    #[test]
    fn mis_of_a_cycle() {
        let g = cycle(6);
        let good = VertexSet::from_indices(6, [0, 2, 4]);
        assert!(is_mis(&g, &good));

        let not_independent = VertexSet::from_indices(6, [0, 1, 3]);
        assert!(!is_independent(&g, &not_independent));
        assert!(matches!(
            check_mis(&g, &not_independent),
            Some(MisViolation::IndependenceViolated { .. })
        ));

        let not_maximal = VertexSet::from_indices(6, [0]);
        assert!(is_independent(&g, &not_maximal));
        assert!(!is_maximal(&g, &not_maximal));
        assert!(matches!(
            check_mis(&g, &not_maximal),
            Some(MisViolation::MaximalityViolated { .. })
        ));
    }

    #[test]
    fn empty_graph_cases() {
        let g = Graph::empty(4);
        // In an edgeless graph the only MIS is all vertices.
        assert!(is_mis(&g, &VertexSet::full(4)));
        assert!(!is_mis(&g, &VertexSet::from_indices(4, [0, 1, 2])));
        // Zero-vertex graph: the empty set is an MIS.
        let g0 = Graph::empty(0);
        assert!(is_mis(&g0, &VertexSet::new(0)));
    }

    #[test]
    fn greedy_completion_produces_mis() {
        let g = cycle(7);
        let partial = VertexSet::from_indices(7, [1]);
        let full = greedy_completion(&g, &partial);
        assert!(full.contains(1));
        assert!(is_mis(&g, &full));
    }

    #[test]
    #[should_panic(expected = "must be independent")]
    fn greedy_completion_rejects_dependent_input() {
        let g = cycle(4);
        greedy_completion(&g, &VertexSet::from_indices(4, [0, 1]));
    }

    #[test]
    fn violation_display() {
        let v = MisViolation::IndependenceViolated { u: 1, v: 2 };
        assert!(v.to_string().contains("1"));
        let v = MisViolation::MaximalityViolated { vertex: 5 };
        assert!(v.to_string().contains("5"));
    }

    proptest! {
        /// Greedy completion of the empty set is always an MIS, on random graphs.
        #[test]
        fn greedy_completion_is_mis_on_random_graphs(seed in 0u64..500, n in 1usize..40, p in 0.0f64..1.0) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = crate::generators::gnp(n, p, &mut rng);
            let mis = greedy_completion(&g, &VertexSet::new(n));
            prop_assert!(is_mis(&g, &mis));
        }
    }
}
