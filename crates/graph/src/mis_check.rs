//! Validation of (maximal) independent sets.
//!
//! Every experiment in the workspace verifies its output with these
//! functions: after a process reports stabilization, the set of black
//! vertices must be an MIS of the input graph (independence + maximality).

use crate::traversal::{multi_source_bfs_distances, UNREACHABLE};
use crate::{Graph, VertexId, VertexSet};

/// A witness explaining why a vertex set is *not* a maximal independent set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MisViolation {
    /// Two adjacent vertices are both in the set.
    IndependenceViolated {
        /// First endpoint (in the set).
        u: VertexId,
        /// Second endpoint (in the set, adjacent to `u`).
        v: VertexId,
    },
    /// A vertex outside the set has no neighbor in the set, so it could be
    /// added without breaking independence.
    MaximalityViolated {
        /// The vertex that could be added.
        vertex: VertexId,
    },
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::IndependenceViolated { u, v } => {
                write!(
                    f,
                    "independence violated: adjacent vertices {u} and {v} are both in the set"
                )
            }
            MisViolation::MaximalityViolated { vertex } => {
                write!(
                    f,
                    "maximality violated: vertex {vertex} has no neighbor in the set"
                )
            }
        }
    }
}

/// Returns `true` if no two vertices of `s` are adjacent in `g`.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_independent(g: &Graph, s: &VertexSet) -> bool {
    check_independent(g, s).is_none()
}

/// Returns `true` if every vertex outside `s` has a neighbor in `s`.
///
/// Note this is *dominance of the complement*, the maximality condition for
/// independent sets; it does not by itself imply independence.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_maximal(g: &Graph, s: &VertexSet) -> bool {
    check_maximal(g, s).is_none()
}

/// Returns `true` if `s` is a maximal independent set of `g`.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()`.
pub fn is_mis(g: &Graph, s: &VertexSet) -> bool {
    check_mis(g, s).is_none()
}

/// Returns the first independence violation found, if any.
pub fn check_independent(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    assert_eq!(
        s.universe(),
        g.n(),
        "vertex set universe must match the graph"
    );
    for u in s.iter() {
        for v in g.neighbors(u) {
            if v > u && s.contains(v) {
                return Some(MisViolation::IndependenceViolated { u, v });
            }
        }
    }
    None
}

/// Returns the first maximality violation found, if any.
pub fn check_maximal(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    assert_eq!(
        s.universe(),
        g.n(),
        "vertex set universe must match the graph"
    );
    for u in g.vertices() {
        if !s.contains(u) && !g.neighbors(u).iter().any(|v| s.contains(v)) {
            return Some(MisViolation::MaximalityViolated { vertex: u });
        }
    }
    None
}

/// Returns the first MIS violation found (independence checked first), if any.
pub fn check_mis(g: &Graph, s: &VertexSet) -> Option<MisViolation> {
    check_independent(g, s).or_else(|| check_maximal(g, s))
}

/// Returns `true` if `s` is a maximal independent set of `g` **outside the
/// `radius`-neighborhood of `excluded`** — the Byzantine containment
/// property of Cohen–Pirot–Pilard (their guarantee is `radius = 2`).
///
/// See [`check_mis_outside`] for the exact semantics and a violation
/// witness.
///
/// # Panics
///
/// Panics if `s.universe() != g.n()` or any excluded vertex is out of range.
pub fn is_mis_outside(g: &Graph, s: &VertexSet, excluded: &[VertexId], radius: usize) -> bool {
    check_mis_outside(g, s, excluded, radius).is_none()
}

/// Returns the first violation of the containment-aware MIS property, if
/// any.
///
/// The *exclusion zone* is the set of vertices at BFS distance at most
/// `radius` from some vertex of `excluded`. On the remainder:
///
/// * **independence** — no edge with *both* endpoints outside the zone has
///   both endpoints in `s` (edges into the zone are the adversary's
///   business and are not judged);
/// * **maximality** — every outside vertex not in `s` has some neighbor in
///   `s`. The witnessing neighbor *may* lie inside the zone: a vertex
///   dominated by a (currently black) zone vertex has no grounds to join
///   the set, exactly as in the containment analysis.
///
/// With an empty `excluded` set this is precisely [`check_mis`].
///
/// # Panics
///
/// Panics if `s.universe() != g.n()` or any excluded vertex is out of range.
pub fn check_mis_outside(
    g: &Graph,
    s: &VertexSet,
    excluded: &[VertexId],
    radius: usize,
) -> Option<MisViolation> {
    assert_eq!(
        s.universe(),
        g.n(),
        "vertex set universe must match the graph"
    );
    if excluded.is_empty() {
        return check_mis(g, s);
    }
    let dist = multi_source_bfs_distances(g, excluded.iter().copied());
    let outside = |u: VertexId| dist[u] == UNREACHABLE || dist[u] > radius;
    for u in s.iter() {
        if !outside(u) {
            continue;
        }
        for v in g.neighbors(u) {
            if v > u && outside(v) && s.contains(v) {
                return Some(MisViolation::IndependenceViolated { u, v });
            }
        }
    }
    for u in g.vertices() {
        if outside(u) && !s.contains(u) && !g.neighbors(u).iter().any(|v| s.contains(v)) {
            return Some(MisViolation::MaximalityViolated { vertex: u });
        }
    }
    None
}

/// Greedily extends an independent set `s` to a maximal one by scanning
/// vertices in increasing id order. The input must be independent.
///
/// # Panics
///
/// Panics if `s` is not independent or its universe does not match `g`.
pub fn greedy_completion(g: &Graph, s: &VertexSet) -> VertexSet {
    assert!(is_independent(g, s), "input set must be independent");
    let mut result = s.clone();
    for u in g.vertices() {
        if !result.contains(u) && !g.neighbors(u).iter().any(|v| result.contains(v)) {
            result.insert(u);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn cycle(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build()
    }

    #[test]
    fn mis_of_a_cycle() {
        let g = cycle(6);
        let good = VertexSet::from_indices(6, [0, 2, 4]);
        assert!(is_mis(&g, &good));

        let not_independent = VertexSet::from_indices(6, [0, 1, 3]);
        assert!(!is_independent(&g, &not_independent));
        assert!(matches!(
            check_mis(&g, &not_independent),
            Some(MisViolation::IndependenceViolated { .. })
        ));

        let not_maximal = VertexSet::from_indices(6, [0]);
        assert!(is_independent(&g, &not_maximal));
        assert!(!is_maximal(&g, &not_maximal));
        assert!(matches!(
            check_mis(&g, &not_maximal),
            Some(MisViolation::MaximalityViolated { .. })
        ));
    }

    #[test]
    fn empty_graph_cases() {
        let g = Graph::empty(4);
        // In an edgeless graph the only MIS is all vertices.
        assert!(is_mis(&g, &VertexSet::full(4)));
        assert!(!is_mis(&g, &VertexSet::from_indices(4, [0, 1, 2])));
        // Zero-vertex graph: the empty set is an MIS.
        let g0 = Graph::empty(0);
        assert!(is_mis(&g0, &VertexSet::new(0)));
    }

    #[test]
    fn outside_check_excludes_the_radius_ball() {
        // Path 0-1-2-3-4-5-6 with Byzantine vertex 0.
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6)]).unwrap();
        // {3, 4} violates independence, but only outside N^2({0}) = {0,1,2}.
        let bad = VertexSet::from_indices(7, [3, 4, 6]);
        assert!(!is_mis_outside(&g, &bad, &[0], 2));
        assert!(matches!(
            check_mis_outside(&g, &bad, &[0], 2),
            Some(MisViolation::IndependenceViolated { u: 3, v: 4 })
        ));
        // Widening the radius to absorb vertex 3 hides that edge but vertex
        // 6 (outside, white, black neighbor 5? no — 5 is white) fails
        // maximality... {4, 6} with radius 3: zone = {0,1,2,3}; outside
        // {4,5,6}: 4 black, 5 dominated, 6 black, independent. Valid.
        let ok = VertexSet::from_indices(7, [4, 6]);
        assert!(is_mis_outside(&g, &ok, &[0], 3));
        // But at radius 2, vertex 3 is outside, white, and its only black
        // neighbor is 4 — still dominated, so {4, 6} is valid there too.
        assert!(is_mis_outside(&g, &ok, &[0], 2));
        // An outside vertex with no black neighbor at all is a violation.
        let hole = VertexSet::from_indices(7, [4]);
        assert!(matches!(
            check_mis_outside(&g, &hole, &[0], 2),
            Some(MisViolation::MaximalityViolated { vertex: 6 })
        ));
    }

    #[test]
    fn outside_check_accepts_zone_domination() {
        // Star: center 0 Byzantine and black, leaves 1..=4 white. Leaves
        // are dominated by the zone vertex, so maximality holds outside.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = VertexSet::from_indices(5, [0]);
        assert!(is_mis_outside(&g, &s, &[0], 0));
        // Empty excluded set degrades to the plain MIS check.
        assert_eq!(is_mis_outside(&g, &s, &[], 0), is_mis(&g, &s));
        // Unreachable components are always judged.
        let g2 = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert!(
            !is_mis_outside(&g2, &VertexSet::from_indices(3, [0]), &[0], 9),
            "isolated vertex 2 must still be required in the set"
        );
        assert!(is_mis_outside(
            &g2,
            &VertexSet::from_indices(3, [2]),
            &[0],
            1
        ));
    }

    #[test]
    fn greedy_completion_produces_mis() {
        let g = cycle(7);
        let partial = VertexSet::from_indices(7, [1]);
        let full = greedy_completion(&g, &partial);
        assert!(full.contains(1));
        assert!(is_mis(&g, &full));
    }

    #[test]
    #[should_panic(expected = "must be independent")]
    fn greedy_completion_rejects_dependent_input() {
        let g = cycle(4);
        greedy_completion(&g, &VertexSet::from_indices(4, [0, 1]));
    }

    #[test]
    fn violation_display() {
        let v = MisViolation::IndependenceViolated { u: 1, v: 2 };
        assert!(v.to_string().contains("1"));
        let v = MisViolation::MaximalityViolated { vertex: 5 };
        assert!(v.to_string().contains("5"));
    }

    proptest! {
        /// Greedy completion of the empty set is always an MIS, on random graphs.
        #[test]
        fn greedy_completion_is_mis_on_random_graphs(seed in 0u64..500, n in 1usize..40, p in 0.0f64..1.0) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = crate::generators::gnp(n, p, &mut rng);
            let mis = greedy_completion(&g, &VertexSet::new(n));
            prop_assert!(is_mis(&g, &mis));
        }
    }
}
