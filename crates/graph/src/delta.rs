//! Topology mutations: batched [`GraphDelta`]s, the [`DynamicGraph`] overlay
//! on the compact CSR, and the canonical [`CommittedDelta`] summary.
//!
//! The CSR [`Graph`] is deliberately immutable — every simulator in the
//! workspace shares it by reference. Dynamic topologies are therefore
//! expressed as *mutation batches*: a [`GraphDelta`] lists edge insertions,
//! edge deletions, vertex joins, and vertex detachments; applying it stages
//! the changes in a [`DynamicGraph`] overlay (sorted per-vertex add/remove
//! sets on top of the flat CSR) and compacts the overlay back into a fresh
//! flat CSR. The net effect is returned as a [`CommittedDelta`] — a deduped,
//! canonical edge diff that incremental consumers (the `FrontierEngine`
//! counter migration in `mis_core`, churn observers in `mis_sim`) replay in
//! `O(|diff|)` instead of rebuilding from scratch.
//!
//! Two modelling decisions keep the self-stabilization semantics clean:
//!
//! * **Vertices never disappear.** A leaving vertex is *detached* (all
//!   incident edges removed) and stays behind as an isolated vertex; isolated
//!   vertices legitimately join every MIS, so `mis_check` remains meaningful
//!   on the mutated graph and per-vertex state arrays never have to shift.
//! * **Joins append.** [`Mutation::AddVertex`] assigns ids `n, n+1, …` in
//!   batch order, so existing vertex ids — and the per-vertex state the
//!   processes carry across the mutation — stay valid.
//!
//! # Example
//!
//! ```
//! use mis_graph::{Graph, GraphDelta};
//!
//! let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
//! let mut delta = GraphDelta::new();
//! delta.remove_edge(0, 1);
//! delta.add_edge(0, 2);
//! delta.add_vertex([1]);
//! let (g2, committed) = g.apply_delta(&delta).unwrap();
//! assert_eq!(g2.n(), 4);
//! assert!(g2.has_edge(0, 2) && g2.has_edge(1, 3) && !g2.has_edge(0, 1));
//! assert_eq!(committed.removed, vec![(0, 1)]);
//! assert_eq!(committed.inserted, vec![(0, 2), (1, 3)]);
//! ```

use std::collections::{BTreeMap, BTreeSet};

use crate::{Graph, GraphError, VertexId};

/// One topology mutation, applied in batch order against the staged view of
/// the graph (earlier ops in the same [`GraphDelta`] are already visible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the undirected edge `{u, v}`. A no-op if already present.
    AddEdge(VertexId, VertexId),
    /// Delete the undirected edge `{u, v}`. A no-op if absent.
    RemoveEdge(VertexId, VertexId),
    /// Append a new vertex (id = current vertex count) wired to `edges`.
    AddVertex {
        /// Neighbors of the new vertex; each must already exist.
        edges: Vec<VertexId>,
    },
    /// Remove every edge incident to `u`, leaving it isolated ("leave").
    DetachVertex(VertexId),
}

/// An ordered batch of topology [`Mutation`]s.
///
/// Deltas are plain data: build one (by hand or via a churn generator),
/// then apply it with [`Graph::apply_delta`] or hand it to an algorithm's
/// `apply_mutation`. Redundant ops (inserting a present edge, deleting an
/// absent one, detaching an isolated vertex) are silently absorbed, so
/// generators never need to pre-check the current topology.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    ops: Vec<Mutation>,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Queues an edge insertion.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.ops.push(Mutation::AddEdge(u, v));
        self
    }

    /// Queues an edge deletion.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.ops.push(Mutation::RemoveEdge(u, v));
        self
    }

    /// Queues a vertex join wired to `edges`.
    pub fn add_vertex<I: IntoIterator<Item = VertexId>>(&mut self, edges: I) -> &mut Self {
        self.ops.push(Mutation::AddVertex {
            edges: edges.into_iter().collect(),
        });
        self
    }

    /// Queues a vertex detachment (all incident edges removed).
    pub fn detach_vertex(&mut self, u: VertexId) -> &mut Self {
        self.ops.push(Mutation::DetachVertex(u));
        self
    }

    /// The queued mutations, in application order.
    pub fn ops(&self) -> &[Mutation] {
        &self.ops
    }

    /// Number of queued mutations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no mutation is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The net, canonical effect of applying a [`GraphDelta`]: what actually
/// changed between the old and the new graph.
///
/// Edge lists hold each undirected edge once as `(u, v)` with `u < v`, in
/// lexicographic order, with insert/remove cancellations already resolved
/// (an edge removed and re-added within one batch appears in neither list).
/// Incremental consumers replay exactly these lists — `O(|diff|)` work — and
/// are guaranteed to land on the same state as a from-scratch rebuild.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommittedDelta {
    /// Vertex count before the batch.
    pub old_n: usize,
    /// Vertex count after the batch (`>= old_n`; vertices never disappear).
    pub new_n: usize,
    /// Edges present after but not before, `(u, v)` with `u < v`, sorted.
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Edges present before but not after, `(u, v)` with `u < v`, sorted.
    pub removed: Vec<(VertexId, VertexId)>,
}

impl CommittedDelta {
    /// `true` if the batch had no net effect on the topology.
    pub fn is_empty(&self) -> bool {
        self.old_n == self.new_n && self.inserted.is_empty() && self.removed.is_empty()
    }

    /// Number of net edge changes (insertions plus removals).
    pub fn edge_changes(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// Number of vertices joined by the batch.
    pub fn vertices_added(&self) -> usize {
        self.new_n - self.old_n
    }
}

/// A mutable overlay over an immutable CSR [`Graph`]: staged edge add/remove
/// sets plus appended vertices, with `O(n + m + |overlay|)` compaction back
/// into a flat CSR.
///
/// The overlay maintains one invariant that makes the committed diff fall
/// out for free: `added` holds only edges *absent* from the base and
/// `removed` holds only edges *present* in the base. Re-adding a removed
/// base edge clears its removal mark (instead of duplicating it in `added`),
/// and deleting a staged insertion erases it. Both maps are `BTree`-ordered,
/// so compaction and [`committed`](Self::committed) are deterministic.
///
/// Queries ([`has_edge`](Self::has_edge), [`degree`](Self::degree)) answer
/// against the *staged* view. For bulk iteration, [`compact`](Self::compact)
/// into a flat [`Graph`] — the simulators only ever run on flat CSR, the
/// overlay exists to batch mutations between compactions.
#[derive(Debug, Clone)]
pub struct DynamicGraph<'a> {
    base: &'a Graph,
    /// Vertices appended past `base.n()`.
    extra_n: usize,
    /// Staged insertions: symmetric, only non-base edges.
    added: BTreeMap<VertexId, BTreeSet<VertexId>>,
    /// Staged deletions: symmetric, only base edges.
    removed: BTreeMap<VertexId, BTreeSet<VertexId>>,
    /// Edge count of the staged view.
    m: usize,
}

impl<'a> DynamicGraph<'a> {
    /// A fresh overlay with no staged changes.
    pub fn new(base: &'a Graph) -> Self {
        DynamicGraph {
            base,
            extra_n: 0,
            added: BTreeMap::new(),
            removed: BTreeMap::new(),
            m: base.m(),
        }
    }

    /// Vertex count of the staged view.
    pub fn n(&self) -> usize {
        self.base.n() + self.extra_n
    }

    /// Edge count of the staged view.
    pub fn m(&self) -> usize {
        self.m
    }

    /// `true` if `{u, v}` is an edge of the staged view.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        assert!(u < self.n(), "vertex {u} out of range");
        assert!(v < self.n(), "vertex {v} out of range");
        if self.added.get(&u).is_some_and(|s| s.contains(&v)) {
            return true;
        }
        if self.removed.get(&u).is_some_and(|s| s.contains(&v)) {
            return false;
        }
        u < self.base.n() && v < self.base.n() && self.base.has_edge(u, v)
    }

    /// Degree of `u` in the staged view.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: VertexId) -> usize {
        assert!(u < self.n(), "vertex {u} out of range");
        let base = if u < self.base.n() {
            self.base.degree(u) - self.removed.get(&u).map_or(0, BTreeSet::len)
        } else {
            0
        };
        base + self.added.get(&u).map_or(0, BTreeSet::len)
    }

    /// The sorted neighbor list of `u` in the staged view, materialized:
    /// the base list (minus removals) merged with the staged insertions.
    pub fn neighbors_vec(&self, u: VertexId) -> Vec<VertexId> {
        assert!(u < self.n(), "vertex {u} out of range");
        let empty = BTreeSet::new();
        let removed = self.removed.get(&u).unwrap_or(&empty);
        let added = self.added.get(&u).unwrap_or(&empty);
        let mut out = Vec::with_capacity(self.degree(u));
        let mut add_iter = added.iter().copied().peekable();
        if u < self.base.n() {
            for v in self.base.neighbors(u) {
                if removed.contains(&v) {
                    continue;
                }
                while add_iter.peek().is_some_and(|&a| a < v) {
                    out.push(add_iter.next().unwrap());
                }
                out.push(v);
            }
        }
        out.extend(add_iter);
        out
    }

    /// Removes the symmetric mark `{u, v}` from an overlay map, dropping
    /// per-vertex sets that become empty.
    fn unmark(map: &mut BTreeMap<VertexId, BTreeSet<VertexId>>, u: VertexId, v: VertexId) {
        for (a, b) in [(u, v), (v, u)] {
            if let Some(set) = map.get_mut(&a) {
                set.remove(&b);
                if set.is_empty() {
                    map.remove(&a);
                }
            }
        }
    }

    fn validate(&self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        let n = self.n();
        if u >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        Ok(())
    }

    /// Stages the insertion of `{u, v}`; returns `true` if the edge was
    /// actually absent.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.validate(u, v)?;
        if self.has_edge(u, v) {
            return Ok(false);
        }
        let is_base_edge = u < self.base.n() && v < self.base.n() && self.base.has_edge(u, v);
        if is_base_edge {
            // Absent but in the base ⇒ it carries a removal mark; clear it.
            Self::unmark(&mut self.removed, u, v);
        } else {
            self.added.entry(u).or_default().insert(v);
            self.added.entry(v).or_default().insert(u);
        }
        self.m += 1;
        Ok(true)
    }

    /// Stages the deletion of `{u, v}`; returns `true` if the edge was
    /// actually present.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] / [`GraphError::SelfLoop`].
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<bool, GraphError> {
        self.validate(u, v)?;
        if !self.has_edge(u, v) {
            return Ok(false);
        }
        if self.added.get(&u).is_some_and(|s| s.contains(&v)) {
            // A staged insertion: erase it rather than marking a removal.
            Self::unmark(&mut self.added, u, v);
        } else {
            self.removed.entry(u).or_default().insert(v);
            self.removed.entry(v).or_default().insert(u);
        }
        self.m -= 1;
        Ok(true)
    }

    /// Appends a new vertex wired to `edges` and returns its id.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if a listed neighbor does not exist
    /// yet, [`GraphError::SelfLoop`] if the new vertex lists itself. On
    /// error the overlay is left unchanged.
    pub fn add_vertex(&mut self, edges: &[VertexId]) -> Result<VertexId, GraphError> {
        let id = self.n();
        for &v in edges {
            if v >= id {
                return Err(if v == id {
                    GraphError::SelfLoop { vertex: id }
                } else {
                    GraphError::VertexOutOfRange { vertex: v, n: id }
                });
            }
        }
        self.extra_n += 1;
        for &v in edges {
            // Cannot fail: both endpoints are in range and distinct.
            self.add_edge(id, v).expect("validated above");
        }
        Ok(id)
    }

    /// Removes every edge incident to `u`, leaving it isolated.
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if `u` does not exist.
    pub fn detach_vertex(&mut self, u: VertexId) -> Result<(), GraphError> {
        if u >= self.n() {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n(),
            });
        }
        for v in self.neighbors_vec(u) {
            self.remove_edge(u, v).expect("neighbor list is current");
        }
        Ok(())
    }

    /// Applies one [`Mutation`] against the staged view.
    ///
    /// # Errors
    ///
    /// Propagates the validation error of the underlying operation.
    pub fn apply(&mut self, op: &Mutation) -> Result<(), GraphError> {
        match op {
            Mutation::AddEdge(u, v) => self.add_edge(*u, *v).map(|_| ()),
            Mutation::RemoveEdge(u, v) => self.remove_edge(*u, *v).map(|_| ()),
            Mutation::AddVertex { edges } => self.add_vertex(edges).map(|_| ()),
            Mutation::DetachVertex(u) => self.detach_vertex(*u),
        }
    }

    /// Number of staged per-vertex overlay entries — a cheap proxy for when
    /// periodic compaction is due.
    pub fn overlay_size(&self) -> usize {
        let adds: usize = self.added.values().map(BTreeSet::len).sum();
        let removes: usize = self.removed.values().map(BTreeSet::len).sum();
        adds + removes + self.extra_n
    }

    /// The net effect staged so far, as a canonical [`CommittedDelta`].
    pub fn committed(&self) -> CommittedDelta {
        let flatten = |map: &BTreeMap<VertexId, BTreeSet<VertexId>>| {
            let mut out = Vec::new();
            for (&u, set) in map {
                for &v in set {
                    if u < v {
                        out.push((u, v));
                    }
                }
            }
            out.sort_unstable();
            out
        };
        CommittedDelta {
            old_n: self.base.n(),
            new_n: self.n(),
            inserted: flatten(&self.added),
            removed: flatten(&self.removed),
        }
    }

    /// Compacts the staged view back into a flat CSR [`Graph`] in
    /// `O(n + m + |overlay| log |overlay|)`.
    pub fn compact(&self) -> Graph {
        let n = self.n();
        let empty = BTreeSet::new();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency = Vec::with_capacity(2 * self.m);
        offsets.push(0);
        for u in 0..n {
            let removed = self.removed.get(&u).unwrap_or(&empty);
            let added = self.added.get(&u).unwrap_or(&empty);
            let mut add_iter = added.iter().copied().peekable();
            if u < self.base.n() {
                for v in self.base.neighbors(u) {
                    if removed.contains(&v) {
                        continue;
                    }
                    while add_iter.peek().is_some_and(|&a| a < v) {
                        adjacency.push(add_iter.next().unwrap());
                    }
                    adjacency.push(v);
                }
            }
            adjacency.extend(add_iter);
            offsets.push(adjacency.len());
        }
        Graph::from_sorted_adjacency(offsets, adjacency, self.m)
    }
}

impl Graph {
    /// Applies a mutation batch, returning the new flat CSR graph and the
    /// canonical net diff.
    ///
    /// Ops are validated and applied in order against the staged view;
    /// redundant ops are no-ops. On error nothing is returned — the original
    /// graph is untouched either way (it is immutable).
    ///
    /// # Errors
    ///
    /// The first validation failure ([`GraphError::VertexOutOfRange`] or
    /// [`GraphError::SelfLoop`]) of any op in the batch.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<(Graph, CommittedDelta), GraphError> {
        let mut dyn_graph = DynamicGraph::new(self);
        for op in delta.ops() {
            dyn_graph.apply(op)?;
        }
        Ok((dyn_graph.compact(), dyn_graph.committed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = path4();
        let (g2, c) = g.apply_delta(&GraphDelta::new()).unwrap();
        assert_eq!(g, g2);
        assert!(c.is_empty());
        assert_eq!(c.edge_changes(), 0);
        assert_eq!(c.vertices_added(), 0);
    }

    #[test]
    fn add_and_remove_edges() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_edge(0, 3).remove_edge(1, 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert!(g2.has_edge(0, 3) && !g2.has_edge(1, 2));
        assert_eq!(g2.m(), 3);
        assert_eq!(c.inserted, vec![(0, 3)]);
        assert_eq!(c.removed, vec![(1, 2)]);
        // Neighbor lists stay sorted after compaction.
        for u in g2.vertices() {
            let nbrs = g2.neighbors(u).to_vec();
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            assert_eq!(nbrs, sorted);
        }
    }

    #[test]
    fn redundant_ops_are_absorbed() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_edge(0, 1) // already present
            .remove_edge(0, 2) // already absent
            .detach_vertex(3)
            .detach_vertex(3); // second detach is a no-op
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.m(), 2);
        assert!(c.inserted.is_empty());
        assert_eq!(c.removed, vec![(2, 3)]);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_edge(0, 3).remove_edge(0, 3);
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g, g2);
        assert!(c.is_empty());
    }

    #[test]
    fn delete_then_reinsert_cancels() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.remove_edge(1, 2).add_edge(1, 2);
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g, g2);
        assert!(c.is_empty());
    }

    #[test]
    fn vertex_join_gets_fresh_ids_in_batch_order() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_vertex([0, 2]); // id 4
        d.add_vertex([4]); // id 5, wired to the vertex joined above
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.n(), 6);
        assert!(g2.has_edge(4, 0) && g2.has_edge(4, 2) && g2.has_edge(4, 5));
        assert_eq!(c.old_n, 4);
        assert_eq!(c.new_n, 6);
        assert_eq!(c.vertices_added(), 2);
        assert_eq!(c.inserted, vec![(0, 4), (2, 4), (4, 5)]);
    }

    #[test]
    fn detach_leaves_isolated_tombstone() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.detach_vertex(1);
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.n(), 4, "vertices never disappear");
        assert_eq!(g2.degree(1), 0);
        assert_eq!(g2.m(), 1);
        assert_eq!(c.removed, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn detach_newly_joined_vertex() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_vertex([0, 1, 2]);
        d.detach_vertex(4);
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.degree(4), 0);
        assert_eq!(c.inserted, vec![]);
        assert_eq!(c.removed, vec![]);
        assert_eq!(c.vertices_added(), 1);
    }

    #[test]
    fn validation_errors() {
        let g = path4();
        let mut d = GraphDelta::new();
        d.add_edge(0, 9);
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 9, n: 4 }
        );
        let mut d = GraphDelta::new();
        d.add_edge(2, 2);
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::SelfLoop { vertex: 2 }
        );
        let mut d = GraphDelta::new();
        d.detach_vertex(7);
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 7, n: 4 }
        );
        let mut d = GraphDelta::new();
        d.add_vertex([4]); // the new vertex's own id ⇒ self-loop
        assert_eq!(
            g.apply_delta(&d).unwrap_err(),
            GraphError::SelfLoop { vertex: 4 }
        );
    }

    #[test]
    fn overlay_queries_match_staged_view() {
        let g = path4();
        let mut dg = DynamicGraph::new(&g);
        assert_eq!(dg.n(), 4);
        assert_eq!(dg.m(), 3);
        assert!(dg.add_edge(0, 2).unwrap());
        assert!(!dg.add_edge(0, 2).unwrap(), "second insert is a no-op");
        assert!(dg.remove_edge(2, 3).unwrap());
        assert!(!dg.remove_edge(2, 3).unwrap(), "second delete is a no-op");
        assert_eq!(dg.m(), 3);
        assert!(dg.has_edge(0, 2) && dg.has_edge(2, 0));
        assert!(!dg.has_edge(2, 3));
        assert_eq!(dg.degree(2), 2);
        assert_eq!(dg.neighbors_vec(2), vec![0, 1]);
        assert!(dg.overlay_size() > 0);
        let flat = dg.compact();
        assert_eq!(flat.neighbors(2).to_vec(), vec![0, 1]);
        assert_eq!(flat.m(), 3);
    }

    #[test]
    fn compaction_matches_from_edges_rebuild() {
        // Staged view == rebuilding the edge set from scratch, on a batch
        // mixing every op kind.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]).unwrap();
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1)
            .add_edge(1, 4)
            .detach_vertex(3)
            .add_vertex([0, 2])
            .add_edge(2, 5)
            .remove_edge(4, 5);
        let (g2, c) = g.apply_delta(&d).unwrap();
        let mut edges: std::collections::BTreeSet<(usize, usize)> = g.edges().collect();
        for &(u, v) in &c.removed {
            assert!(edges.remove(&(u, v)), "removed edge {u},{v} was present");
        }
        for &(u, v) in &c.inserted {
            assert!(edges.insert((u, v)), "inserted edge {u},{v} was absent");
        }
        let rebuilt = Graph::from_edges(c.new_n, edges.iter().copied()).unwrap();
        assert_eq!(g2, rebuilt);
        assert_eq!(g2.m(), rebuilt.m());
    }
}
