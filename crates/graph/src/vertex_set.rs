use serde::{Deserialize, Serialize};

use crate::VertexId;

/// A dense set of vertices of an `n`-vertex graph, backed by a `u64` bitset.
///
/// The MIS processes of the paper manipulate several evolving vertex sets per
/// round (black vertices `B_t`, active vertices `A_t`, stable black vertices
/// `I_t`, non-stable vertices `V_t`); `VertexSet` makes membership queries and
/// bulk statistics cheap and allocation-free once constructed.
///
/// # Example
///
/// ```
/// use mis_graph::VertexSet;
///
/// let mut s = VertexSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VertexSet {
    n: usize,
    words: Vec<u64>,
    len: usize,
}

impl VertexSet {
    /// Creates an empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        VertexSet {
            n,
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Creates a full set containing every vertex in `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = VertexSet::new(n);
        for u in 0..n {
            s.insert(u);
        }
        s
    }

    /// Creates a set over `0..n` from an iterator of vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= n`.
    pub fn from_indices<I: IntoIterator<Item = VertexId>>(n: usize, ids: I) -> Self {
        let mut s = VertexSet::new(n);
        for u in ids {
            s.insert(u);
        }
        s
    }

    /// Creates a set over `0..flags.len()` containing vertices whose flag is `true`.
    pub fn from_flags(flags: &[bool]) -> Self {
        let mut s = VertexSet::new(flags.len());
        for (u, &f) in flags.iter().enumerate() {
            if f {
                s.insert(u);
            }
        }
        s
    }

    /// Size of the universe (number of vertices of the underlying graph).
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of vertices currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set contains no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `u` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.universe()`.
    #[inline]
    pub fn contains(&self, u: VertexId) -> bool {
        assert!(u < self.n, "vertex {u} out of range");
        self.words[u / 64] >> (u % 64) & 1 == 1
    }

    /// Inserts `u`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.universe()`.
    pub fn insert(&mut self, u: VertexId) -> bool {
        assert!(u < self.n, "vertex {u} out of range");
        let (w, b) = (u / 64, u % 64);
        let was = self.words[w] >> b & 1 == 1;
        if !was {
            self.words[w] |= 1 << b;
            self.len += 1;
        }
        !was
    }

    /// Removes `u`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `u >= self.universe()`.
    pub fn remove(&mut self, u: VertexId) -> bool {
        assert!(u < self.n, "vertex {u} out of range");
        let (w, b) = (u / 64, u % 64);
        let was = self.words[w] >> b & 1 == 1;
        if was {
            self.words[w] &= !(1 << b);
            self.len -= 1;
        }
        was
    }

    /// Removes all vertices from the set.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterator over the vertices in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Collects the set into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }

    /// Returns `true` if `self` and `other` have no vertex in common.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn is_disjoint(&self, other: &VertexSet) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every vertex of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn is_subset(&self, other: &VertexSet) -> bool {
        assert_eq!(self.n, other.n, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn union_with(&mut self, other: &VertexSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn intersect_with(&mut self, other: &VertexSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets have different universes.
    pub fn difference_with(&mut self, other: &VertexSet) {
        assert_eq!(self.n, other.n, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }
}

impl FromIterator<VertexId> for VertexSet {
    /// Collects vertex ids into a set whose universe is `max(id) + 1`
    /// (or `0` for an empty iterator). Prefer [`VertexSet::from_indices`]
    /// when the universe size is known.
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        let ids: Vec<VertexId> = iter.into_iter().collect();
        let n = ids.iter().max().map_or(0, |&m| m + 1);
        VertexSet::from_indices(n, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = VertexSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(!s.contains(63));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_and_clear() {
        let mut s = VertexSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_sorted() {
        let s = VertexSet::from_indices(200, [5, 199, 64, 0, 63]);
        assert_eq!(s.to_vec(), vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = VertexSet::from_indices(10, [1, 2, 3]);
        let b = VertexSet::from_indices(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 2]);
        assert!(i.is_subset(&a));
        assert!(!a.is_disjoint(&b));
        assert!(d.is_disjoint(&b));
    }

    #[test]
    fn from_flags_and_from_iter() {
        let s = VertexSet::from_flags(&[true, false, true]);
        assert_eq!(s.to_vec(), vec![0, 2]);
        let s: VertexSet = [2usize, 5, 5].into_iter().collect();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.to_vec(), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        VertexSet::new(3).contains(3);
    }

    proptest! {
        /// The bitset agrees with a reference HashSet implementation.
        #[test]
        fn matches_hash_set(ops in proptest::collection::vec((0usize..300, any::<bool>()), 0..500)) {
            let mut s = VertexSet::new(300);
            let mut reference = std::collections::HashSet::new();
            for (u, insert) in ops {
                if insert {
                    prop_assert_eq!(s.insert(u), reference.insert(u));
                } else {
                    prop_assert_eq!(s.remove(u), reference.remove(&u));
                }
            }
            prop_assert_eq!(s.len(), reference.len());
            let mut expected: Vec<_> = reference.into_iter().collect();
            expected.sort_unstable();
            prop_assert_eq!(s.to_vec(), expected);
        }
    }
}
