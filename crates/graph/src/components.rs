//! Connected-component analysis.
//!
//! Used by experiments that must reason per component (e.g. the disjoint-
//! cliques family of Remark 9) and by generators that need to certify
//! connectivity of their output.

use crate::union_find::UnionFind;
use crate::{Graph, VertexId};

/// The partition of a graph's vertices into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `component_of[v]` is the index (0-based, in order of discovery by
    /// smallest contained vertex) of the component containing `v`.
    component_of: Vec<usize>,
    /// The vertex lists of each component, each sorted increasingly.
    members: Vec<Vec<VertexId>>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Index of the component containing `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn component_of(&self, v: VertexId) -> usize {
        self.component_of[v]
    }

    /// Returns `true` if `u` and `v` lie in the same component.
    pub fn same_component(&self, u: VertexId, v: VertexId) -> bool {
        self.component_of[u] == self.component_of[v]
    }

    /// The sorted vertex list of component `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    pub fn members(&self, i: usize) -> &[VertexId] {
        &self.members[i]
    }

    /// Iterator over all components, each a sorted slice of vertices.
    pub fn iter(&self) -> impl Iterator<Item = &[VertexId]> {
        self.members.iter().map(|v| v.as_slice())
    }

    /// Size of the largest component (`0` for the empty graph).
    pub fn largest(&self) -> usize {
        self.members.iter().map(|c| c.len()).max().unwrap_or(0)
    }
}

/// Computes the connected components of `g`.
///
/// # Example
///
/// ```
/// use mis_graph::{Graph, components::connected_components};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
/// let cc = connected_components(&g);
/// assert_eq!(cc.count(), 2);
/// assert!(cc.same_component(0, 2));
/// assert!(!cc.same_component(0, 3));
/// ```
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.n());
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut root_to_index = std::collections::HashMap::new();
    let mut component_of = vec![0usize; g.n()];
    let mut members: Vec<Vec<VertexId>> = Vec::new();
    for v in g.vertices() {
        let root = uf.find(v);
        let idx = *root_to_index.entry(root).or_insert_with(|| {
            members.push(Vec::new());
            members.len() - 1
        });
        component_of[v] = idx;
        members[idx].push(v);
    }
    Components {
        component_of,
        members,
    }
}

/// Returns `true` if `g` is connected. The empty graph (0 vertices) counts as
/// connected; the edgeless graph on `n ≥ 2` vertices does not.
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).count() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let cc = connected_components(&g);
        assert_eq!(cc.count(), 3);
        assert_eq!(cc.members(cc.component_of(0)), &[0, 1, 2]);
        assert_eq!(cc.members(cc.component_of(3)), &[3, 4]);
        assert_eq!(cc.members(cc.component_of(5)), &[5]);
        assert_eq!(cc.largest(), 3);
        assert_eq!(cc.iter().count(), 3);
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_connected(&Graph::empty(0)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(!is_connected(&Graph::empty(2)));
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        assert!(is_connected(&g));
    }

    #[test]
    fn component_membership_is_a_partition() {
        let g = Graph::from_edges(8, [(0, 1), (2, 3), (3, 4), (6, 7)]).unwrap();
        let cc = connected_components(&g);
        let total: usize = cc.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.n());
        for (i, comp) in cc.iter().enumerate() {
            for &v in comp {
                assert_eq!(cc.component_of(v), i);
            }
        }
    }
}
