//! Differential test: the incremental active-frontier step path must be
//! **bit-identical** to the retained naive full-scan reference path — same
//! rounds, same per-round state vectors and black sets, same random-bit
//! counts, same per-round [`StateCounts`] — for equal seeds, across all
//! three processes and a spread of graph families and initializations.
//!
//! Together with the from-scratch recount helpers below, this pins down both
//! sides: the fast path agrees with the reference, and the reference's
//! aggregates agree with their definitions.

use mis_core::init::InitStrategy;
use mis_core::{
    Process, StateCounts, ThreeColorProcess, ThreeState, ThreeStateProcess, TwoStateProcess,
};
use mis_graph::{generators, Graph, VertexSet};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn graphs(seed: u64) -> Vec<Graph> {
    let mut r = rng(seed);
    vec![
        generators::complete(24),
        generators::path(40),
        generators::cycle(31),
        generators::star(25),
        generators::random_tree(60, &mut r),
        generators::gnp(80, 0.06, &mut r),
        generators::gnp(50, 0.4, &mut r),
        generators::disjoint_cliques(4, 6),
        generators::grid(6, 7),
        Graph::empty(12),
    ]
}

const INITS: [InitStrategy; 4] = [
    InitStrategy::AllWhite,
    InitStrategy::AllBlack,
    InitStrategy::Random,
    InitStrategy::Alternating,
];

/// Recomputes the [`StateCounts`] of a configuration from scratch, given the
/// blackness and activity predicates — independent of any engine or cached
/// bookkeeping on either process instance.
fn recount(
    g: &Graph,
    black: impl Fn(usize) -> bool,
    active: impl Fn(usize) -> bool,
) -> StateCounts {
    let stable_black = |u: usize| black(u) && g.neighbors(u).iter().all(|v| !black(v));
    let stable = |u: usize| stable_black(u) || g.neighbors(u).iter().any(&stable_black);
    let mut c = StateCounts::default();
    for u in g.vertices() {
        if black(u) {
            c.black += 1;
        } else {
            c.non_black += 1;
        }
        if active(u) {
            c.active += 1;
        }
        if stable_black(u) {
            c.stable_black += 1;
        }
        if !stable(u) {
            c.unstable += 1;
        }
    }
    c
}

fn black_set_of(g: &Graph, black: impl Fn(usize) -> bool) -> VertexSet {
    VertexSet::from_indices(g.n(), g.vertices().filter(|&u| black(u)))
}

/// Drives a (fast, reference) pair lock-step for up to `max_rounds` rounds
/// and checks the full trace, using `check` to compare and validate the pair
/// after every round. Returns the number of rounds executed.
fn drive_pair<P: Process>(
    fast: &mut P,
    reference: &mut P,
    step_reference: impl Fn(&mut P, &mut ChaCha8Rng),
    check: impl Fn(&P, &P, usize),
    r_fast: &mut ChaCha8Rng,
    r_ref: &mut ChaCha8Rng,
    max_rounds: usize,
) -> usize {
    check(fast, reference, 0);
    let mut rounds = 0;
    while !fast.is_stabilized() && rounds < max_rounds {
        fast.step(r_fast);
        step_reference(reference, r_ref);
        rounds += 1;
        check(fast, reference, rounds);
    }
    assert_eq!(
        fast.is_stabilized(),
        reference.is_stabilized(),
        "stabilization verdicts diverged after {rounds} rounds"
    );
    assert_eq!(fast.round(), reference.round());
    rounds
}

#[test]
fn two_state_trace_equality() {
    for (gi, g) in graphs(101).into_iter().enumerate() {
        for init in INITS {
            for seed in 0..3u64 {
                let mut r_init = rng(1000 + seed);
                let states = init.two_state(g.n(), &mut r_init);
                let mut fast = TwoStateProcess::new(&g, states.clone());
                let mut reference = TwoStateProcess::new(&g, states);
                let mut r_fast = rng(7 + seed);
                let mut r_ref = rng(7 + seed);
                drive_pair(
                    &mut fast,
                    &mut reference,
                    |p, r| p.step_reference(r),
                    |f, n, round| {
                        let ctx = format!("graph {gi}, {init:?}, seed {seed}, round {round}");
                        assert_eq!(f.states(), n.states(), "states diverged: {ctx}");
                        assert_eq!(f.black_set(), n.black_set(), "black sets diverged: {ctx}");
                        assert_eq!(
                            f.random_bits_used(),
                            n.random_bits_used(),
                            "random-bit counts diverged: {ctx}"
                        );
                        assert_eq!(f.counts(), n.counts(), "counts diverged: {ctx}");
                        let expected = recount(
                            &g,
                            |u| n.states()[u].is_black(),
                            |u| {
                                let bn = g
                                    .neighbors(u)
                                    .iter()
                                    .filter(|&v| n.states()[v].is_black())
                                    .count();
                                if n.states()[u].is_black() {
                                    bn > 0
                                } else {
                                    bn == 0
                                }
                            },
                        );
                        assert_eq!(f.counts(), expected, "counts vs recount: {ctx}");
                        assert_eq!(
                            f.black_set(),
                            black_set_of(&g, |u| n.states()[u].is_black()),
                            "black set vs recount: {ctx}"
                        );
                    },
                    &mut r_fast,
                    &mut r_ref,
                    50_000,
                );
            }
        }
    }
}

#[test]
fn three_state_trace_equality() {
    for (gi, g) in graphs(103).into_iter().enumerate() {
        for init in INITS {
            for seed in 0..3u64 {
                let mut r_init = rng(2000 + seed);
                let states = init.three_state(g.n(), &mut r_init);
                let mut fast = ThreeStateProcess::new(&g, states.clone());
                let mut reference = ThreeStateProcess::new(&g, states);
                let mut r_fast = rng(11 + seed);
                let mut r_ref = rng(11 + seed);
                // The 3-state process keeps alternating after stabilization,
                // so also compare a fixed number of post-stabilization rounds.
                let mut rounds = 0usize;
                let check = |f: &ThreeStateProcess<'_>, n: &ThreeStateProcess<'_>, round: usize| {
                    let ctx = format!("graph {gi}, {init:?}, seed {seed}, round {round}");
                    assert_eq!(f.states(), n.states(), "states diverged: {ctx}");
                    assert_eq!(f.black_set(), n.black_set(), "black sets diverged: {ctx}");
                    assert_eq!(
                        f.random_bits_used(),
                        n.random_bits_used(),
                        "random-bit counts diverged: {ctx}"
                    );
                    assert_eq!(f.counts(), n.counts(), "counts diverged: {ctx}");
                    let expected = recount(
                        &g,
                        |u| n.states()[u].is_black(),
                        |u| match n.states()[u] {
                            ThreeState::Black1 => true,
                            ThreeState::Black0 => !g
                                .neighbors(u)
                                .iter()
                                .any(|v| n.states()[v] == ThreeState::Black1),
                            ThreeState::White => {
                                !g.neighbors(u).iter().any(|v| n.states()[v].is_black())
                            }
                        },
                    );
                    assert_eq!(f.counts(), expected, "counts vs recount: {ctx}");
                };
                check(&fast, &reference, 0);
                while rounds < 50_000 && (!fast.is_stabilized() || rounds < 20) {
                    fast.step(&mut r_fast);
                    reference.step_reference(&mut r_ref);
                    rounds += 1;
                    check(&fast, &reference, rounds);
                }
                assert!(fast.is_stabilized(), "graph {gi}, {init:?}, seed {seed}");
            }
        }
    }
}

#[test]
fn three_color_trace_equality() {
    for (gi, g) in graphs(107).into_iter().enumerate() {
        for init in INITS {
            for seed in 0..2u64 {
                let mut r_fast = rng(13 + seed);
                let mut r_ref = rng(13 + seed);
                let mut fast = ThreeColorProcess::with_randomized_switch(&g, init, &mut r_fast);
                let mut reference = ThreeColorProcess::with_randomized_switch(&g, init, &mut r_ref);
                drive_pair(
                    &mut fast,
                    &mut reference,
                    |p, r| p.step_reference(r),
                    |f, n, round| {
                        let ctx = format!("graph {gi}, {init:?}, seed {seed}, round {round}");
                        assert_eq!(f.colors(), n.colors(), "colors diverged: {ctx}");
                        assert_eq!(f.black_set(), n.black_set(), "black sets diverged: {ctx}");
                        assert_eq!(
                            f.random_bits_used(),
                            n.random_bits_used(),
                            "random-bit counts diverged: {ctx}"
                        );
                        assert_eq!(f.counts(), n.counts(), "counts diverged: {ctx}");
                        let expected = recount(
                            &g,
                            |u| n.colors()[u].is_black(),
                            |u| {
                                let bn = g
                                    .neighbors(u)
                                    .iter()
                                    .filter(|&v| n.colors()[v].is_black())
                                    .count();
                                match n.colors()[u] {
                                    mis_core::ThreeColor::Black => bn > 0,
                                    mis_core::ThreeColor::White => bn == 0,
                                    mis_core::ThreeColor::Gray => false,
                                }
                            },
                        );
                        assert_eq!(f.counts(), expected, "counts vs recount: {ctx}");
                    },
                    &mut r_fast,
                    &mut r_ref,
                    100_000,
                );
            }
        }
    }
}

/// Interleaving fast and reference steps on the *same* instance must also be
/// seamless: the reference path leaves the engine in a state the fast path
/// can continue from, and vice versa.
#[test]
fn fast_and_reference_steps_interleave_on_one_instance() {
    let g = generators::gnp(70, 0.08, &mut rng(211));
    let mut r_mixed = rng(223);
    let mut r_fast = rng(223);
    let mut mixed = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r_mixed);
    let mut fast = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r_fast);
    for round in 0..200 {
        if mixed.is_stabilized() {
            break;
        }
        if round % 3 == 0 {
            mixed.step_reference(&mut r_mixed);
        } else {
            mixed.step(&mut r_mixed);
        }
        fast.step(&mut r_fast);
        assert_eq!(mixed.states(), fast.states(), "round {round}");
        assert_eq!(mixed.counts(), fast.counts(), "round {round}");
    }
}
