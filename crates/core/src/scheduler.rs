//! Pluggable activation schedulers.
//!
//! The paper defines its processes for a synchronous scheduler that
//! activates *every* vertex in every round, but the underlying local rules
//! make sense under any activation model: a central daemon that wakes one
//! vertex at a time (the classical self-stabilization setting of Shukla et
//! al. / Hedetniemi et al.), or a distributed daemon that wakes a random
//! subset each round. A [`Scheduler`] decides, per round, which vertices are
//! activated; the activated vertices apply their local rule against the
//! *current* configuration, all others keep their state.
//!
//! Schedulers are deterministic functions of the RNG stream handed to
//! [`next_activation`](Scheduler::next_activation), so experiments stay
//! reproducible: the same seed yields the same activation sequence.

use mis_graph::VertexSet;
use rand::{Rng, RngCore};

/// Which vertices a scheduler activates in one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Activation {
    /// Every vertex is activated (the paper's synchronous model).
    All,
    /// Only the vertices in the set are activated; all others keep their
    /// state this round.
    Subset(VertexSet),
}

impl Activation {
    /// `true` if this activation wakes every vertex.
    pub fn is_all(&self) -> bool {
        matches!(self, Activation::All)
    }
}

/// A per-round activation policy.
///
/// Implementations may consume randomness from the shared trial RNG; the
/// synchronous scheduler consumes none, which keeps its trace bit-identical
/// to the pre-registry execution path.
pub trait Scheduler {
    /// Short label for tables and CSV output.
    fn label(&self) -> &'static str;

    /// Decides which of the `n` vertices are activated in round `round`.
    fn next_activation(&mut self, n: usize, round: usize, rng: &mut dyn RngCore) -> Activation;
}

/// The paper's synchronous scheduler: every vertex is activated every round.
/// Draws no randomness.
#[derive(Debug, Clone, Copy, Default)]
pub struct Synchronous;

impl Scheduler for Synchronous {
    fn label(&self) -> &'static str {
        "synchronous"
    }

    fn next_activation(&mut self, _n: usize, _round: usize, _rng: &mut dyn RngCore) -> Activation {
        Activation::All
    }
}

/// A randomized central daemon: exactly one uniformly random vertex is
/// activated per round (a.s. fair). One "round" of this scheduler is one
/// *move* in the central-scheduler cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralDaemon;

impl Scheduler for CentralDaemon {
    fn label(&self) -> &'static str {
        "central-daemon"
    }

    fn next_activation(&mut self, n: usize, _round: usize, rng: &mut dyn RngCore) -> Activation {
        if n == 0 {
            return Activation::All;
        }
        let u = rng.gen_range(0..n);
        Activation::Subset(VertexSet::from_indices(n, [u]))
    }
}

/// A distributed randomized daemon: every vertex is activated independently
/// with probability `p` each round.
#[derive(Debug, Clone, Copy)]
pub struct RandomSubset {
    /// Per-vertex activation probability.
    pub p: f64,
}

impl RandomSubset {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "activation probability must be in [0, 1], got {p}"
        );
        RandomSubset { p }
    }
}

impl Scheduler for RandomSubset {
    fn label(&self) -> &'static str {
        "random-subset"
    }

    fn next_activation(&mut self, n: usize, _round: usize, rng: &mut dyn RngCore) -> Activation {
        let mut set = VertexSet::new(n);
        for u in 0..n {
            if rng.gen_bool(self.p) {
                set.insert(u);
            }
        }
        Activation::Subset(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn synchronous_activates_all_without_randomness() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(1);
        let mut rng_b = ChaCha8Rng::seed_from_u64(1);
        let mut s = Synchronous;
        assert_eq!(s.next_activation(10, 0, &mut rng_a), Activation::All);
        assert!(s.next_activation(10, 1, &mut rng_a).is_all());
        // No randomness was consumed.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        assert_eq!(s.label(), "synchronous");
    }

    #[test]
    fn central_daemon_activates_one_vertex() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut s = CentralDaemon;
        for round in 0..50 {
            match s.next_activation(7, round, &mut rng) {
                Activation::Subset(set) => assert_eq!(set.len(), 1),
                Activation::All => panic!("daemon must activate a single vertex"),
            }
        }
        // Degenerate empty graph: nothing to pick.
        assert!(s.next_activation(0, 0, &mut rng).is_all());
    }

    #[test]
    fn central_daemon_is_fair() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut s = CentralDaemon;
        let n = 5;
        let mut hits = vec![0usize; n];
        for round in 0..2000 {
            if let Activation::Subset(set) = s.next_activation(n, round, &mut rng) {
                hits[set.iter().next().unwrap()] += 1;
            }
        }
        assert!(hits.iter().all(|&h| h > 200), "unfair daemon: {hits:?}");
    }

    #[test]
    fn random_subset_respects_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut none = RandomSubset::new(0.0);
        let mut all = RandomSubset::new(1.0);
        match none.next_activation(20, 0, &mut rng) {
            Activation::Subset(s) => assert_eq!(s.len(), 0),
            Activation::All => panic!(),
        }
        match all.next_activation(20, 0, &mut rng) {
            Activation::Subset(s) => assert_eq!(s.len(), 20),
            Activation::All => panic!(),
        }
    }

    #[test]
    #[should_panic(expected = "activation probability")]
    fn random_subset_rejects_bad_probability() {
        RandomSubset::new(1.5);
    }
}
