//! [`Algorithm`] adapters and factories for the paper's three processes.
//!
//! Each adapter wraps the concrete process, delegates the shared accessors
//! through [`Algorithm::process`], and adds the capabilities the direct
//! implementations have: counter-based parallel rounds, scheduled
//! (partial-activation) steps where the semantics are well defined, and
//! in-place transient-fault injection.

use mis_graph::{CommittedDelta, Graph, GraphDelta, VertexId};
use rand::RngCore;

use crate::algorithm::{
    coin, fault_victims, uniform3, Algorithm, AlgorithmConfig, AlgorithmFactory,
    CommunicationModel, Registry, StepCtx,
};
use crate::mutation::MutationError;
use crate::process::Process;
use crate::scheduler::Activation;
use crate::three_color::{ThreeColor, ThreeColorProcess};
use crate::three_state::{ThreeState, ThreeStateProcess};
use crate::two_state::{Color, TwoStateProcess};
use crate::RandomizedLogSwitch;

/// Registry key of the 2-state process.
pub const TWO_STATE_KEY: &str = "two-state";
/// Registry key of the 3-state process.
pub const THREE_STATE_KEY: &str = "three-state";
/// Registry key of the 3-color process (randomized logarithmic switch).
pub const THREE_COLOR_KEY: &str = "three-color";

/// The 2-state MIS process (Definition 4) as a pluggable [`Algorithm`].
#[derive(Debug, Clone)]
pub struct TwoStateAlgorithm<'g> {
    inner: TwoStateProcess<'g>,
}

impl<'g> TwoStateAlgorithm<'g> {
    /// Wraps an existing process instance.
    pub fn new(inner: TwoStateProcess<'g>) -> Self {
        TwoStateAlgorithm { inner }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &TwoStateProcess<'g> {
        &self.inner
    }
}

impl Algorithm for TwoStateAlgorithm<'_> {
    fn name(&self) -> &'static str {
        TWO_STATE_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        // The direct implementation reads neighbor states; the rule itself
        // is beeping-implementable (see the `beeping-two-state` entry).
        CommunicationModel::FullStateExchange
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn step(&mut self, ctx: StepCtx<'_>) {
        match ctx.activation {
            Activation::All => self.inner.step(ctx.rng),
            Activation::Subset(set) => self.inner.step_scheduled(set, ctx.rng),
        }
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for &u in victims {
            let color = if coin(rng) {
                Color::Black
            } else {
                Color::White
            };
            if self.inner.color(u) != color {
                changed += 1;
            }
            self.inner.set_color(u, color);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        let color = if black { Color::Black } else { Color::White };
        let changed = self.inner.color(u) != color;
        self.inner.set_color(u, color);
        changed
    }

    fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        self.inner.apply_mutation(delta)
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_topology_change(&self) -> bool {
        true
    }

    fn supports_parallel(&self) -> bool {
        true
    }

    fn supports_counter_rng(&self) -> bool {
        true
    }

    fn supports_partial_activation(&self) -> bool {
        true
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

/// The 3-state MIS process (Definition 5) as a pluggable [`Algorithm`].
#[derive(Debug, Clone)]
pub struct ThreeStateAlgorithm<'g> {
    inner: ThreeStateProcess<'g>,
}

impl<'g> ThreeStateAlgorithm<'g> {
    /// Wraps an existing process instance.
    pub fn new(inner: ThreeStateProcess<'g>) -> Self {
        ThreeStateAlgorithm { inner }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &ThreeStateProcess<'g> {
        &self.inner
    }
}

impl Algorithm for ThreeStateAlgorithm<'_> {
    fn name(&self) -> &'static str {
        THREE_STATE_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::FullStateExchange
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn step(&mut self, ctx: StepCtx<'_>) {
        match ctx.activation {
            Activation::All => self.inner.step(ctx.rng),
            Activation::Subset(set) => self.inner.step_scheduled(set, ctx.rng),
        }
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        for &u in victims {
            let state = match uniform3(rng) {
                0 => ThreeState::Black1,
                1 => ThreeState::Black0,
                _ => ThreeState::White,
            };
            if self.inner.state(u) != state {
                changed += 1;
            }
            self.inner.set_state(u, state);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        // Black means the *asserting* black state (Black1): the adversary
        // claims membership loudly, maximally perturbing the black1
        // counters its neighbors maintain.
        let state = if black {
            ThreeState::Black1
        } else {
            ThreeState::White
        };
        let changed = self.inner.state(u) != state;
        self.inner.set_state(u, state);
        changed
    }

    fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        self.inner.apply_mutation(delta)
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_topology_change(&self) -> bool {
        true
    }

    fn supports_parallel(&self) -> bool {
        true
    }

    fn supports_counter_rng(&self) -> bool {
        true
    }

    fn supports_partial_activation(&self) -> bool {
        true
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

/// The 3-color MIS process with the randomized logarithmic switch
/// (Definition 28, 18 states) as a pluggable [`Algorithm`].
///
/// The switch is a phase clock that advances *every* vertex every round, so
/// partial activation has no well-defined semantics here and
/// [`supports_partial_activation`](Algorithm::supports_partial_activation)
/// is `false`.
#[derive(Debug, Clone)]
pub struct ThreeColorAlgorithm<'g> {
    inner: ThreeColorProcess<'g, RandomizedLogSwitch<'g>>,
}

impl<'g> ThreeColorAlgorithm<'g> {
    /// Wraps an existing process instance.
    pub fn new(inner: ThreeColorProcess<'g, RandomizedLogSwitch<'g>>) -> Self {
        ThreeColorAlgorithm { inner }
    }

    /// The wrapped process.
    pub fn inner(&self) -> &ThreeColorProcess<'g, RandomizedLogSwitch<'g>> {
        &self.inner
    }
}

impl Algorithm for ThreeColorAlgorithm<'_> {
    fn name(&self) -> &'static str {
        THREE_COLOR_KEY
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::FullStateExchange
    }

    fn process(&self) -> &dyn Process {
        &self.inner
    }

    fn process_mut(&mut self) -> &mut dyn Process {
        &mut self.inner
    }

    fn inject_faults(&mut self, fraction: f64, rng: &mut dyn RngCore) -> usize {
        let victims = fault_victims(self.inner.n(), fraction, rng);
        self.inject_faults_targeted(&victims, rng)
    }

    fn inject_faults_targeted(&mut self, victims: &[VertexId], rng: &mut dyn RngCore) -> usize {
        let mut changed = 0;
        // A victim's whole local memory — color *and* switch level — is
        // overwritten, and it counts once if either changed, matching the
        // stone-age 3-color adapter and the trait contract.
        for &u in victims {
            let color = match uniform3(rng) {
                0 => ThreeColor::Black,
                1 => ThreeColor::Gray,
                _ => ThreeColor::White,
            };
            let level = (rng.next_u32() % 6) as u8;
            if self.inner.color(u) != color || self.inner.switch().level(u) != level {
                changed += 1;
            }
            self.inner.set_color(u, color);
            self.inner.switch_mut().set_level(u, level);
        }
        changed
    }

    fn set_byzantine_state(&mut self, u: VertexId, black: bool) -> bool {
        // Only the color neighbors observe is overridden; the switch level
        // keeps ticking (the adversary controls blackness, not the clock).
        let color = if black {
            ThreeColor::Black
        } else {
            ThreeColor::White
        };
        let changed = self.inner.color(u) != color;
        self.inner.set_color(u, color);
        changed
    }

    fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        self.inner.apply_mutation(delta)
    }

    fn current_graph(&self) -> Option<&Graph> {
        Some(self.inner.graph())
    }

    fn supports_topology_change(&self) -> bool {
        true
    }

    fn supports_parallel(&self) -> bool {
        true
    }

    fn supports_counter_rng(&self) -> bool {
        true
    }

    fn supports_fault_injection(&self) -> bool {
        true
    }

    fn supports_byzantine(&self) -> bool {
        true
    }
}

struct TwoStateFactory;

impl AlgorithmFactory for TwoStateFactory {
    fn key(&self) -> &'static str {
        TWO_STATE_KEY
    }

    fn description(&self) -> &'static str {
        "2-state MIS process (Definition 4): 1 random bit per active vertex per round"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::FullStateExchange
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        let mut proc = TwoStateProcess::with_init(graph, config.init, rng);
        proc.set_execution(config.execution, config.counter_seed);
        proc.set_strategy(config.strategy);
        Box::new(TwoStateAlgorithm::new(proc))
    }
}

struct ThreeStateFactory;

impl AlgorithmFactory for ThreeStateFactory {
    fn key(&self) -> &'static str {
        THREE_STATE_KEY
    }

    fn description(&self) -> &'static str {
        "3-state MIS process (Definition 5): stone-age-implementable, no collision detection"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::FullStateExchange
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        let mut proc = ThreeStateProcess::with_init(graph, config.init, rng);
        proc.set_execution(config.execution, config.counter_seed);
        proc.set_strategy(config.strategy);
        Box::new(ThreeStateAlgorithm::new(proc))
    }
}

struct ThreeColorFactory;

impl AlgorithmFactory for ThreeColorFactory {
    fn key(&self) -> &'static str {
        THREE_COLOR_KEY
    }

    fn description(&self) -> &'static str {
        "3-color MIS process with randomized logarithmic switch (Definition 28, 18 states)"
    }

    fn communication_model(&self) -> CommunicationModel {
        CommunicationModel::FullStateExchange
    }

    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g> {
        let mut proc = ThreeColorProcess::with_randomized_switch(graph, config.init, rng);
        proc.set_execution(config.execution, config.counter_seed);
        proc.set_strategy(config.strategy);
        Box::new(ThreeColorAlgorithm::new(proc))
    }
}

/// Registers the paper's three processes (`two-state`, `three-state`,
/// `three-color`) in `registry`.
pub fn register_core_algorithms(registry: &mut Registry) {
    registry.register(Box::new(TwoStateFactory));
    registry.register(Box::new(ThreeStateFactory));
    registry.register(Box::new(ThreeColorFactory));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionMode;
    use crate::init::InitStrategy;
    use mis_graph::{generators, mis_check, VertexSet};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> AlgorithmConfig {
        AlgorithmConfig {
            init: InitStrategy::Random,
            execution: ExecutionMode::Sequential,
            strategy: crate::exec::RoundStrategy::Auto,
            counter_seed: 7,
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        register_core_algorithms(&mut r);
        r
    }

    #[test]
    fn all_core_factories_build_and_stabilize() {
        let r = registry();
        assert_eq!(r.keys(), vec!["three-color", "three-state", "two-state"]);
        let mut stream = rng(5);
        let g = generators::gnp(60, 0.1, &mut stream);
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut alg = factory.init(&g, &config(), &mut stream);
            assert_eq!(alg.name(), key);
            assert_eq!(alg.n(), 60);
            let mut guard = 0;
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 100_000, "{key} did not stabilize");
            }
            assert!(mis_check::is_mis(&g, &alg.black_set()), "{key}");
            assert!(alg.random_bits_used() > 0, "{key}");
            assert!(alg.supports_parallel() && alg.supports_counter_rng());
            assert!(alg.supports_trace());
        }
    }

    #[test]
    fn synchronous_step_matches_direct_process() {
        let mut setup = rng(11);
        let g = generators::gnp(50, 0.12, &mut setup);
        let init = InitStrategy::Random.two_state(g.n(), &mut setup);
        let mut direct = TwoStateProcess::new(&g, init.clone());
        let mut alg = TwoStateAlgorithm::new(TwoStateProcess::new(&g, init));
        let mut ra = rng(13);
        let mut rb = rng(13);
        for _ in 0..100 {
            if direct.is_stabilized() {
                break;
            }
            direct.step(&mut ra);
            alg.step(StepCtx::synchronous(&mut rb));
        }
        assert_eq!(direct.states(), alg.inner().states());
        assert_eq!(direct.random_bits_used(), alg.random_bits_used());
    }

    #[test]
    fn full_scheduled_round_matches_synchronous_round_two_state() {
        let mut setup = rng(17);
        let g = generators::gnp(40, 0.15, &mut setup);
        let init = InitStrategy::Random.two_state(g.n(), &mut setup);
        let mut sync_proc = TwoStateProcess::new(&g, init.clone());
        let mut sched_proc = TwoStateProcess::new(&g, init);
        let everyone = VertexSet::from_indices(g.n(), 0..g.n());
        let mut ra = rng(19);
        let mut rb = rng(19);
        for round in 0..60 {
            if sync_proc.is_stabilized() {
                break;
            }
            sync_proc.step(&mut ra);
            sched_proc.step_scheduled(&everyone, &mut rb);
            assert_eq!(sync_proc.states(), sched_proc.states(), "round {round}");
        }
        assert_eq!(sync_proc.random_bits_used(), sched_proc.random_bits_used());
    }

    #[test]
    fn full_scheduled_round_matches_synchronous_round_three_state() {
        let mut setup = rng(23);
        let g = generators::gnp(40, 0.15, &mut setup);
        let init = InitStrategy::Random.three_state(g.n(), &mut setup);
        let mut sync_proc = ThreeStateProcess::new(&g, init.clone());
        let mut sched_proc = ThreeStateProcess::new(&g, init);
        let everyone = VertexSet::from_indices(g.n(), 0..g.n());
        let mut ra = rng(29);
        let mut rb = rng(29);
        for round in 0..60 {
            if sync_proc.is_stabilized() {
                break;
            }
            sync_proc.step(&mut ra);
            sched_proc.step_scheduled(&everyone, &mut rb);
            assert_eq!(sync_proc.states(), sched_proc.states(), "round {round}");
        }
        assert_eq!(sync_proc.random_bits_used(), sched_proc.random_bits_used());
    }

    #[test]
    fn scheduled_subset_only_touches_scheduled_vertices() {
        let g = generators::complete(6);
        let mut proc = TwoStateProcess::new(&g, vec![Color::Black; 6]);
        let before = proc.states();
        let half = VertexSet::from_indices(6, [0, 2, 4]);
        let mut r = rng(31);
        proc.step_scheduled(&half, &mut r);
        let after = proc.states();
        for u in [1usize, 3, 5] {
            assert_eq!(before[u], after[u], "unscheduled vertex {u} changed");
        }
        assert_eq!(proc.round(), 1);
        assert_eq!(proc.random_bits_used(), 3);
    }

    #[test]
    fn fault_injection_reports_actual_changes_and_recovers() {
        let mut stream = rng(37);
        let g = generators::gnp(80, 0.08, &mut stream);
        let r = registry();
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut alg = factory.init(&g, &config(), &mut stream);
            assert!(alg.supports_fault_injection());
            let mut guard = 0;
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 100_000);
            }
            let changed = alg.inject_faults(1.0, &mut stream);
            assert!(changed > 0, "{key}: total corruption changed nothing");
            assert!(
                changed <= g.n(),
                "{key}: a vertex may be counted at most once"
            );
            while !alg.is_stabilized() {
                alg.step(StepCtx::synchronous(&mut stream));
                guard += 1;
                assert!(guard < 200_000, "{key} did not recover");
            }
            assert!(mis_check::is_mis(&g, &alg.black_set()), "{key}");
        }
    }

    #[test]
    fn targeted_faults_match_random_faults_on_same_stream() {
        // inject_faults(fraction) must equal fault_victims + targeted on an
        // identical RNG stream: the refactor may not shift any draw.
        let mut setup = rng(53);
        let g = generators::gnp(60, 0.1, &mut setup);
        let r = registry();
        for key in r.keys() {
            let factory = r.get(key).unwrap();
            let mut build = rng(59);
            let mut a = factory.init(&g, &config(), &mut build);
            let mut build = rng(59);
            let mut b = factory.init(&g, &config(), &mut build);
            let mut ra = rng(61);
            let mut rb = rng(61);
            let changed_a = a.inject_faults(0.3, &mut ra);
            let victims = fault_victims(b.n(), 0.3, &mut rb);
            let changed_b = b.inject_faults_targeted(&victims, &mut rb);
            assert_eq!(changed_a, changed_b, "{key}");
            assert_eq!(
                a.process().states_per_vertex(),
                b.process().states_per_vertex()
            );
            assert_eq!(a.black_set(), b.black_set(), "{key}: states diverged");
            assert_eq!(ra.next_u64(), rb.next_u64(), "{key}: streams diverged");
        }
    }

    #[test]
    fn byzantine_override_pins_blackness_and_repairs_counters() {
        use crate::byzantine::{ByzantineOverlay, ByzantineStrategy};
        let mut stream = rng(67);
        let g = generators::gnp(50, 0.15, &mut stream);
        let r = registry();
        for key in r.keys() {
            for strategy in ByzantineStrategy::all() {
                let factory = r.get(key).unwrap();
                let mut alg = factory.init(&g, &config(), &mut stream);
                assert!(alg.supports_byzantine(), "{key}");
                let overlay = ByzantineOverlay::new(strategy, vec![0, 7, 13], 99);
                overlay.apply(alg.as_mut());
                for _ in 0..40 {
                    alg.step(StepCtx::synchronous(&mut stream));
                    overlay.apply(alg.as_mut());
                    let black = alg.black_set();
                    for u in overlay.vertices() {
                        assert_eq!(
                            black.contains(u),
                            strategy.build(99).displays_black(u, alg.round()),
                            "{key}/{strategy}: override not in force at vertex {u}"
                        );
                    }
                }
                // The adversarial overrides went through the engine's
                // delta-repair path; the aggregate counts must still agree
                // with a from-scratch classification.
                let counts = alg.counts();
                assert_eq!(
                    counts.black,
                    alg.black_set().len(),
                    "{key}/{strategy}: black count drifted"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not support partial activation")]
    fn three_color_rejects_partial_activation() {
        let mut stream = rng(41);
        let g = generators::path(5);
        let mut proc =
            ThreeColorProcess::with_randomized_switch(&g, InitStrategy::Random, &mut stream);
        proc.set_execution(ExecutionMode::Sequential, 0);
        let mut alg = ThreeColorAlgorithm::new(proc);
        assert!(!alg.supports_partial_activation());
        let activation = Activation::Subset(VertexSet::from_indices(5, [0]));
        alg.step(StepCtx {
            rng: &mut stream,
            activation: &activation,
        });
    }

    #[test]
    fn central_daemon_drives_two_state_to_mis() {
        use crate::scheduler::{CentralDaemon, Scheduler};
        let mut stream = rng(43);
        let g = generators::gnp(25, 0.2, &mut stream);
        let factory = TwoStateFactory;
        let mut alg = factory.init(&g, &config(), &mut stream);
        let mut daemon = CentralDaemon;
        let mut moves = 0;
        while !alg.is_stabilized() {
            let activation = daemon.next_activation(alg.n(), alg.round(), &mut stream);
            alg.step(StepCtx {
                rng: &mut stream,
                activation: &activation,
            });
            moves += 1;
            assert!(moves < 1_000_000, "central daemon did not stabilize");
        }
        assert!(mis_check::is_mis(&g, &alg.black_set()));
    }
}
