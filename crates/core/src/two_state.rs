use std::sync::Arc;

use mis_graph::{CommittedDelta, Graph, GraphDelta, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::counter_rng::{CounterRng, DRAW_STATE};
use crate::engine::{FrontierEngine, VertexClass};
use crate::exec::{resolve_threads, ExecutionMode, RoundStrategy};
use crate::init::InitStrategy;
use crate::mutation::{GraphRef, MutationError};
use crate::packed::PackedStates;
use crate::process::{Process, StateCounts};

/// Vertex state of the 2-state MIS process: black indicates (tentative)
/// membership in the MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Color {
    /// The vertex currently claims MIS membership.
    Black,
    /// The vertex currently does not claim MIS membership.
    White,
}

impl Color {
    /// `true` if the color is [`Color::Black`].
    pub fn is_black(self) -> bool {
        matches!(self, Color::Black)
    }

    /// The 2-bit code used by the packed state storage.
    #[inline]
    pub(crate) fn code(self) -> u8 {
        match self {
            Color::White => 0,
            Color::Black => 1,
        }
    }

    /// Inverse of [`code`](Self::code).
    #[inline]
    pub(crate) fn from_code(code: u8) -> Self {
        match code {
            0 => Color::White,
            1 => Color::Black,
            other => unreachable!("invalid 2-state code {other}"),
        }
    }
}

/// The 2-state local rule: a vertex is active (and pending — the two coincide
/// for this process) iff it is black with a black neighbor or white with no
/// black neighbor.
fn classify(states: &PackedStates) -> impl Fn(VertexId, u32) -> VertexClass + Sync + '_ {
    move |u, black_nbrs| {
        let active = match Color::from_code(states.get(u)) {
            Color::Black => black_nbrs > 0,
            Color::White => black_nbrs == 0,
        };
        VertexClass {
            active,
            pending: active,
        }
    }
}

/// The **2-state MIS process** of Definition 4.
///
/// Each vertex holds a binary state (black/white), initialized arbitrarily.
/// In every synchronous round, each vertex whose state is *inconsistent* —
/// black with at least one black neighbor, or white with no black neighbor —
/// re-draws its state uniformly at random; consistent vertices keep their
/// state. The process is self-stabilizing: from any initial state vector it
/// reaches, with probability 1, a configuration where the black vertices form
/// a maximal independent set and no state ever changes again.
///
/// The struct also exposes the vertex partitions used in the paper's
/// analysis: active vertices `A_t`, stable black vertices `I_t`, and
/// non-stable vertices `V_t` (Section 2.1).
///
/// States are stored bit-packed (2 bits per vertex, see
/// [`PackedStates`]), and rounds are executed through the incremental
/// [`FrontierEngine`], so a [`step`](Process::step) costs
/// `O(|A_t| + vol(A_t))` rather than `O(n + m)`, and
/// [`is_stabilized`](Process::is_stabilized) and [`counts`](Process::counts)
/// are `O(1)`; [`step_reference`] retains the naive full-scan path for
/// differential testing.
///
/// # Execution modes
///
/// Under the default [`ExecutionMode::Sequential`], all coins come from the
/// shared RNG stream passed to `step`, drawn in ascending vertex order —
/// bit-identical to [`step_reference`]. After
/// [`set_execution`](Self::set_execution) with
/// [`ExecutionMode::Parallel`], each vertex's coin is the pure function
/// `CounterRng(run_seed)(vertex, round, draw)` and the round executes in
/// data-parallel phases; the shared RNG argument is **ignored** and the
/// results are bit-identical for every thread count.
///
/// [`step_reference`]: TwoStateProcess::step_reference
///
/// # Example
///
/// ```
/// use mis_core::{TwoStateProcess, Process, init::InitStrategy};
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = generators::complete(64);
/// let mut p = TwoStateProcess::with_init(&g, InitStrategy::AllBlack, &mut rng);
/// p.run_to_stabilization(&mut rng, 10_000).unwrap();
/// assert_eq!(p.black_set().len(), 1); // an MIS of a clique is a single vertex
/// assert!(mis_check::is_mis(&g, &p.black_set()));
/// ```
#[derive(Debug, Clone)]
pub struct TwoStateProcess<'g> {
    graph: GraphRef<'g>,
    states: PackedStates,
    /// Incremental counters, frontier, and cached counts.
    engine: FrontierEngine,
    mode: ExecutionMode,
    strategy: RoundStrategy,
    /// Whether the most recent full synchronous round ran the dense path.
    last_round_dense: bool,
    counter: CounterRng,
    round: usize,
    random_bits: u64,
    /// Scratch: the frontier snapshot of the round being executed.
    worklist: Vec<VertexId>,
    /// Scratch: the state changes decided in the current round.
    changes: Vec<(VertexId, Color)>,
    /// Recycled per-chunk change buffers for the parallel round path.
    change_pool: Vec<Vec<(VertexId, bool)>>,
}

impl<'g> TwoStateProcess<'g> {
    /// Creates the process on `graph` with the given initial state vector.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<Color>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        let mut p = TwoStateProcess {
            engine: FrontierEngine::new(graph.n()),
            graph: GraphRef::Borrowed(graph),
            states: PackedStates::from_codes(states.into_iter().map(Color::code)),
            mode: ExecutionMode::Sequential,
            strategy: RoundStrategy::Auto,
            last_round_dense: false,
            counter: CounterRng::new(0),
            round: 0,
            random_bits: 0,
            worklist: Vec::new(),
            changes: Vec::new(),
            change_pool: Vec::new(),
        };
        p.rebuild_engine();
        p
    }

    /// Creates the process with states drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        Self::new(graph, init.two_state(graph.n(), rng))
    }

    /// Selects the execution mode for subsequent rounds and (re-)keys the
    /// counter-based RNG with `run_seed`. See the struct docs for the two
    /// randomness models.
    pub fn set_execution(&mut self, mode: ExecutionMode, run_seed: u64) {
        self.mode = mode;
        self.counter = CounterRng::new(run_seed);
    }

    /// The current execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Selects how full synchronous rounds traverse the graph: the adaptive
    /// dense/sparse choice (default), or one path forced. The choice never
    /// changes results — see [`RoundStrategy`].
    pub fn set_strategy(&mut self, strategy: RoundStrategy) {
        self.strategy = strategy;
    }

    /// The current round strategy.
    pub fn strategy(&self) -> RoundStrategy {
        self.strategy
    }

    /// `true` if the most recent [`step`](Process::step) ran the dense
    /// full-sweep path (reporting hook for the scale experiment, which
    /// records the round where `auto` switches dense → sparse).
    pub fn last_round_was_dense(&self) -> bool {
        self.last_round_dense
    }

    /// The underlying graph (the mutated one after
    /// [`apply_mutation`](Self::apply_mutation)).
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Applies a batch of topology mutations and incrementally re-derives
    /// the engine bookkeeping, so the process **re-stabilizes from the
    /// current configuration** instead of restarting: the delta is compacted
    /// into a fresh CSR graph, state storage and counters grow to cover
    /// joined vertices (new vertices start white, the self-stabilizing
    /// rules absorb them), each net edge change delta-updates the
    /// black-neighbor counters, and one flush against the new adjacency
    /// re-classifies every touched vertex. The result is bit-identical to
    /// rebuilding the engine from scratch on the new graph with the current
    /// states.
    ///
    /// On error (an invalid delta) the process state is untouched.
    pub fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        let (new_graph, committed) = self.graph.get().apply_delta(delta)?;
        self.states.grow(committed.new_n);
        self.engine.grow(committed.new_n);
        for &(u, v) in &committed.removed {
            self.engine.edge_update(u, v, false);
        }
        for &(u, v) in &committed.inserted {
            self.engine.edge_update(u, v, true);
        }
        self.graph = GraphRef::Owned(Arc::new(new_graph));
        let states = &self.states;
        self.engine.flush(self.graph.get(), classify(states));
        Ok(committed)
    }

    /// Read-only view of the incremental engine bookkeeping (counters,
    /// frontier, cached counts), for tests and diagnostics.
    pub fn engine(&self) -> &FrontierEngine {
        &self.engine
    }

    /// Current color of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn color(&self, u: VertexId) -> Color {
        assert!(u < self.n(), "vertex {u} out of range");
        Color::from_code(self.states.get(u))
    }

    /// The full state vector (indexed by vertex id), materialized from the
    /// packed storage in `O(n)`.
    pub fn states(&self) -> Vec<Color> {
        self.states.decode(Color::from_code)
    }

    /// Overwrites the state of a single vertex, e.g. to model a transient
    /// fault. Neighborhood bookkeeping is delta-updated in `O(deg(u))`; no
    /// full rebuild happens.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_color(&mut self, u: VertexId, color: Color) {
        assert!(u < self.n(), "vertex {u} out of range");
        if Color::from_code(self.states.get(u)) == color {
            return;
        }
        self.states.set(u, color.code());
        self.engine.set_black(self.graph.get(), u, color.is_black());
        let states = &self.states;
        self.engine.flush(self.graph.get(), classify(states));
    }

    /// `true` if vertex `u` is active at the end of the current round:
    /// black with a black neighbor, or white with no black neighbor.
    pub fn is_active(&self, u: VertexId) -> bool {
        self.engine.is_active(u)
    }

    /// `true` if vertex `u` is *stable black*: black with no black neighbor
    /// (i.e. `u ∈ I_t`).
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.engine.is_stable_black(u)
    }

    /// `true` if vertex `u` is stable: stable black, or adjacent to a stable
    /// black vertex.
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.engine.is_stable(u)
    }

    /// Number of black neighbors of `u`.
    pub fn black_neighbor_count(&self, u: VertexId) -> usize {
        self.engine.black_neighbor_count(u)
    }

    /// The set `A^k_t` of *k-active* vertices: active vertices with at most
    /// `k` active neighbors (Section 4.1).
    pub fn k_active_set(&self, k: usize) -> VertexSet {
        let active = self.active_set();
        let mut out = VertexSet::new(self.n());
        for u in active.iter() {
            let active_nbrs = self
                .graph
                .get()
                .neighbors(u)
                .iter()
                .filter(|&v| active.contains(v))
                .count();
            if active_nbrs <= k {
                out.insert(u);
            }
        }
        out
    }

    /// Executes one synchronous round with the naive full-scan reference
    /// implementation: rescan all vertices, recompute every black-neighbor
    /// count from scratch, `O(n + m)`.
    ///
    /// Semantically identical to a sequential-mode [`step`](Process::step) —
    /// same states, same RNG stream — and retained as the oracle for the
    /// engine's trace-equality tests.
    pub fn step_reference(&mut self, rng: &mut dyn RngCore) {
        // Recount independently of the engine so the reference path does not
        // rely on the bookkeeping it is meant to check.
        let mut black_nbrs = vec![0u32; self.n()];
        for u in self.graph.get().vertices() {
            if Color::from_code(self.states.get(u)).is_black() {
                for v in self.graph.get().neighbors(u) {
                    black_nbrs[v] += 1;
                }
            }
        }
        let next = self.states.clone();
        for u in self.graph.get().vertices() {
            let active = match Color::from_code(self.states.get(u)) {
                Color::Black => black_nbrs[u] > 0,
                Color::White => black_nbrs[u] == 0,
            };
            if active {
                self.random_bits += 1;
                let color = if rng.gen_bool(0.5) {
                    Color::Black
                } else {
                    Color::White
                };
                next.set(u, color.code());
            }
        }
        self.states = next;
        self.rebuild_engine();
        self.round += 1;
    }

    fn rebuild_engine(&mut self) {
        let states = &self.states;
        self.engine.rebuild(
            self.graph.get(),
            |u| Color::from_code(states.get(u)).is_black(),
            classify(states),
        );
    }

    /// One sequential round: ascending-order draws from the shared stream,
    /// bit-identical to [`step_reference`](Self::step_reference).
    fn step_sequential(&mut self, rng: &mut dyn RngCore) {
        // For the 2-state process the frontier is exactly the active set, so
        // every worklist vertex re-draws; ascending order keeps the RNG
        // stream identical to the full-scan reference.
        self.engine.begin_round(&mut self.worklist);
        self.changes.clear();
        for &u in &self.worklist {
            debug_assert!(self.engine.is_active(u));
            self.random_bits += 1;
            let new = if rng.gen_bool(0.5) {
                Color::Black
            } else {
                Color::White
            };
            if new != Color::from_code(self.states.get(u)) {
                self.changes.push((u, new));
            }
        }
        for &(u, color) in &self.changes {
            self.states.set(u, color.code());
            self.engine.set_black(self.graph.get(), u, color.is_black());
        }
        let states = &self.states;
        self.engine.flush(self.graph.get(), classify(states));
        self.round += 1;
    }

    /// Executes one round in which only the vertices of `scheduled` are
    /// activated (a partial-activation round under a non-synchronous
    /// scheduler): every scheduled *active* vertex re-draws its state
    /// uniformly at random against the pre-round configuration, all other
    /// vertices keep their state. Draws happen in ascending vertex order
    /// from the shared stream; a full `scheduled` set consumes exactly the
    /// coins of a sequential [`step`](Process::step).
    ///
    /// # Panics
    ///
    /// Panics if `scheduled.universe() != n`.
    pub fn step_scheduled(&mut self, scheduled: &VertexSet, rng: &mut dyn RngCore) {
        assert_eq!(
            scheduled.universe(),
            self.n(),
            "scheduled set universe must match the graph"
        );
        // Decide against the pre-round configuration, then apply: the
        // engine's activity bits are only mutated after every coin is drawn.
        self.changes.clear();
        for u in scheduled.iter() {
            if self.engine.is_active(u) {
                self.random_bits += 1;
                let new = if rng.gen_bool(0.5) {
                    Color::Black
                } else {
                    Color::White
                };
                if new != Color::from_code(self.states.get(u)) {
                    self.changes.push((u, new));
                }
            }
        }
        for i in 0..self.changes.len() {
            let (u, color) = self.changes[i];
            self.states.set(u, color.code());
            self.engine.set_black(self.graph.get(), u, color.is_black());
        }
        let states = &self.states;
        self.engine.flush(self.graph.get(), classify(states));
        self.round += 1;
    }

    /// One **dense** sequential round: a flat sweep over the packed state
    /// array deciding from the cached activity flags (no worklist, no sort,
    /// no delta scatter), followed by the engine's fused full recount. Same
    /// coins for the same vertices in the same ascending order as
    /// [`step_sequential`](Self::step_sequential), hence bit-identical.
    fn step_dense_sequential(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.get().n();
        let mut draws = 0u64;
        {
            let states = &mut self.states;
            let engine = &self.engine;
            for u in 0..n {
                if engine.is_active(u) {
                    draws += 1;
                    let new = if rng.gen_bool(0.5) {
                        Color::Black
                    } else {
                        Color::White
                    };
                    if new.code() != states.get(u) {
                        states.set_mut(u, new.code());
                        engine.stage_black(u, new.is_black());
                    }
                }
            }
        }
        self.random_bits += draws;
        let states = &self.states;
        self.engine.recount(self.graph.get(), classify(states));
        self.round += 1;
    }

    /// One **dense** counter-based round on `threads` threads: the decide
    /// sweep is chunked over `0..n` (order-independent counter draws) and
    /// the recount runs through
    /// [`recount_par`](FrontierEngine::recount_par); bit-identical for every
    /// thread count and to the sparse parallel path.
    fn step_dense_parallel(&mut self, threads: usize) {
        let round = self.round as u64;
        let counter = self.counter;
        let states = &self.states;
        let graph = self.graph.get();
        let draws = self.engine.dense_sweep(graph, threads, |engine, range| {
            let mut draws = 0u64;
            for u in range {
                if engine.is_active(u) {
                    draws += 1;
                    let new = if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                        Color::Black
                    } else {
                        Color::White
                    };
                    if new.code() != states.get(u) {
                        states.set(u, new.code());
                        engine.stage_black(u, new.is_black());
                    }
                }
            }
            draws
        });
        self.random_bits += draws;
        let states = &self.states;
        self.engine.recount_par(graph, threads, classify(states));
        self.round += 1;
    }

    /// One counter-based round on `threads` threads; results are
    /// bit-identical for every thread count. The phase structure lives in
    /// [`FrontierEngine::par_round`]; this only supplies the 2-state decide
    /// (every worklist vertex is active and draws its own coin) and scatter
    /// (plain blackness flips).
    fn step_parallel(&mut self, threads: usize) {
        self.engine.begin_round_unsorted(&mut self.worklist);
        let round = self.round as u64;
        let counter = self.counter;
        let states = &self.states;
        let graph = self.graph.get();
        let change_pool = &mut self.change_pool;
        let draws = self.engine.par_round(
            graph,
            &self.worklist,
            threads,
            |engine, chunk, changes: &mut Vec<(VertexId, bool)>| {
                let mut draws = 0u64;
                for &u in chunk {
                    debug_assert!(engine.is_active(u));
                    draws += 1;
                    let new = if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                        Color::Black
                    } else {
                        Color::White
                    };
                    if new.code() != states.get(u) {
                        states.set(u, new.code());
                        changes.push((u, new.is_black()));
                    }
                }
                draws
            },
            |engine, &(u, black), sink| engine.scatter_black(graph, u, black, sink),
            classify(states),
            change_pool,
        );
        self.random_bits += draws;
        self.round += 1;
    }
}

impl Process for TwoStateProcess<'_> {
    fn n(&self) -> usize {
        self.graph.get().n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let dense = match self.strategy {
            RoundStrategy::Sparse => false,
            RoundStrategy::Dense => true,
            RoundStrategy::Auto => self.engine.prefers_dense(self.graph.get()),
        };
        self.last_round_dense = dense;
        match (self.mode, dense) {
            (ExecutionMode::Sequential, false) => self.step_sequential(rng),
            (ExecutionMode::Sequential, true) => self.step_dense_sequential(rng),
            (ExecutionMode::Parallel { threads }, false) => {
                self.step_parallel(resolve_threads(threads))
            }
            (ExecutionMode::Parallel { threads }, true) => {
                self.step_dense_parallel(resolve_threads(threads))
            }
        }
    }

    fn is_stabilized(&self) -> bool {
        // A configuration is stabilized iff no vertex is active, which holds
        // iff every vertex is stable (Section 2); the engine caches the
        // unstable count, so this is O(1).
        self.engine.is_stabilized()
    }

    fn black_set(&self) -> VertexSet {
        self.engine.black_set()
    }

    fn active_set(&self) -> VertexSet {
        self.engine.active_set()
    }

    fn stable_black_set(&self) -> VertexSet {
        self.engine.stable_black_set()
    }

    fn unstable_set(&self) -> VertexSet {
        self.engine.unstable_set()
    }

    fn counts(&self) -> StateCounts {
        self.engine.counts()
    }

    fn states_per_vertex(&self) -> usize {
        2
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    #[should_panic(expected = "state vector length")]
    fn mismatched_init_length_panics() {
        let g = generators::path(3);
        TwoStateProcess::new(&g, vec![Color::White; 2]);
    }

    #[test]
    fn single_vertex_stabilizes_black() {
        let g = Graph::empty(1);
        let mut r = rng(0);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::AllWhite, &mut r);
        assert!(!p.is_stabilized()); // white isolated vertex is active
        let rounds = p.run_to_stabilization(&mut r, 1000).unwrap();
        assert!(rounds >= 1);
        assert!(p.color(0).is_black());
        assert!(p.is_stabilized());
    }

    #[test]
    fn already_stable_configuration_needs_no_rounds() {
        // Path 0-1-2 with only vertex 1 black is an MIS: stable immediately.
        let g = generators::path(3);
        let states = vec![Color::White, Color::Black, Color::White];
        let mut p = TwoStateProcess::new(&g, states);
        assert!(p.is_stabilized());
        let mut r = rng(1);
        assert_eq!(p.run_to_stabilization(&mut r, 10).unwrap(), 0);
        assert_eq!(p.random_bits_used(), 0);
    }

    #[test]
    fn all_black_clique_is_not_stable() {
        let g = generators::complete(5);
        let p = TwoStateProcess::new(&g, vec![Color::Black; 5]);
        assert!(!p.is_stabilized());
        assert_eq!(p.active_set().len(), 5);
        assert_eq!(p.stable_black_set().len(), 0);
        assert_eq!(p.unstable_set().len(), 5);
    }

    #[test]
    fn stabilizes_to_mis_on_various_graphs() {
        let mut r = rng(7);
        let graphs = vec![
            generators::complete(32),
            generators::path(50),
            generators::cycle(51),
            generators::star(40),
            generators::random_tree(100, &mut r),
            generators::gnp(150, 0.05, &mut r),
            generators::gnp(100, 0.5, &mut r),
            generators::disjoint_cliques(5, 8),
            generators::grid(8, 8),
            Graph::empty(20),
        ];
        for (i, g) in graphs.into_iter().enumerate() {
            for init in [
                InitStrategy::AllWhite,
                InitStrategy::AllBlack,
                InitStrategy::Random,
            ] {
                let mut p = TwoStateProcess::with_init(&g, init, &mut r);
                let rounds = p
                    .run_to_stabilization(&mut r, 100_000)
                    .unwrap_or_else(|e| panic!("graph {i} with {init:?} did not stabilize: {e}"));
                assert!(
                    mis_check::is_mis(&g, &p.black_set()),
                    "graph {i}, init {init:?}, after {rounds} rounds"
                );
                assert!(p.is_stabilized());
            }
        }
    }

    #[test]
    fn parallel_mode_stabilizes_to_mis() {
        let mut r = rng(71);
        let graphs = vec![
            generators::complete(32),
            generators::gnp(150, 0.05, &mut r),
            generators::grid(8, 8),
            Graph::empty(5),
        ];
        for (i, g) in graphs.into_iter().enumerate() {
            let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            p.set_execution(ExecutionMode::Parallel { threads: 3 }, 0xA11CE + i as u64);
            assert!(p.execution_mode().is_parallel());
            p.run_to_stabilization(&mut r, 100_000)
                .unwrap_or_else(|e| panic!("graph {i}: {e}"));
            assert!(mis_check::is_mis(&g, &p.black_set()), "graph {i}");
        }
    }

    #[test]
    fn parallel_mode_is_thread_count_invariant() {
        let g = generators::gnp(120, 0.08, &mut rng(77));
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 5] {
            let mut r = rng(78);
            let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            p.set_execution(ExecutionMode::Parallel { threads }, 99);
            for _ in 0..40 {
                if p.is_stabilized() {
                    break;
                }
                p.step(&mut r);
            }
            outcomes.push((p.states(), p.black_set(), p.counts(), p.random_bits_used()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
    }

    #[test]
    fn stability_is_monotone() {
        // Once a vertex is stable it stays stable with the same color.
        let mut r = rng(11);
        let g = generators::gnp(80, 0.1, &mut r);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        let mut stable_colors: Vec<Option<Color>> = vec![None; g.n()];
        for _ in 0..200 {
            for u in g.vertices() {
                if let Some(c) = stable_colors[u] {
                    assert_eq!(p.color(u), c, "stable vertex {u} changed color");
                    assert!(p.is_stable(u), "vertex {u} lost stability");
                } else if p.is_stable(u) {
                    stable_colors[u] = Some(p.color(u));
                }
            }
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn counts_are_consistent() {
        let mut r = rng(13);
        let g = generators::gnp(60, 0.1, &mut r);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for _ in 0..50 {
            let c = p.counts();
            assert_eq!(c.black + c.non_black, g.n());
            assert_eq!(c.black, p.black_set().len());
            assert_eq!(c.active, p.active_set().len());
            assert_eq!(c.stable_black, p.stable_black_set().len());
            assert_eq!(c.unstable, p.unstable_set().len());
            // I_t is independent and disjoint from the active set.
            assert!(mis_check::is_independent(&g, &p.stable_black_set()));
            assert!(p.stable_black_set().is_disjoint(&p.active_set()));
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn random_bits_accounting_matches_active_counts() {
        let mut r = rng(17);
        let g = generators::gnp(40, 0.2, &mut r);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        let mut expected = 0u64;
        for _ in 0..30 {
            expected += p.counts().active as u64;
            p.step(&mut r);
        }
        assert_eq!(p.random_bits_used(), expected);
    }

    #[test]
    fn set_color_keeps_bookkeeping_consistent() {
        let mut r = rng(19);
        let g = generators::gnp(30, 0.3, &mut r);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::AllWhite, &mut r);
        p.set_color(0, Color::Black);
        p.set_color(5, Color::Black);
        p.set_color(5, Color::Black); // idempotent
        for u in g.vertices() {
            let expected = g
                .neighbors(u)
                .iter()
                .filter(|&v| p.color(v).is_black())
                .count();
            assert_eq!(p.black_neighbor_count(u), expected);
        }
        p.set_color(0, Color::White);
        for u in g.vertices() {
            let expected = g
                .neighbors(u)
                .iter()
                .filter(|&v| p.color(v).is_black())
                .count();
            assert_eq!(p.black_neighbor_count(u), expected);
        }
    }

    #[test]
    fn apply_mutation_matches_fresh_process_on_mutated_graph() {
        let mut r = rng(401);
        let g = generators::gnp(40, 0.15, &mut r);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for _ in 0..5 {
            p.step(&mut r);
        }
        let (eu, ev) = g.edges().next().expect("dense gnp has an edge");
        let mut delta = GraphDelta::new();
        delta
            .remove_edge(eu, ev)
            .add_edge(0, g.n() - 1)
            .add_vertex([0, 1])
            .detach_vertex(2);
        let committed = p.apply_mutation(&delta).unwrap();
        assert_eq!(committed.old_n, g.n());
        assert_eq!(committed.new_n, g.n() + 1);
        assert_eq!(p.n(), g.n() + 1);
        assert_eq!(p.color(g.n()), Color::White, "joined vertex starts white");
        // Oracle: a fresh process on the mutated graph with the same states
        // must have identical bookkeeping.
        let g2 = p.graph().clone();
        let fresh = TwoStateProcess::new(&g2, p.states());
        assert_eq!(fresh.counts(), p.counts());
        for u in g2.vertices() {
            assert_eq!(fresh.is_active(u), p.is_active(u), "active {u}");
            assert_eq!(fresh.is_stable(u), p.is_stable(u), "stable {u}");
            assert_eq!(
                fresh.black_neighbor_count(u),
                p.black_neighbor_count(u),
                "black_nbrs {u}"
            );
        }
        // And it re-stabilizes (incrementally) to an MIS of the NEW graph.
        p.run_to_stabilization(&mut r, 100_000).unwrap();
        assert!(mis_check::is_mis(&g2, &p.black_set()));
    }

    #[test]
    fn invalid_mutation_leaves_state_untouched() {
        let g = generators::path(4);
        let mut p = TwoStateProcess::new(
            &g,
            vec![Color::White, Color::Black, Color::White, Color::White],
        );
        let before_states = p.states();
        let before_counts = p.counts();
        let mut delta = GraphDelta::new();
        delta.add_edge(0, 99); // out of range
        assert!(p.apply_mutation(&delta).is_err());
        assert_eq!(p.states(), before_states);
        assert_eq!(p.counts(), before_counts);
        assert_eq!(p.n(), 4);
    }

    #[test]
    fn k_active_set_respects_threshold() {
        let g = generators::complete(6);
        let p = TwoStateProcess::new(&g, vec![Color::Black; 6]);
        // Every vertex is active with 5 active neighbors.
        assert_eq!(p.k_active_set(4).len(), 0);
        assert_eq!(p.k_active_set(5).len(), 6);
    }

    #[test]
    fn forced_strategies_are_bit_identical() {
        // auto, forced sparse, and forced dense must walk the exact same
        // trajectory (same states, same RNG stream, same counts) — the core
        // contract of the direction-optimizing engine.
        let g = generators::gnp(90, 0.1, &mut rng(301));
        let mut outcomes = Vec::new();
        for strategy in [
            RoundStrategy::Auto,
            RoundStrategy::Sparse,
            RoundStrategy::Dense,
        ] {
            let mut r = rng(302);
            let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            p.set_strategy(strategy);
            assert_eq!(p.strategy(), strategy);
            let mut per_round = Vec::new();
            for _ in 0..40 {
                if p.is_stabilized() {
                    break;
                }
                p.step(&mut r);
                per_round.push((p.states(), p.counts(), p.random_bits_used()));
            }
            outcomes.push((per_round, p.black_set(), p.round()));
        }
        assert_eq!(outcomes[0], outcomes[1], "auto vs sparse");
        assert_eq!(outcomes[0], outcomes[2], "auto vs dense");
    }

    #[test]
    fn auto_switches_dense_to_sparse_as_the_frontier_collapses() {
        let n = 4000;
        let g = generators::gnp(n, 8.0 / n as f64, &mut rng(303));
        let mut r = rng(304);
        let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        // From a random init roughly half the vertices are active: dense.
        p.step(&mut r);
        assert!(p.last_round_was_dense(), "early phase should run dense");
        p.run_to_stabilization(&mut r, 100_000).unwrap();
        // A silent round on the stabilized configuration: sparse.
        p.step(&mut r);
        assert!(!p.last_round_was_dense(), "silent phase should run sparse");
    }

    #[test]
    fn parallel_dense_rounds_are_thread_count_invariant() {
        let g = generators::gnp(150, 0.1, &mut rng(305));
        let mut outcomes = Vec::new();
        for threads in [1usize, 3, 6] {
            let mut r = rng(306);
            let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            p.set_execution(ExecutionMode::Parallel { threads }, 77);
            p.set_strategy(RoundStrategy::Dense);
            for _ in 0..25 {
                if p.is_stabilized() {
                    break;
                }
                p.step(&mut r);
            }
            outcomes.push((p.states(), p.black_set(), p.counts(), p.random_bits_used()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        // And the dense parallel trajectory equals the sparse parallel one.
        let mut r = rng(306);
        let mut sparse = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        sparse.set_execution(ExecutionMode::Parallel { threads: 2 }, 77);
        sparse.set_strategy(RoundStrategy::Sparse);
        for _ in 0..25 {
            if sparse.is_stabilized() {
                break;
            }
            sparse.step(&mut r);
        }
        assert_eq!(outcomes[0].0, sparse.states());
        assert_eq!(outcomes[0].3, sparse.random_bits_used());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(80, 0.1, &mut rng(23));
        let run = |seed: u64| {
            let mut r = rng(seed);
            let mut p = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            let rounds = p.run_to_stabilization(&mut r, 100_000).unwrap();
            (rounds, p.black_set())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn fast_step_matches_reference_step() {
        let g = generators::gnp(70, 0.08, &mut rng(29));
        let mut r_fast = rng(31);
        let mut r_ref = rng(31);
        let mut fast = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r_fast);
        let mut reference = TwoStateProcess::with_init(&g, InitStrategy::Random, &mut r_ref);
        assert_eq!(fast.states(), reference.states());
        for round in 0..60 {
            assert_eq!(fast.counts(), reference.counts(), "round {round}");
            assert_eq!(fast.is_stabilized(), reference.is_stabilized());
            if fast.is_stabilized() {
                break;
            }
            fast.step(&mut r_fast);
            reference.step_reference(&mut r_ref);
            assert_eq!(fast.states(), reference.states(), "round {round}");
            assert_eq!(fast.random_bits_used(), reference.random_bits_used());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// From arbitrary initial states on random graphs, the process
        /// stabilizes and the result is an MIS.
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..10_000, n in 1usize..60, p_edge in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let init: Vec<Color> =
                (0..n).map(|_| if rand::Rng::gen_bool(&mut r, 0.5) { Color::Black } else { Color::White }).collect();
            let mut proc = TwoStateProcess::new(&g, init);
            proc.run_to_stabilization(&mut r, 200_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &proc.black_set()));
        }
    }
}
