//! The unified, object-safe [`Algorithm`] interface and the string-keyed
//! [`Registry`] behind the experiment harness.
//!
//! Everything the harness can run — the paper's three processes, the four
//! baselines, and the weak-communication adaptations — is exposed through
//! one dyn-compatible trait, so schedulers, observers, fault injection, and
//! metric collection are written once and algorithms plug in by name:
//!
//! * [`Algorithm`] wraps a [`Process`] (or a terminated run) and adds the
//!   capabilities the harness needs: scheduled (partial-activation) steps,
//!   in-place fault injection, and capability flags
//!   ([`supports_parallel`](Algorithm::supports_parallel),
//!   [`supports_counter_rng`](Algorithm::supports_counter_rng),
//!   [`communication_model`](Algorithm::communication_model), …).
//! * [`AlgorithmFactory`] is the `init(graph, init_strategy, rng)` entry
//!   point: it builds a boxed algorithm instance for one trial from an
//!   [`AlgorithmConfig`].
//! * [`Registry`] maps stable string keys (`"two-state"`,
//!   `"beeping-two-state"`, …) to factories. Crates register their
//!   algorithms (`mis_core::register_core_algorithms`, and the comm/baseline
//!   equivalents); the sim crate composes the builtin registry and resolves
//!   experiment specs through it.
//!
//! External algorithms join the harness by implementing the two traits and
//! registering a factory — no enum needs to grow.

use std::collections::BTreeMap;
use std::fmt;

use mis_graph::{CommittedDelta, Graph, GraphDelta, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::exec::{ExecutionMode, RoundStrategy};
use crate::init::InitStrategy;
use crate::mutation::MutationError;
use crate::process::{Process, StateCounts};
use crate::scheduler::Activation;

/// The weakest communication model an algorithm's local rule needs.
///
/// Used by comparison tables and the `list_algorithms` tool; it does not
/// change how the simulation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommunicationModel {
    /// The rule reads full neighbor states (shared-memory style simulation).
    FullStateExchange,
    /// One carrier bit per round: beep or listen, with sender collision
    /// detection (Cornejo & Kuhn 2010; Afek et al. 2013).
    Beeping,
    /// One letter from a constant alphabet per round, detecting only
    /// "no neighbor sent it" vs "some neighbor sent it"
    /// (Emek & Wattenhofer 2013).
    StoneAge,
    /// Θ(log n)-bit messages per round (Luby-style priorities).
    MessagePassing,
    /// Not distributed at all: a centralized or sequential algorithm.
    Centralized,
}

impl CommunicationModel {
    /// Short label for tables and CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            CommunicationModel::FullStateExchange => "full-state-exchange",
            CommunicationModel::Beeping => "beeping",
            CommunicationModel::StoneAge => "stone-age",
            CommunicationModel::MessagePassing => "message-passing",
            CommunicationModel::Centralized => "centralized",
        }
    }
}

impl fmt::Display for CommunicationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything an [`Algorithm::step`] may use: the trial RNG stream and the
/// activation chosen by the scheduler for this round.
pub struct StepCtx<'a> {
    /// The shared RNG stream of the trial.
    pub rng: &'a mut dyn RngCore,
    /// Which vertices the scheduler activated this round.
    pub activation: &'a Activation,
}

impl<'a> StepCtx<'a> {
    /// A context that activates every vertex (the synchronous model).
    pub fn synchronous(rng: &'a mut dyn RngCore) -> Self {
        StepCtx {
            rng,
            activation: &Activation::All,
        }
    }
}

/// A runnable MIS algorithm instance, bound to one graph for one trial.
///
/// This is the object-safe seam between the experiment harness and the
/// algorithm implementations: the harness only ever holds a
/// `Box<dyn Algorithm + 'g>`. Most accessors have default implementations
/// that delegate to the wrapped [`Process`]; adapters override the methods
/// where they have extra capabilities (scheduled steps, fault injection) and
/// the capability flags that advertise them.
pub trait Algorithm {
    /// The registry key / display name of the algorithm.
    fn name(&self) -> &'static str;

    /// The weakest communication model the algorithm's rule needs.
    fn communication_model(&self) -> CommunicationModel;

    /// The wrapped process (read-only).
    fn process(&self) -> &dyn Process;

    /// The wrapped process (mutable).
    fn process_mut(&mut self) -> &mut dyn Process;

    /// Number of vertices of the underlying graph.
    fn n(&self) -> usize {
        self.process().n()
    }

    /// Rounds executed so far.
    fn round(&self) -> usize {
        self.process().round()
    }

    /// Executes one round under the activation in `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx.activation` is a subset but the algorithm does not
    /// support partial activation (see
    /// [`supports_partial_activation`](Self::supports_partial_activation)).
    fn step(&mut self, ctx: StepCtx<'_>) {
        match ctx.activation {
            Activation::All => self.process_mut().step(ctx.rng),
            Activation::Subset(_) => panic!(
                "algorithm '{}' does not support partial activation; \
                 use the synchronous scheduler",
                self.name()
            ),
        }
    }

    /// `true` if the black set is an MIS and no state will change again
    /// (for the 3-state process: no *blackness* will change again).
    fn is_stabilized(&self) -> bool {
        self.process().is_stabilized()
    }

    /// Aggregate counts of the current vertex partition.
    fn counts(&self) -> StateCounts {
        self.process().counts()
    }

    /// The current set of black vertices.
    fn black_set(&self) -> VertexSet {
        self.process().black_set()
    }

    /// States per vertex (the paper's "few states" metric); `usize::MAX`
    /// for algorithms with super-constant state.
    fn states_per_vertex(&self) -> usize {
        self.process().states_per_vertex()
    }

    /// Total random bits drawn so far.
    fn random_bits_used(&self) -> u64 {
        self.process().random_bits_used()
    }

    /// Overwrites the states of `ceil(fraction · n)` uniformly chosen
    /// vertices with uniformly random states (a transient fault) and returns
    /// the number of vertices whose state actually changed.
    ///
    /// The default implementation does nothing and returns 0; algorithms
    /// that can be corrupted override it and set
    /// [`supports_fault_injection`](Self::supports_fault_injection).
    /// Overriders are expected to delegate to
    /// [`inject_faults_targeted`](Self::inject_faults_targeted) on a
    /// [`fault_victims`] sample, so random-count and targeted faults share
    /// one corruption recipe (and one RNG-stream shape).
    fn inject_faults(&mut self, _fraction: f64, _rng: &mut dyn RngCore) -> usize {
        0
    }

    /// Overwrites the states of exactly the given `victims` with uniformly
    /// random states (a *targeted* transient fault) and returns the number
    /// of vertices whose state actually changed.
    ///
    /// The default implementation does nothing and returns 0; algorithms
    /// that can be corrupted override it together with
    /// [`inject_faults`](Self::inject_faults) under the same
    /// [`supports_fault_injection`](Self::supports_fault_injection) flag.
    fn inject_faults_targeted(&mut self, _victims: &[VertexId], _rng: &mut dyn RngCore) -> usize {
        0
    }

    /// Forces vertex `u`'s protocol-visible state to black (or white),
    /// delta-repairing any incremental bookkeeping (frontier membership,
    /// black/black1 neighbor counters) exactly like the
    /// [`apply_mutation`](Self::apply_mutation) state-carryover path.
    /// Returns whether the state actually changed.
    ///
    /// This is the seam [`crate::byzantine::ByzantineOverlay`] drives after
    /// every round; richer per-algorithm state (the 3-color switch level,
    /// stone-age letters) is deliberately left untouched so the adversary
    /// controls exactly the blackness neighbors observe. The default does
    /// nothing and returns `false`; algorithms that support adversarial
    /// overrides implement it and set
    /// [`supports_byzantine`](Self::supports_byzantine).
    fn set_byzantine_state(&mut self, _u: VertexId, _black: bool) -> bool {
        false
    }

    /// Applies a batch of topology mutations (edge insert/delete, vertex
    /// join/leave) and incrementally re-derives all bookkeeping, so the
    /// algorithm **re-stabilizes from its current configuration** instead
    /// of restarting. Returns the normalized [`CommittedDelta`] (net edge
    /// changes, old/new vertex counts).
    ///
    /// The default declines with [`MutationError::Unsupported`] and leaves
    /// the state untouched; algorithms that can follow topology changes
    /// override it and set
    /// [`supports_topology_change`](Self::supports_topology_change). The
    /// harness consults that flag before scheduling churn.
    ///
    /// # Errors
    ///
    /// [`MutationError::Unsupported`] if the algorithm (or a sub-process)
    /// cannot follow topology changes; [`MutationError::Graph`] if the
    /// delta is invalid against the current graph. Either way the
    /// algorithm's state is unchanged.
    fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        let _ = delta;
        Err(MutationError::Unsupported)
    }

    /// The graph the algorithm is currently running on, if it exposes one —
    /// after [`apply_mutation`](Self::apply_mutation) this is the *mutated*
    /// graph, which the harness needs for churn generation and final MIS
    /// validation. Algorithms without topology-change support may return
    /// `None` (the harness falls back to the trial's original graph).
    fn current_graph(&self) -> Option<&Graph> {
        None
    }

    /// `true` if [`apply_mutation`](Self::apply_mutation) actually applies
    /// topology changes (rather than declining with
    /// [`MutationError::Unsupported`]).
    fn supports_topology_change(&self) -> bool {
        false
    }

    /// `true` if rounds can run in intra-round data-parallel phases
    /// ([`ExecutionMode::Parallel`]).
    fn supports_parallel(&self) -> bool {
        false
    }

    /// `true` if coins can come from the counter-based per-vertex RNG
    /// (thread-count-invariant parallel trajectories).
    fn supports_counter_rng(&self) -> bool {
        false
    }

    /// `true` if [`step`](Self::step) accepts [`Activation::Subset`].
    fn supports_partial_activation(&self) -> bool {
        false
    }

    /// `true` if [`inject_faults`](Self::inject_faults) actually corrupts
    /// state.
    fn supports_fault_injection(&self) -> bool {
        false
    }

    /// `true` if [`set_byzantine_state`](Self::set_byzantine_state)
    /// actually overrides state (so the harness may attach a
    /// [`crate::byzantine::ByzantineOverlay`]).
    fn supports_byzantine(&self) -> bool {
        false
    }

    /// `true` if per-round [`counts`](Self::counts) traces are meaningful.
    /// One-shot baselines (greedy, Luby, the sequential self-stabilizing
    /// algorithm) run to completion inside their factory and report `false`.
    fn supports_trace(&self) -> bool {
        true
    }
}

/// Per-trial construction parameters handed to an [`AlgorithmFactory`].
#[derive(Debug, Clone, Copy)]
pub struct AlgorithmConfig {
    /// Initial-state strategy (self-stabilizing algorithms accept any).
    pub init: InitStrategy,
    /// Sequential shared-stream rounds or counter-based parallel rounds.
    /// Algorithms that do not support parallel execution ignore this.
    pub execution: ExecutionMode,
    /// How full synchronous rounds traverse the graph (adaptive
    /// dense/sparse by default); bit-identical across choices. Algorithms
    /// without a frontier engine ignore this.
    pub strategy: RoundStrategy,
    /// Seed keying the counter-based RNG of parallel-mode runs.
    pub counter_seed: u64,
}

/// Builds [`Algorithm`] instances for one registry key.
///
/// `init` is the single entry point the harness calls per trial; it may
/// consume randomness (initial states, or even a whole run for one-shot
/// baselines), which is why it receives the trial RNG.
pub trait AlgorithmFactory: Send + Sync {
    /// The stable registry key (also used in specs and CSV output).
    fn key(&self) -> &'static str;

    /// One-line human-readable description for `list_algorithms`.
    fn description(&self) -> &'static str;

    /// The weakest communication model the algorithm's rule needs.
    fn communication_model(&self) -> CommunicationModel;

    /// Creates one algorithm instance on `graph` for one trial.
    fn init<'g>(
        &self,
        graph: &'g Graph,
        config: &AlgorithmConfig,
        rng: &mut dyn RngCore,
    ) -> Box<dyn Algorithm + 'g>;
}

/// A string-keyed collection of [`AlgorithmFactory`]s.
///
/// Keys are unique; registering a duplicate panics (it is always a
/// programming error). Iteration order is the lexicographic key order, so
/// listings and error messages are deterministic.
#[derive(Default)]
pub struct Registry {
    entries: BTreeMap<&'static str, Box<dyn AlgorithmFactory>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds a factory under its [`key`](AlgorithmFactory::key).
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered.
    pub fn register(&mut self, factory: Box<dyn AlgorithmFactory>) {
        let key = factory.key();
        assert!(
            self.entries.insert(key, factory).is_none(),
            "algorithm key '{key}' registered twice"
        );
    }

    /// Looks up a factory by key.
    pub fn get(&self, key: &str) -> Option<&dyn AlgorithmFactory> {
        self.entries.get(key).map(|f| f.as_ref())
    }

    /// `true` if `key` is registered.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All registered keys, in lexicographic order.
    pub fn keys(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// All registered factories, in key order.
    pub fn factories(&self) -> impl Iterator<Item = &dyn AlgorithmFactory> {
        self.entries.values().map(|f| f.as_ref())
    }

    /// Number of registered algorithms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no algorithm is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("keys", &self.keys())
            .finish()
    }
}

/// Picks `ceil(fraction · n)` distinct fault victims, uniformly at random
/// (uniform without replacement, via a partial Fisher–Yates shuffle that
/// costs `O(count)` swaps and draws rather than `O(n)`). Shared by every
/// [`Algorithm::inject_faults`] implementation so all algorithms corrupt
/// the same number of vertices for the same fraction.
///
/// # Panics
///
/// Panics if `fraction` is not in `[0, 1]`.
pub fn fault_victims(n: usize, fraction: f64, rng: &mut dyn RngCore) -> Vec<VertexId> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1], got {fraction}"
    );
    let count = ((fraction * n as f64).ceil() as usize).min(n);
    victim_sample(n, count, rng)
}

/// Picks `min(count, n)` distinct vertices uniformly at random, via the
/// same partial Fisher–Yates shuffle as [`fault_victims`] (which delegates
/// here). Shared selection plumbing for count-based fault specs and
/// Byzantine vertex placement.
pub fn victim_sample(n: usize, count: usize, rng: &mut dyn RngCore) -> Vec<VertexId> {
    let count = count.min(n);
    let mut ids: Vec<VertexId> = (0..n).collect();
    for i in 0..count {
        let j = rng.gen_range(i..n);
        ids.swap(i, j);
    }
    ids.truncate(count);
    ids
}

/// Draws a uniformly random boolean (one random bit) from a dyn RNG —
/// convenience for `inject_faults` implementations.
pub(crate) fn coin(rng: &mut dyn RngCore) -> bool {
    rng.gen_bool(0.5)
}

/// Draws a uniformly random value in `{0, 1, 2}` — convenience for
/// `inject_faults` implementations over 3-valued state spaces.
pub fn uniform3(rng: &mut dyn RngCore) -> u8 {
    rng.gen_range(0..3u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    struct DummyFactory(&'static str);

    impl AlgorithmFactory for DummyFactory {
        fn key(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "dummy"
        }
        fn communication_model(&self) -> CommunicationModel {
            CommunicationModel::Centralized
        }
        fn init<'g>(
            &self,
            _graph: &'g Graph,
            _config: &AlgorithmConfig,
            _rng: &mut dyn RngCore,
        ) -> Box<dyn Algorithm + 'g> {
            unimplemented!("never constructed in these tests")
        }
    }

    #[test]
    fn registry_is_sorted_and_queryable() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.register(Box::new(DummyFactory("zeta")));
        r.register(Box::new(DummyFactory("alpha")));
        assert_eq!(r.keys(), vec!["alpha", "zeta"]);
        assert_eq!(r.len(), 2);
        assert!(r.contains("alpha"));
        assert!(!r.contains("beta"));
        assert_eq!(r.get("zeta").unwrap().key(), "zeta");
        assert!(r.get("beta").is_none());
        assert_eq!(r.factories().count(), 2);
        assert!(format!("{r:?}").contains("alpha"));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_key_panics() {
        let mut r = Registry::new();
        r.register(Box::new(DummyFactory("a")));
        r.register(Box::new(DummyFactory("a")));
    }

    #[test]
    fn fault_victims_counts_and_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(fault_victims(10, 0.0, &mut rng).len(), 0);
        assert_eq!(fault_victims(10, 1.0, &mut rng).len(), 10);
        assert_eq!(fault_victims(10, 0.25, &mut rng).len(), 3); // ceil(2.5)
        let v = fault_victims(5, 0.5, &mut rng);
        assert!(v.iter().all(|&u| u < 5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len(), "victims must be distinct");
    }

    #[test]
    fn victim_sample_counts_and_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(victim_sample(10, 0, &mut rng).is_empty());
        assert_eq!(victim_sample(10, 25, &mut rng).len(), 10, "count clamps");
        assert!(victim_sample(0, 5, &mut rng).is_empty());
        let v = victim_sample(20, 7, &mut rng);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|&u| u < 20));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len(), "sample must be distinct");
    }

    #[test]
    fn fault_victims_delegates_to_victim_sample() {
        // Same seed, same count => identical RNG stream and selection.
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(
            fault_victims(40, 0.25, &mut a),
            victim_sample(40, 10, &mut b)
        );
        assert_eq!(a.next_u64(), b.next_u64(), "streams must stay aligned");
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn fault_victims_rejects_bad_fraction() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        fault_victims(4, -0.1, &mut rng);
    }

    #[test]
    fn communication_model_labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            CommunicationModel::FullStateExchange,
            CommunicationModel::Beeping,
            CommunicationModel::StoneAge,
            CommunicationModel::MessagePassing,
            CommunicationModel::Centralized,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 5);
        assert_eq!(CommunicationModel::Beeping.to_string(), "beeping");
    }
}
