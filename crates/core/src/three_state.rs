use std::sync::Arc;

use mis_graph::{CommittedDelta, Graph, GraphDelta, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::counter_rng::{CounterRng, DRAW_STATE};
use crate::engine::{FrontierEngine, VertexClass};
use crate::exec::{resolve_threads, ExecutionMode, RoundStrategy};
use crate::init::InitStrategy;
use crate::mutation::{GraphRef, MutationError};
use crate::packed::PackedStates;
use crate::process::{Process, StateCounts};
use crate::sync::AtomicU32Vec;

/// Vertex state of the 3-state MIS process (Definition 5).
///
/// `Black1` and `Black0` are both "black" (MIS membership); the extra bit
/// lets a neighbor distinguish a *fresh* black claim (`Black1`) from a
/// *retiring* one (`Black0`) without collision detection, which is why this
/// variant fits the synchronous stone age model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreeState {
    /// Black with the "assert" bit set.
    Black1,
    /// Black with the "assert" bit cleared.
    Black0,
    /// Not in the MIS.
    White,
}

impl ThreeState {
    /// `true` for both black variants.
    pub fn is_black(self) -> bool {
        matches!(self, ThreeState::Black1 | ThreeState::Black0)
    }

    /// The 2-bit code used by the packed state storage.
    #[inline]
    pub(crate) fn code(self) -> u8 {
        match self {
            ThreeState::White => 0,
            ThreeState::Black1 => 1,
            ThreeState::Black0 => 2,
        }
    }

    /// Inverse of [`code`](Self::code).
    #[inline]
    pub(crate) fn from_code(code: u8) -> Self {
        match code {
            0 => ThreeState::White,
            1 => ThreeState::Black1,
            2 => ThreeState::Black0,
            other => unreachable!("invalid 3-state code {other}"),
        }
    }
}

/// The 3-state local rule. Active vertices re-draw from `{black1, black0}`;
/// a non-active `black0` vertex (one with a `black1` neighbor) retires to
/// white, so every black vertex is pending. A white vertex is pending iff it
/// is active (no black neighbor).
fn classify<'a>(
    states: &'a PackedStates,
    black1_nbrs: &'a AtomicU32Vec,
) -> impl Fn(VertexId, u32) -> VertexClass + Sync + 'a {
    move |u, black_nbrs| {
        let (active, pending) = match ThreeState::from_code(states.get(u)) {
            ThreeState::Black1 => (true, true),
            ThreeState::Black0 => (black1_nbrs.get(u) == 0, true),
            ThreeState::White => {
                let a = black_nbrs == 0;
                (a, a)
            }
        };
        VertexClass { active, pending }
    }
}

/// The **3-state MIS process** of Definition 5.
///
/// Update rule for vertex `u` with previous state `c` and neighbor states
/// `NC`:
///
/// * if `c = black1`, or (`c = black0` and `NC` contains no `black1`), or
///   (`c = white` and `NC` contains no black state) — draw a uniformly
///   random state from `{black1, black0}`;
/// * else if `c = black0` — become `white`;
/// * else — keep the state.
///
/// A *stable black* vertex (black with no black neighbor) keeps alternating
/// between `black1` and `black0` forever; stability is therefore defined on
/// the black/non-black projection, exactly as in the paper.
///
/// Note on isolated vertices: Definition 5 phrases the white condition as
/// `NC_t(u) = {white}`; for a vertex with no neighbors that set is empty, so
/// a literal reading would leave an isolated white vertex white forever and
/// the black set would never become maximal. We read the condition as "no
/// neighbor is black", which coincides with the paper on every vertex that
/// has at least one neighbor and makes isolated vertices join the MIS.
///
/// States are stored bit-packed (2 bits per vertex) and rounds run through
/// the incremental [`FrontierEngine`]: a [`step`](Process::step) touches
/// only the frontier (black vertices and active whites — stable black
/// vertices keep alternating by definition, so they stay on it) and the
/// neighborhoods of vertices that changed, and
/// [`is_stabilized`](Process::is_stabilized)/[`counts`](Process::counts) are
/// `O(1)`. [`step_reference`](ThreeStateProcess::step_reference) retains the
/// naive full-scan path for differential testing.
///
/// # Execution modes
///
/// Sequential mode (the default) draws all coins from the shared stream in
/// ascending vertex order (bit-identical to the reference); after
/// [`set_execution`](Self::set_execution) with
/// [`ExecutionMode::Parallel`], coins are counter-based pure functions of
/// `(run_seed, vertex, round)`, rounds run in data-parallel phases, the
/// shared RNG argument is ignored, and results are bit-identical for every
/// thread count.
///
/// # Example
///
/// ```
/// use mis_core::{ThreeStateProcess, Process, init::InitStrategy};
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let g = generators::complete(64);
/// let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
/// p.run_to_stabilization(&mut rng, 10_000).unwrap();
/// assert!(mis_check::is_mis(&g, &p.black_set()));
/// ```
#[derive(Debug, Clone)]
pub struct ThreeStateProcess<'g> {
    graph: GraphRef<'g>,
    states: PackedStates,
    /// Number of `black1` neighbors per vertex, delta-maintained alongside
    /// the engine's black-neighbor counters (atomically typed so the
    /// parallel scatter phase can update it concurrently).
    black1_nbrs: AtomicU32Vec,
    engine: FrontierEngine,
    mode: ExecutionMode,
    strategy: RoundStrategy,
    /// Whether the most recent full synchronous round ran the dense path.
    last_round_dense: bool,
    counter: CounterRng,
    round: usize,
    random_bits: u64,
    worklist: Vec<VertexId>,
    changes: Vec<(VertexId, ThreeState)>,
    /// Recycled per-worker change buffers of the parallel round path.
    change_pool: Vec<Vec<(VertexId, ThreeState, ThreeState)>>,
}

impl<'g> ThreeStateProcess<'g> {
    /// Creates the process on `graph` with the given initial state vector.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<ThreeState>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        let mut p = ThreeStateProcess {
            black1_nbrs: AtomicU32Vec::new(graph.n()),
            engine: FrontierEngine::new(graph.n()),
            graph: GraphRef::Borrowed(graph),
            states: PackedStates::from_codes(states.into_iter().map(ThreeState::code)),
            mode: ExecutionMode::Sequential,
            strategy: RoundStrategy::Auto,
            last_round_dense: false,
            counter: CounterRng::new(0),
            round: 0,
            random_bits: 0,
            worklist: Vec::new(),
            changes: Vec::new(),
            change_pool: Vec::new(),
        };
        p.rebuild_engine();
        p
    }

    /// Creates the process with states drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        Self::new(graph, init.three_state(graph.n(), rng))
    }

    /// Selects the execution mode for subsequent rounds and (re-)keys the
    /// counter-based RNG with `run_seed`.
    pub fn set_execution(&mut self, mode: ExecutionMode, run_seed: u64) {
        self.mode = mode;
        self.counter = CounterRng::new(run_seed);
    }

    /// The current execution mode.
    pub fn execution_mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Selects how full synchronous rounds traverse the graph; see
    /// [`RoundStrategy`]. The choice never changes results.
    pub fn set_strategy(&mut self, strategy: RoundStrategy) {
        self.strategy = strategy;
    }

    /// The current round strategy.
    pub fn strategy(&self) -> RoundStrategy {
        self.strategy
    }

    /// `true` if the most recent [`step`](Process::step) ran the dense
    /// full-sweep path.
    pub fn last_round_was_dense(&self) -> bool {
        self.last_round_dense
    }

    /// The underlying graph (the mutated one after
    /// [`apply_mutation`](Self::apply_mutation)).
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// Applies a batch of topology mutations and incrementally re-derives
    /// all bookkeeping — the engine's black-neighbor counters *and* the
    /// process-owned `black1` counters — so the process re-stabilizes from
    /// the current configuration instead of restarting. New vertices start
    /// white; the self-stabilizing rule absorbs them. Bit-identical to a
    /// from-scratch engine rebuild on the new graph with the current states.
    ///
    /// On error (an invalid delta) the process state is untouched.
    pub fn apply_mutation(&mut self, delta: &GraphDelta) -> Result<CommittedDelta, MutationError> {
        let (new_graph, committed) = self.graph.get().apply_delta(delta)?;
        self.states.grow(committed.new_n);
        self.black1_nbrs.grow(committed.new_n);
        self.engine.grow(committed.new_n);
        let black1 = ThreeState::Black1.code();
        for &(u, v) in &committed.removed {
            self.engine.edge_update(u, v, false);
            if self.states.get(u) == black1 {
                self.black1_nbrs.sub_mut(v, 1);
            }
            if self.states.get(v) == black1 {
                self.black1_nbrs.sub_mut(u, 1);
            }
        }
        for &(u, v) in &committed.inserted {
            self.engine.edge_update(u, v, true);
            if self.states.get(u) == black1 {
                self.black1_nbrs.add_mut(v, 1);
            }
            if self.states.get(v) == black1 {
                self.black1_nbrs.add_mut(u, 1);
            }
        }
        self.graph = GraphRef::Owned(Arc::new(new_graph));
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .flush(self.graph.get(), classify(states, black1_nbrs));
        Ok(committed)
    }

    /// Read-only view of the incremental engine bookkeeping, for tests and
    /// diagnostics.
    pub fn engine(&self) -> &FrontierEngine {
        &self.engine
    }

    /// Current state of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: VertexId) -> ThreeState {
        assert!(u < self.n(), "vertex {u} out of range");
        ThreeState::from_code(self.states.get(u))
    }

    /// The full state vector, materialized from the packed storage in `O(n)`.
    pub fn states(&self) -> Vec<ThreeState> {
        self.states.decode(ThreeState::from_code)
    }

    /// Number of black (`black1` or `black0`) neighbors of `u`.
    pub fn black_neighbor_count(&self, u: VertexId) -> usize {
        self.engine.black_neighbor_count(u)
    }

    /// Number of `black1` neighbors of `u` (delta-maintained).
    pub fn black1_neighbor_count(&self, u: VertexId) -> usize {
        self.black1_nbrs.get(u) as usize
    }

    /// Overwrites the state of one vertex (transient-fault injection). All
    /// neighbor bookkeeping is delta-updated in `O(deg(u))`; no full rebuild
    /// happens.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_state(&mut self, u: VertexId, state: ThreeState) {
        let old = self.state(u);
        if old == state {
            return;
        }
        self.states.set(u, state.code());
        self.apply_black1_delta(u, old, state);
        self.engine.set_black(self.graph.get(), u, state.is_black());
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .flush(self.graph.get(), classify(states, black1_nbrs));
    }

    /// Whether `u` will re-randomize its state in the next round.
    pub fn is_active(&self, u: VertexId) -> bool {
        self.engine.is_active(u)
    }

    /// `true` if `u` is stable black: black with no black neighbor. Its state
    /// keeps alternating between `black1` and `black0` but its *blackness*
    /// never changes.
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.engine.is_stable_black(u)
    }

    /// `true` if `u` is stable: stable black or adjacent to a stable black vertex.
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.engine.is_stable(u)
    }

    /// Executes one synchronous round with the naive full-scan reference
    /// implementation (`O(n + m)`): identical states and RNG stream as a
    /// sequential-mode [`step`](Process::step), retained as the oracle for
    /// the engine's trace-equality tests.
    pub fn step_reference(&mut self, rng: &mut dyn RngCore) {
        let n = self.n();
        let mut black_nbrs = vec![0u32; n];
        let mut black1_nbrs = vec![0u32; n];
        for u in self.graph.get().vertices() {
            let s = ThreeState::from_code(self.states.get(u));
            if s.is_black() {
                for v in self.graph.get().neighbors(u) {
                    black_nbrs[v] += 1;
                    if s == ThreeState::Black1 {
                        black1_nbrs[v] += 1;
                    }
                }
            }
        }
        let next = self.states.clone();
        for u in self.graph.get().vertices() {
            let s = ThreeState::from_code(self.states.get(u));
            let active = match s {
                ThreeState::Black1 => true,
                ThreeState::Black0 => black1_nbrs[u] == 0,
                ThreeState::White => black_nbrs[u] == 0,
            };
            if active {
                self.random_bits += 1;
                let drawn = if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                };
                next.set(u, drawn.code());
            } else if s == ThreeState::Black0 {
                // black0 with a black1 neighbor retires to white.
                next.set(u, ThreeState::White.code());
            }
        }
        self.states = next;
        self.rebuild_engine();
        self.round += 1;
    }

    /// Delta-updates the `black1` neighbor counters (and the affected
    /// activity classifications) after `u` changed `old -> new`.
    fn apply_black1_delta(&mut self, u: VertexId, old: ThreeState, new: ThreeState) {
        let was_black1 = old == ThreeState::Black1;
        let is_black1 = new == ThreeState::Black1;
        if was_black1 == is_black1 {
            return;
        }
        for v in self.graph.get().neighbors(u) {
            if is_black1 {
                self.black1_nbrs.add(v, 1);
            } else {
                self.black1_nbrs.sub(v, 1);
            }
            self.engine.mark_dirty(v);
        }
    }

    fn rebuild_engine(&mut self) {
        self.recount_black1();
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine.rebuild(
            self.graph.get(),
            |u| ThreeState::from_code(states.get(u)).is_black(),
            classify(states, black1_nbrs),
        );
    }

    /// Recomputes the `black1` neighbor counters from scratch with plain
    /// (non-atomic) adds; the process-owned half of a dense recount.
    fn recount_black1(&mut self) {
        self.black1_nbrs.clear_all();
        let states = &self.states;
        let black1_nbrs = &mut self.black1_nbrs;
        for u in self.graph.get().vertices() {
            if states.get(u) == ThreeState::Black1.code() {
                for &v in self.graph.get().neighbors(u).as_compact() {
                    black1_nbrs.add_mut(v.index(), 1);
                }
            }
        }
    }

    /// One **dense** sequential round: flat sweep deciding from the cached
    /// activity flags (active vertices draw from `{black1, black0}`,
    /// non-active `black0` vertices retire to white), then a full recount of
    /// the `black1` counters and the engine bookkeeping. Same coins in the
    /// same ascending order as the sparse path, hence bit-identical.
    fn step_dense_sequential(&mut self, rng: &mut dyn RngCore) {
        let n = self.graph.get().n();
        let mut draws = 0u64;
        {
            let states = &mut self.states;
            let engine = &self.engine;
            for u in 0..n {
                if engine.is_active(u) {
                    draws += 1;
                    let new = if rng.gen_bool(0.5) {
                        ThreeState::Black1
                    } else {
                        ThreeState::Black0
                    };
                    if new.code() != states.get(u) {
                        states.set_mut(u, new.code());
                        engine.stage_black(u, true);
                    }
                } else if states.get(u) == ThreeState::Black0.code() {
                    // black0 with a black1 neighbor retires to white.
                    states.set_mut(u, ThreeState::White.code());
                    engine.stage_black(u, false);
                }
            }
        }
        self.random_bits += draws;
        self.recount_black1();
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .recount(self.graph.get(), classify(states, black1_nbrs));
        self.round += 1;
    }

    /// One **dense** counter-based round on `threads` threads: a
    /// volume-balanced decide sweep dispatch, then a single fused recount
    /// dispatch whose first pass also rebuilds the `black1` counters (the
    /// process hook of [`FrontierEngine::recount_par_with`]) — two pool
    /// dispatches per dense round. Bit-identical for every thread count and
    /// to the sparse parallel path.
    fn step_dense_parallel(&mut self, threads: usize) {
        let round = self.round as u64;
        let counter = self.counter;
        let states = &self.states;
        let graph = self.graph.get();
        let draws = self.engine.dense_sweep(graph, threads, |engine, range| {
            let mut draws = 0u64;
            for u in range {
                if engine.is_active(u) {
                    draws += 1;
                    let new = if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                        ThreeState::Black1
                    } else {
                        ThreeState::Black0
                    };
                    if new.code() != states.get(u) {
                        states.set(u, new.code());
                        engine.stage_black(u, true);
                    }
                } else if states.get(u) == ThreeState::Black0.code() {
                    states.set(u, ThreeState::White.code());
                    engine.stage_black(u, false);
                }
            }
            draws
        });
        self.random_bits += draws;
        self.black1_nbrs.clear_all();
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .recount_par_with(graph, threads, classify(states, black1_nbrs), |range| {
                // Process hook, fused into the recount's scatter pass:
                // rebuild the black1 neighbor counters (commutative atomic
                // adds keyed off the already-settled states).
                for u in range {
                    if states.get(u) == ThreeState::Black1.code() {
                        for &v in graph.neighbors(u).as_compact() {
                            black1_nbrs.add(v.index(), 1);
                        }
                    }
                }
            });
        self.round += 1;
    }

    /// One sequential round: ascending-order draws from the shared stream,
    /// bit-identical to [`step_reference`](Self::step_reference).
    fn step_sequential(&mut self, rng: &mut dyn RngCore) {
        // The frontier holds every vertex whose rule may fire: all black
        // vertices plus active whites. Only active vertices draw, in
        // ascending vertex order — the same RNG stream as the full scan.
        self.engine.begin_round(&mut self.worklist);
        self.changes.clear();
        for &u in &self.worklist {
            if self.engine.is_active(u) {
                self.random_bits += 1;
                let new = if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                };
                if new != ThreeState::from_code(self.states.get(u)) {
                    self.changes.push((u, new));
                }
            } else {
                // Pending but not active: black0 with a black1 neighbor
                // retires to white.
                debug_assert_eq!(self.state(u), ThreeState::Black0);
                self.changes.push((u, ThreeState::White));
            }
        }
        for i in 0..self.changes.len() {
            let (u, state) = self.changes[i];
            let old = ThreeState::from_code(self.states.get(u));
            self.states.set(u, state.code());
            self.apply_black1_delta(u, old, state);
            self.engine.set_black(self.graph.get(), u, state.is_black());
        }
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .flush(self.graph.get(), classify(states, black1_nbrs));
        self.round += 1;
    }

    /// Executes one round in which only the vertices of `scheduled` are
    /// activated: a scheduled *active* vertex re-draws from
    /// `{black1, black0}`, a scheduled non-active `black0` vertex (one with
    /// a `black1` neighbor) retires to white, and every other vertex keeps
    /// its state. All decisions are made against the pre-round
    /// configuration, in ascending vertex order.
    ///
    /// # Panics
    ///
    /// Panics if `scheduled.universe() != n`.
    pub fn step_scheduled(&mut self, scheduled: &VertexSet, rng: &mut dyn RngCore) {
        assert_eq!(
            scheduled.universe(),
            self.n(),
            "scheduled set universe must match the graph"
        );
        self.changes.clear();
        for u in scheduled.iter() {
            let old = ThreeState::from_code(self.states.get(u));
            if self.engine.is_active(u) {
                self.random_bits += 1;
                let new = if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                };
                if new != old {
                    self.changes.push((u, new));
                }
            } else if old == ThreeState::Black0 {
                // black0 with a black1 neighbor retires to white.
                self.changes.push((u, ThreeState::White));
            }
        }
        for i in 0..self.changes.len() {
            let (u, state) = self.changes[i];
            let old = ThreeState::from_code(self.states.get(u));
            self.states.set(u, state.code());
            self.apply_black1_delta(u, old, state);
            self.engine.set_black(self.graph.get(), u, state.is_black());
        }
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        self.engine
            .flush(self.graph.get(), classify(states, black1_nbrs));
        self.round += 1;
    }

    /// One counter-based round on `threads` threads; results are
    /// bit-identical for every thread count. The phase structure lives in
    /// [`FrontierEngine::par_round`]; this supplies the 3-state decide
    /// (active vertices draw, pending-but-not-active black0 vertices retire
    /// deterministically) and scatter (blackness flips through the engine,
    /// black1 deltas through the process-owned counters, shared dirty
    /// marks).
    fn step_parallel(&mut self, threads: usize) {
        self.engine.begin_round_unsorted(&mut self.worklist);
        let round = self.round as u64;
        let counter = self.counter;
        let states = &self.states;
        let black1_nbrs = &self.black1_nbrs;
        let graph = self.graph.get();
        type Change = (VertexId, ThreeState, ThreeState);
        let change_pool = &mut self.change_pool;
        let draws = self.engine.par_round(
            graph,
            &self.worklist,
            threads,
            |engine, chunk, changes: &mut Vec<Change>| {
                let mut draws = 0u64;
                for &u in chunk {
                    let old = ThreeState::from_code(states.get(u));
                    if engine.is_active(u) {
                        draws += 1;
                        let new = if counter.gen_bool(0.5, u as u64, round, DRAW_STATE) {
                            ThreeState::Black1
                        } else {
                            ThreeState::Black0
                        };
                        if new != old {
                            states.set(u, new.code());
                            changes.push((u, old, new));
                        }
                    } else {
                        debug_assert_eq!(old, ThreeState::Black0);
                        states.set(u, ThreeState::White.code());
                        changes.push((u, old, ThreeState::White));
                    }
                }
                draws
            },
            |engine, &(u, old, new), sink| {
                let was_black1 = old == ThreeState::Black1;
                let is_black1 = new == ThreeState::Black1;
                if was_black1 != is_black1 {
                    for v in graph.neighbors(u) {
                        if is_black1 {
                            black1_nbrs.add(v, 1);
                        } else {
                            black1_nbrs.sub(v, 1);
                        }
                        engine.mark_dirty_concurrent(v, sink);
                    }
                }
                engine.scatter_black(graph, u, new.is_black(), sink);
            },
            classify(states, black1_nbrs),
            change_pool,
        );
        self.random_bits += draws;
        self.round += 1;
    }
}

impl Process for ThreeStateProcess<'_> {
    fn n(&self) -> usize {
        self.graph.get().n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        let dense = match self.strategy {
            RoundStrategy::Sparse => false,
            RoundStrategy::Dense => true,
            RoundStrategy::Auto => self.engine.prefers_dense(self.graph.get()),
        };
        self.last_round_dense = dense;
        match (self.mode, dense) {
            (ExecutionMode::Sequential, false) => self.step_sequential(rng),
            (ExecutionMode::Sequential, true) => self.step_dense_sequential(rng),
            (ExecutionMode::Parallel { threads }, false) => {
                self.step_parallel(resolve_threads(threads))
            }
            (ExecutionMode::Parallel { threads }, true) => {
                self.step_dense_parallel(resolve_threads(threads))
            }
        }
    }

    fn is_stabilized(&self) -> bool {
        // Stabilized (on the black/non-black projection) iff every vertex is
        // stable: the black set is then an MIS and blackness never changes,
        // even though stable black vertices keep flipping black1/black0. The
        // engine caches the unstable count, so this is O(1).
        self.engine.is_stabilized()
    }

    fn black_set(&self) -> VertexSet {
        self.engine.black_set()
    }

    fn active_set(&self) -> VertexSet {
        self.engine.active_set()
    }

    fn stable_black_set(&self) -> VertexSet {
        self.engine.stable_black_set()
    }

    fn unstable_set(&self) -> VertexSet {
        self.engine.unstable_set()
    }

    fn counts(&self) -> StateCounts {
        self.engine.counts()
    }

    fn states_per_vertex(&self) -> usize {
        3
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn apply_mutation_matches_fresh_process_on_mutated_graph() {
        let mut r = rng(402);
        let g = generators::gnp(40, 0.15, &mut r);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for _ in 0..5 {
            p.step(&mut r);
        }
        let (eu, ev) = g.edges().next().expect("dense gnp has an edge");
        let mut delta = GraphDelta::new();
        delta
            .remove_edge(eu, ev)
            .add_edge(0, g.n() - 1)
            .add_vertex([0, 1])
            .detach_vertex(2);
        let committed = p.apply_mutation(&delta).unwrap();
        assert_eq!(committed.new_n, g.n() + 1);
        assert_eq!(p.n(), g.n() + 1);
        assert_eq!(p.state(g.n()), ThreeState::White, "joined vertex is white");
        let g2 = p.graph().clone();
        let fresh = ThreeStateProcess::new(&g2, p.states());
        assert_eq!(fresh.counts(), p.counts());
        for u in g2.vertices() {
            assert_eq!(fresh.is_active(u), p.is_active(u), "active {u}");
            assert_eq!(fresh.is_stable(u), p.is_stable(u), "stable {u}");
            assert_eq!(
                fresh.black_neighbor_count(u),
                p.black_neighbor_count(u),
                "black_nbrs {u}"
            );
            assert_eq!(
                fresh.black1_neighbor_count(u),
                p.black1_neighbor_count(u),
                "black1_nbrs {u}"
            );
        }
        p.run_to_stabilization(&mut r, 100_000).unwrap();
        assert!(mis_check::is_mis(&g2, &p.black_set()));
    }

    #[test]
    fn invalid_mutation_leaves_state_untouched() {
        let g = generators::path(4);
        let mut p = ThreeStateProcess::new(
            &g,
            vec![
                ThreeState::White,
                ThreeState::Black1,
                ThreeState::Black0,
                ThreeState::White,
            ],
        );
        let before_states = p.states();
        let before_counts = p.counts();
        let mut delta = GraphDelta::new();
        delta.detach_vertex(99); // out of range
        assert!(p.apply_mutation(&delta).is_err());
        assert_eq!(p.states(), before_states);
        assert_eq!(p.counts(), before_counts);
        assert_eq!(p.n(), 4);
    }

    #[test]
    fn isolated_vertex_joins_the_mis() {
        let g = Graph::empty(3);
        let mut r = rng(0);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::AllWhite, &mut r);
        p.run_to_stabilization(&mut r, 1000).unwrap();
        assert_eq!(p.black_set().len(), 3);
        assert!(mis_check::is_mis(&g, &p.black_set()));
    }

    #[test]
    fn stable_black_vertices_keep_alternating_but_stay_black() {
        let g = generators::path(3);
        // Vertex 1 black, others white: an MIS, so stable immediately.
        let mut p = ThreeStateProcess::new(
            &g,
            vec![ThreeState::White, ThreeState::Black1, ThreeState::White],
        );
        assert!(p.is_stabilized());
        let mut r = rng(1);
        let mut seen_black1 = false;
        let mut seen_black0 = false;
        for _ in 0..20 {
            p.step(&mut r);
            assert!(p.is_stabilized());
            assert!(p.state(1).is_black());
            assert!(!p.state(0).is_black() && !p.state(2).is_black());
            match p.state(1) {
                ThreeState::Black1 => seen_black1 = true,
                ThreeState::Black0 => seen_black0 = true,
                ThreeState::White => unreachable!("stable black vertex became white"),
            }
        }
        assert!(
            seen_black1 && seen_black0,
            "stable black vertex should alternate"
        );
    }

    #[test]
    fn black0_with_black1_neighbor_retires_to_white() {
        let g = generators::path(2);
        let mut p = ThreeStateProcess::new(&g, vec![ThreeState::Black0, ThreeState::Black1]);
        // Vertex 0: black0 with a black1 neighbor -> not active -> becomes white.
        assert!(!p.is_active(0));
        assert!(p.is_active(1)); // black1 is always active
        let mut r = rng(2);
        p.step(&mut r);
        assert_eq!(p.state(0), ThreeState::White);
        assert!(p.state(1).is_black());
    }

    #[test]
    fn stabilizes_to_mis_on_various_graphs() {
        let mut r = rng(7);
        let graphs = vec![
            generators::complete(32),
            generators::path(50),
            generators::cycle(33),
            generators::star(40),
            generators::random_tree(100, &mut r),
            generators::gnp(120, 0.08, &mut r),
            generators::gnp(80, 0.6, &mut r),
            generators::disjoint_cliques(4, 9),
        ];
        for (i, g) in graphs.into_iter().enumerate() {
            for init in [
                InitStrategy::AllWhite,
                InitStrategy::AllBlack,
                InitStrategy::Random,
            ] {
                let mut p = ThreeStateProcess::with_init(&g, init, &mut r);
                p.run_to_stabilization(&mut r, 100_000)
                    .unwrap_or_else(|e| panic!("graph {i} with {init:?}: {e}"));
                assert!(
                    mis_check::is_mis(&g, &p.black_set()),
                    "graph {i}, init {init:?}"
                );
            }
        }
    }

    #[test]
    fn parallel_mode_stabilizes_and_is_thread_count_invariant() {
        let g = generators::gnp(100, 0.08, &mut rng(61));
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut r = rng(62);
            let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
            p.set_execution(ExecutionMode::Parallel { threads }, 7);
            for _ in 0..50 {
                if p.is_stabilized() {
                    break;
                }
                p.step(&mut r);
            }
            outcomes.push((p.states(), p.black_set(), p.counts(), p.random_bits_used()));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        // And the black projection stabilizes to an MIS eventually.
        let mut r = rng(63);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::AllBlack, &mut r);
        p.set_execution(ExecutionMode::Parallel { threads: 3 }, 8);
        p.run_to_stabilization(&mut r, 100_000).unwrap();
        assert!(mis_check::is_mis(&g, &p.black_set()));
    }

    #[test]
    fn counts_consistency() {
        let mut r = rng(9);
        let g = generators::gnp(50, 0.15, &mut r);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for _ in 0..40 {
            let c = p.counts();
            assert_eq!(c.black + c.non_black, g.n());
            assert_eq!(c.black, p.black_set().len());
            assert_eq!(c.active, p.active_set().len());
            assert!(mis_check::is_independent(&g, &p.stable_black_set()));
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn set_state_refreshes_bookkeeping() {
        let g = generators::complete(4);
        let mut p = ThreeStateProcess::new(&g, vec![ThreeState::White; 4]);
        p.set_state(0, ThreeState::Black1);
        assert!(
            !p.is_active(1),
            "white vertex with a black neighbor is not active"
        );
        assert_eq!(p.black1_neighbor_count(1), 1);
        p.set_state(0, ThreeState::White);
        assert!(p.is_active(1));
        assert_eq!(p.black1_neighbor_count(1), 0);
    }

    #[test]
    fn fast_step_matches_reference_step() {
        let g = generators::gnp(60, 0.1, &mut rng(41));
        let mut r_fast = rng(43);
        let mut r_ref = rng(43);
        let mut fast = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r_fast);
        let mut reference = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r_ref);
        for round in 0..60 {
            assert_eq!(fast.counts(), reference.counts(), "round {round}");
            fast.step(&mut r_fast);
            reference.step_reference(&mut r_ref);
            assert_eq!(fast.states(), reference.states(), "round {round}");
            assert_eq!(fast.random_bits_used(), reference.random_bits_used());
        }
    }

    #[test]
    #[should_panic(expected = "state vector length")]
    fn mismatched_init_panics() {
        let g = generators::path(3);
        ThreeStateProcess::new(&g, vec![ThreeState::White; 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        /// The 3-state process stabilizes to an MIS from arbitrary states.
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..10_000, n in 1usize..50, p_edge in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let init: Vec<ThreeState> = (0..n)
                .map(|_| match rand::Rng::gen_range(&mut r, 0..3) {
                    0 => ThreeState::Black1,
                    1 => ThreeState::Black0,
                    _ => ThreeState::White,
                })
                .collect();
            let mut proc = ThreeStateProcess::new(&g, init);
            proc.run_to_stabilization(&mut r, 200_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &proc.black_set()));
        }
    }
}
