use mis_graph::{Graph, VertexId, VertexSet};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

use crate::init::InitStrategy;
use crate::process::{Process, StateCounts};

/// Vertex state of the 3-state MIS process (Definition 5).
///
/// `Black1` and `Black0` are both "black" (MIS membership); the extra bit
/// lets a neighbor distinguish a *fresh* black claim (`Black1`) from a
/// *retiring* one (`Black0`) without collision detection, which is why this
/// variant fits the synchronous stone age model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreeState {
    /// Black with the "assert" bit set.
    Black1,
    /// Black with the "assert" bit cleared.
    Black0,
    /// Not in the MIS.
    White,
}

impl ThreeState {
    /// `true` for both black variants.
    pub fn is_black(self) -> bool {
        matches!(self, ThreeState::Black1 | ThreeState::Black0)
    }
}

/// The **3-state MIS process** of Definition 5.
///
/// Update rule for vertex `u` with previous state `c` and neighbor states
/// `NC`:
///
/// * if `c = black1`, or (`c = black0` and `NC` contains no `black1`), or
///   (`c = white` and `NC` contains no black state) — draw a uniformly
///   random state from `{black1, black0}`;
/// * else if `c = black0` — become `white`;
/// * else — keep the state.
///
/// A *stable black* vertex (black with no black neighbor) keeps alternating
/// between `black1` and `black0` forever; stability is therefore defined on
/// the black/non-black projection, exactly as in the paper.
///
/// Note on isolated vertices: Definition 5 phrases the white condition as
/// `NC_t(u) = {white}`; for a vertex with no neighbors that set is empty, so
/// a literal reading would leave an isolated white vertex white forever and
/// the black set would never become maximal. We read the condition as "no
/// neighbor is black", which coincides with the paper on every vertex that
/// has at least one neighbor and makes isolated vertices join the MIS.
///
/// # Example
///
/// ```
/// use mis_core::{ThreeStateProcess, Process, init::InitStrategy};
/// use mis_graph::{generators, mis_check};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let g = generators::complete(64);
/// let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut rng);
/// p.run_to_stabilization(&mut rng, 10_000).unwrap();
/// assert!(mis_check::is_mis(&g, &p.black_set()));
/// ```
#[derive(Debug, Clone)]
pub struct ThreeStateProcess<'g> {
    graph: &'g Graph,
    states: Vec<ThreeState>,
    /// Number of black (`black1` or `black0`) neighbors per vertex.
    black_nbrs: Vec<u32>,
    /// Number of `black1` neighbors per vertex.
    black1_nbrs: Vec<u32>,
    round: usize,
    random_bits: u64,
    next: Vec<ThreeState>,
}

impl<'g> ThreeStateProcess<'g> {
    /// Creates the process on `graph` with the given initial state vector.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != graph.n()`.
    pub fn new(graph: &'g Graph, states: Vec<ThreeState>) -> Self {
        assert_eq!(
            states.len(),
            graph.n(),
            "initial state vector length must equal the number of vertices"
        );
        let mut p = ThreeStateProcess {
            black_nbrs: vec![0; graph.n()],
            black1_nbrs: vec![0; graph.n()],
            next: states.clone(),
            graph,
            states,
            round: 0,
            random_bits: 0,
        };
        p.recount();
        p
    }

    /// Creates the process with states drawn from an [`InitStrategy`].
    pub fn with_init<R: Rng + ?Sized>(graph: &'g Graph, init: InitStrategy, rng: &mut R) -> Self {
        Self::new(graph, init.three_state(graph.n(), rng))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Current state of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn state(&self, u: VertexId) -> ThreeState {
        self.states[u]
    }

    /// The full state vector.
    pub fn states(&self) -> &[ThreeState] {
        &self.states
    }

    /// Overwrites the state of one vertex (transient-fault injection),
    /// keeping the neighbor bookkeeping consistent.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn set_state(&mut self, u: VertexId, state: ThreeState) {
        if self.states[u] == state {
            return;
        }
        self.states[u] = state;
        self.recount();
    }

    /// Whether `u` will re-randomize its state in the next round.
    pub fn is_active(&self, u: VertexId) -> bool {
        match self.states[u] {
            ThreeState::Black1 => true,
            ThreeState::Black0 => self.black1_nbrs[u] == 0,
            ThreeState::White => self.black_nbrs[u] == 0,
        }
    }

    /// `true` if `u` is stable black: black with no black neighbor. Its state
    /// keeps alternating between `black1` and `black0` but its *blackness*
    /// never changes.
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.states[u].is_black() && self.black_nbrs[u] == 0
    }

    /// `true` if `u` is stable: stable black or adjacent to a stable black vertex.
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.is_stable_black(u)
            || self
                .graph
                .neighbors(u)
                .iter()
                .any(|&v| self.is_stable_black(v))
    }

    fn recount(&mut self) {
        self.black_nbrs.iter_mut().for_each(|c| *c = 0);
        self.black1_nbrs.iter_mut().for_each(|c| *c = 0);
        for u in self.graph.vertices() {
            if self.states[u].is_black() {
                for &v in self.graph.neighbors(u) {
                    self.black_nbrs[v] += 1;
                    if self.states[u] == ThreeState::Black1 {
                        self.black1_nbrs[v] += 1;
                    }
                }
            }
        }
    }
}

impl Process for ThreeStateProcess<'_> {
    fn n(&self) -> usize {
        self.graph.n()
    }

    fn round(&self) -> usize {
        self.round
    }

    fn step(&mut self, rng: &mut dyn RngCore) {
        for u in self.graph.vertices() {
            self.next[u] = if self.is_active(u) {
                self.random_bits += 1;
                if rng.gen_bool(0.5) {
                    ThreeState::Black1
                } else {
                    ThreeState::Black0
                }
            } else if self.states[u] == ThreeState::Black0 {
                // black0 with a black1 neighbor retires to white.
                ThreeState::White
            } else {
                self.states[u]
            };
        }
        std::mem::swap(&mut self.states, &mut self.next);
        self.recount();
        self.round += 1;
    }

    fn is_stabilized(&self) -> bool {
        // Stabilized (on the black/non-black projection) iff every vertex is
        // stable: the black set is then an MIS and blackness never changes,
        // even though stable black vertices keep flipping black1/black0.
        self.graph.vertices().all(|u| self.is_stable(u))
    }

    fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.states[u].is_black()),
        )
    }

    fn active_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.is_active(u)),
        )
    }

    fn stable_black_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| self.is_stable_black(u)),
        )
    }

    fn unstable_set(&self) -> VertexSet {
        VertexSet::from_indices(
            self.n(),
            self.graph.vertices().filter(|&u| !self.is_stable(u)),
        )
    }

    fn counts(&self) -> StateCounts {
        let mut c = StateCounts::default();
        for u in self.graph.vertices() {
            if self.states[u].is_black() {
                c.black += 1;
            } else {
                c.non_black += 1;
            }
            if self.is_active(u) {
                c.active += 1;
            }
            if self.is_stable_black(u) {
                c.stable_black += 1;
            }
            if !self.is_stable(u) {
                c.unstable += 1;
            }
        }
        c
    }

    fn states_per_vertex(&self) -> usize {
        3
    }

    fn random_bits_used(&self) -> u64 {
        self.random_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::{generators, mis_check};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn isolated_vertex_joins_the_mis() {
        let g = Graph::empty(3);
        let mut r = rng(0);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::AllWhite, &mut r);
        p.run_to_stabilization(&mut r, 1000).unwrap();
        assert_eq!(p.black_set().len(), 3);
        assert!(mis_check::is_mis(&g, &p.black_set()));
    }

    #[test]
    fn stable_black_vertices_keep_alternating_but_stay_black() {
        let g = generators::path(3);
        // Vertex 1 black, others white: an MIS, so stable immediately.
        let mut p = ThreeStateProcess::new(
            &g,
            vec![ThreeState::White, ThreeState::Black1, ThreeState::White],
        );
        assert!(p.is_stabilized());
        let mut r = rng(1);
        let mut seen_black1 = false;
        let mut seen_black0 = false;
        for _ in 0..20 {
            p.step(&mut r);
            assert!(p.is_stabilized());
            assert!(p.state(1).is_black());
            assert!(!p.state(0).is_black() && !p.state(2).is_black());
            match p.state(1) {
                ThreeState::Black1 => seen_black1 = true,
                ThreeState::Black0 => seen_black0 = true,
                ThreeState::White => unreachable!("stable black vertex became white"),
            }
        }
        assert!(
            seen_black1 && seen_black0,
            "stable black vertex should alternate"
        );
    }

    #[test]
    fn black0_with_black1_neighbor_retires_to_white() {
        let g = generators::path(2);
        let mut p = ThreeStateProcess::new(&g, vec![ThreeState::Black0, ThreeState::Black1]);
        // Vertex 0: black0 with a black1 neighbor -> not active -> becomes white.
        assert!(!p.is_active(0));
        assert!(p.is_active(1)); // black1 is always active
        let mut r = rng(2);
        p.step(&mut r);
        assert_eq!(p.state(0), ThreeState::White);
        assert!(p.state(1).is_black());
    }

    #[test]
    fn stabilizes_to_mis_on_various_graphs() {
        let mut r = rng(7);
        let graphs = vec![
            generators::complete(32),
            generators::path(50),
            generators::cycle(33),
            generators::star(40),
            generators::random_tree(100, &mut r),
            generators::gnp(120, 0.08, &mut r),
            generators::gnp(80, 0.6, &mut r),
            generators::disjoint_cliques(4, 9),
        ];
        for (i, g) in graphs.into_iter().enumerate() {
            for init in [
                InitStrategy::AllWhite,
                InitStrategy::AllBlack,
                InitStrategy::Random,
            ] {
                let mut p = ThreeStateProcess::with_init(&g, init, &mut r);
                p.run_to_stabilization(&mut r, 100_000)
                    .unwrap_or_else(|e| panic!("graph {i} with {init:?}: {e}"));
                assert!(
                    mis_check::is_mis(&g, &p.black_set()),
                    "graph {i}, init {init:?}"
                );
            }
        }
    }

    #[test]
    fn counts_consistency() {
        let mut r = rng(9);
        let g = generators::gnp(50, 0.15, &mut r);
        let mut p = ThreeStateProcess::with_init(&g, InitStrategy::Random, &mut r);
        for _ in 0..40 {
            let c = p.counts();
            assert_eq!(c.black + c.non_black, g.n());
            assert_eq!(c.black, p.black_set().len());
            assert_eq!(c.active, p.active_set().len());
            assert!(mis_check::is_independent(&g, &p.stable_black_set()));
            if p.is_stabilized() {
                break;
            }
            p.step(&mut r);
        }
    }

    #[test]
    fn set_state_refreshes_bookkeeping() {
        let g = generators::complete(4);
        let mut p = ThreeStateProcess::new(&g, vec![ThreeState::White; 4]);
        p.set_state(0, ThreeState::Black1);
        assert!(
            !p.is_active(1),
            "white vertex with a black neighbor is not active"
        );
        p.set_state(0, ThreeState::White);
        assert!(p.is_active(1));
    }

    #[test]
    #[should_panic(expected = "state vector length")]
    fn mismatched_init_panics() {
        let g = generators::path(3);
        ThreeStateProcess::new(&g, vec![ThreeState::White; 5]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        /// The 3-state process stabilizes to an MIS from arbitrary states.
        #[test]
        fn stabilizes_from_arbitrary_states(seed in 0u64..10_000, n in 1usize..50, p_edge in 0.0f64..1.0) {
            let mut r = rng(seed);
            let g = generators::gnp(n, p_edge, &mut r);
            let init: Vec<ThreeState> = (0..n)
                .map(|_| match rand::Rng::gen_range(&mut r, 0..3) {
                    0 => ThreeState::Black1,
                    1 => ThreeState::Black0,
                    _ => ThreeState::White,
                })
                .collect();
            let mut proc = ThreeStateProcess::new(&g, init);
            proc.run_to_stabilization(&mut r, 200_000).unwrap();
            prop_assert!(mis_check::is_mis(&g, &proc.black_set()));
        }
    }
}
