//! Topology-mutation support types shared by every process: the
//! [`GraphRef`] ownership seam that lets a process outlive its original
//! borrowed graph once the topology changes, and the [`MutationError`]
//! returned by the `apply_mutation` entry points.
//!
//! # The ownership problem
//!
//! Processes are created on a *borrowed* `&'g Graph` — the zero-cost path
//! for the overwhelmingly common static-topology runs. A topology mutation
//! produces a **new** compacted [`Graph`] that nobody else owns, so the
//! process must take ownership of it. [`GraphRef`] is the two-state enum
//! that makes the switch-over invisible to the round loops: they only ever
//! see `&Graph` through [`GraphRef::get`], and `apply_mutation` silently
//! flips the variant from `Borrowed` to `Owned` at the first mutation.
//!
//! The `Owned` variant holds an [`Arc`] so a process and its sub-process
//! (the 3-color process and its randomized switch) can share one graph
//! instance: the process builds the new graph once and hands the same `Arc`
//! to the switch's rebind hook, keeping both views identical by
//! construction.

use std::fmt;
use std::sync::Arc;

use mis_graph::{Graph, GraphError};

/// A graph handle that is either borrowed (the static-topology fast path)
/// or owned through an [`Arc`] (after the first topology mutation).
///
/// Round loops access the graph exclusively through [`get`](Self::get),
/// which borrows only the field holding the `GraphRef` — so the borrow
/// checker still allows simultaneous `&mut` access to sibling fields
/// (engine, states), exactly as with the former plain `&'g Graph` field.
#[derive(Debug, Clone)]
pub(crate) enum GraphRef<'g> {
    /// Borrowing the caller's graph; no allocation, no indirection change.
    Borrowed(&'g Graph),
    /// Owning a mutated graph produced by `apply_mutation`.
    Owned(Arc<Graph>),
}

impl GraphRef<'_> {
    /// The graph currently in effect.
    #[inline]
    pub(crate) fn get(&self) -> &Graph {
        match self {
            GraphRef::Borrowed(g) => g,
            GraphRef::Owned(g) => g,
        }
    }
}

/// Why a topology mutation could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MutationError {
    /// The algorithm (or one of its sub-processes) does not support
    /// topology changes; its state is untouched.
    Unsupported,
    /// The delta itself was invalid against the current graph (out-of-range
    /// vertex, self-loop, …); no state was changed.
    Graph(GraphError),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::Unsupported => {
                write!(f, "the algorithm does not support topology changes")
            }
            MutationError::Graph(e) => write!(f, "invalid topology delta: {e}"),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Unsupported => None,
            MutationError::Graph(e) => Some(e),
        }
    }
}

impl From<GraphError> for MutationError {
    fn from(e: GraphError) -> Self {
        MutationError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;

    #[test]
    fn graph_ref_get_is_variant_transparent() {
        let g = generators::path(4);
        let borrowed = GraphRef::Borrowed(&g);
        assert_eq!(borrowed.get().n(), 4);
        let owned = GraphRef::Owned(Arc::new(generators::path(4)));
        assert_eq!(owned.get().m(), borrowed.get().m());
        let cloned = owned.clone();
        assert_eq!(cloned.get().n(), 4);
    }

    #[test]
    fn mutation_error_display_and_source() {
        let e = MutationError::Unsupported;
        assert!(e.to_string().contains("does not support"));
        assert!(std::error::Error::source(&e).is_none());
        let e: MutationError = GraphError::SelfLoop { vertex: 3 }.into();
        assert!(e.to_string().contains("invalid topology delta"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
