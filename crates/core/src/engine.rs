//! The **incremental active-frontier round engine** shared by the three MIS
//! processes.
//!
//! The naive implementation of a synchronous round rescans all `n` vertices,
//! rebuilds every black-neighbor count from scratch, and answers
//! `is_stabilized()` with yet another full scan — `O(n + m)` work per round
//! even in the long stabilization tail when only a handful of vertices are
//! still active. The paper's update rules are *local* (a vertex's move
//! depends only on its own state and its neighborhood), so once a region of
//! the graph is quiet no work should happen there — the guarantee the
//! silent-protocol literature formalizes. [`FrontierEngine`] makes the
//! simulator's cost proportional to activity:
//!
//! * **per-vertex black-neighbor counters** are kept in sync by delta
//!   propagation from the vertices that changed state, never by a full
//!   recount;
//! * a **maintained frontier worklist** holds exactly the vertices whose
//!   update rule may fire next round, so a round touches only the frontier
//!   and the neighborhoods of vertices that actually changed;
//! * **cached [`StateCounts`]** (including the unstable-vertex count) make
//!   [`counts`](FrontierEngine::counts) and
//!   [`is_stabilized`](FrontierEngine::is_stabilized) `O(1)`.
//!
//! # Complexity contract
//!
//! Let `A_t` be the set of frontier vertices at round `t`, `C_t ⊆ A_t` the
//! vertices whose state actually changed, and `S_t` the vertices whose
//! stable-black status flipped as a consequence. One round driven through the
//! engine costs
//!
//! ```text
//! O(|A_t| log |A_t|  +  vol(C_t)  +  vol(S_t))
//! ```
//!
//! where `vol(X) = Σ_{u ∈ X} deg(u)` — in particular `O(|A_t| + vol(A_t))`
//! per round, independent of `n` and `m` — and `is_stabilized()`/`counts()`
//! are `O(1)`. (The `log` factor comes from keeping the frontier sorted so
//! random draws happen in ascending vertex order, which keeps the RNG stream
//! bit-identical to the full-scan reference implementation; the parallel
//! counter-based path skips the sort, because order-independent randomness
//! makes the draw order irrelevant.)
//!
//! # How processes use it (sequential rounds)
//!
//! The engine owns the *state-independent* bookkeeping: the black/non-black
//! projection, black-neighbor counters, stability tracking, the frontier, and
//! the cached counts. The process owns its state vector (and any extra
//! counters, e.g. the `black1` counters of the 3-state process) and describes
//! its local rule to the engine through a classifier closure
//! `Fn(VertexId, u32) -> VertexClass` that maps a vertex and its current
//! black-neighbor count to "is it active?" (will draw a random state) and
//! "is it pending?" (may change state at all; a superset of active). A round
//! then is:
//!
//! 1. [`begin_round`](FrontierEngine::begin_round) — snapshot the frontier in
//!    ascending vertex order;
//! 2. decide every frontier vertex's next state from the *old* state and
//!    counters, drawing randomness only for active vertices (ascending order
//!    keeps the stream identical to a full scan);
//! 3. apply the changed states: [`set_black`](FrontierEngine::set_black) for
//!    blackness flips (delta-propagates the counters and marks the
//!    neighborhood dirty), [`mark_dirty`](FrontierEngine::mark_dirty) for
//!    same-blackness changes;
//! 4. [`flush`](FrontierEngine::flush) — reclassify the dirty vertices,
//!    update the cached counts, and repair the frontier.
//!
//! # Parallel rounds (counter-based randomness)
//!
//! When each vertex's randomness is a pure function of
//! `(seed, vertex, round, draw)` (see [`counter_rng`](crate::counter_rng)),
//! the draw order stops mattering and a round decomposes into data-parallel
//! phases separated by joins. All engine storage is atomically typed (see
//! [`sync`](crate::sync)), so the concurrent phases mutate it through
//! `&self` without locks; every concurrent write is either a commutative
//! read-modify-write or a write to a slot owned by exactly one thread, which
//! is what makes the result **bit-identical for every thread count**:
//!
//! 1. [`begin_round_unsorted`](FrontierEngine::begin_round_unsorted) —
//!    compact the frontier without sorting;
//! 2. a **fused decide+scatter dispatch** ([`par_round`](FrontierEngine::par_round)):
//!    workers claim worklist chunks from per-worker work-stealing deques
//!    ([`rayon::ChunkQueue`]), compute next states from old states/cached
//!    flags with counter-based draws, and immediately scatter each change's
//!    neighbor deltas through [`scatter_black`](FrontierEngine::scatter_black)
//!    into a recycled per-worker [`ScatterSink`]. Fusing is safe because the
//!    decide step reads only pre-round-cached flags and the decided vertex's
//!    own state, while the scatter step writes blackness, commutative
//!    counters, and dirty marks — disjoint from every other vertex's decide
//!    inputs;
//! 3. a **fused reclassification dispatch**
//!    ([`par_flush`](FrontierEngine::par_flush)) with one internal barrier:
//!    the first half recomputes stable-black flags over stolen dirty chunks
//!    and scatters the flips' neighbor deltas (collecting the second-wave
//!    vertices it won the dirty-mark race for); after the barrier the second
//!    half recomputes stability/activity/pending flags over the dirty
//!    chunks plus each worker's own second wave, accumulating count deltas
//!    and frontier additions per worker, merged as order-insensitive sums
//!    and unions.
//!
//! The whole sparse round is therefore **two pool dispatches** (two full
//! barriers plus one internal barrier), down from the historical four-phase
//! spawn-per-broadcast structure, and every pass buffer (change lists,
//! sinks, flush scratch, recount segments) is drawn from a recycled pool so
//! steady-state rounds allocate nothing. All dispatches run on the
//! process-wide persistent worker pool ([`rayon::global_pool`]); see that
//! function's docs for the pool lifecycle. The chunk→worker assignment made
//! by work stealing is scheduling-dependent, but every merge is commutative
//! and every random draw is counter-based, so results (states, black sets,
//! counts, draw tallies) stay **bit-identical for every thread count**.

use mis_graph::{Graph, VertexId, VertexSet};

use crate::exec::{steal_chunk_bounds, DENSE_SWITCH_DIVISOR, PAR_WORK_THRESHOLD};
use crate::process::StateCounts;
use crate::sync::{AtomicFlagVec, AtomicU32Vec, AtomicU8Vec};

/// How a process's local rule classifies one vertex, given its state and its
/// current black-neighbor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexClass {
    /// The vertex will draw a random state in the next round (`u ∈ A_t`).
    pub active: bool,
    /// The vertex's update rule may fire in the next round, so it must stay
    /// on the frontier. Always a superset of `active`; e.g. the 3-state
    /// process keeps retiring `black0` vertices pending, and the 3-color
    /// process keeps gray vertices pending while they wait for their switch.
    pub pending: bool,
}

/// Bit set in [`FrontierEngine`] flags when the vertex is active.
const ACTIVE: u8 = 1 << 0;
/// Bit: the vertex is stable black (black with no black neighbor).
const STABLE_BLACK: u8 = 1 << 1;
/// Bit: the vertex is stable (stable black or adjacent to a stable black).
const STABLE: u8 = 1 << 2;
/// Bit: the vertex is pending (logically on the frontier).
const PENDING: u8 = 1 << 3;

/// Per-thread scratch of the concurrent scatter phase: locally collected
/// dirty vertices and the thread's contribution to the black-count delta.
/// Merged deterministically by
/// [`commit_scatter`](FrontierEngine::commit_scatter).
#[derive(Debug, Default, Clone)]
pub struct ScatterSink {
    /// Vertices this thread won the dirty-mark race for.
    dirty: Vec<VertexId>,
    /// Net change to the number of black vertices from this thread's batch.
    black_delta: isize,
}

/// Per-worker count deltas of one fused `par_flush` dispatch, merged
/// deterministically (all sums).
#[derive(Debug, Default)]
struct FlushDeltas {
    stable_black_delta: isize,
    unstable_delta: isize,
    active_delta: isize,
    pending_delta: isize,
    pending_volume_delta: isize,
}

/// Recycled per-worker buffers of the fused `par_flush` dispatch: the
/// second-wave vertices this worker won the dirty-mark race for in the
/// stable-black half, and the frontier entries it added in the
/// reclassification half. Pooled so steady-state flushes allocate nothing.
#[derive(Debug, Default, Clone)]
struct FlushScratch {
    wave2: Vec<VertexId>,
    frontier_adds: Vec<VertexId>,
}

/// Incremental bookkeeping for one process instance: black projection,
/// delta-maintained neighbor counters, stability tracking, the active
/// frontier, and cached [`StateCounts`].
///
/// See the [module documentation](self) for the sequential and parallel
/// round protocols and the complexity contract.
#[derive(Debug, Clone)]
pub struct FrontierEngine {
    n: usize,
    /// Blackness projection of the process state (`u ∈ B_t`).
    black: AtomicFlagVec,
    /// `black_nbrs[u]` — number of black neighbors of `u`.
    black_nbrs: AtomicU32Vec,
    /// `stable_black_nbrs[u]` — number of stable-black neighbors of `u`,
    /// maintained so the unstable count updates by deltas.
    stable_black_nbrs: AtomicU32Vec,
    /// Per-vertex flag bits (`ACTIVE | STABLE_BLACK | STABLE | PENDING`).
    flags: AtomicU8Vec,
    /// Cached aggregate counts, kept exact at all times.
    counts: StateCounts,
    /// The frontier container: every pending vertex is in it; entries whose
    /// vertex stopped pending are removed lazily by `begin_round`.
    frontier: Vec<VertexId>,
    /// `frontier_contains[u]` — `u` has an entry in `frontier` (possibly a
    /// stale one awaiting compaction). Guards against duplicate entries.
    frontier_contains: AtomicFlagVec,
    /// Worklist of vertices whose flags must be recomputed by `flush`.
    dirty: Vec<VertexId>,
    /// `dirty_mark[u]` — `u` is currently queued in `dirty`.
    dirty_mark: AtomicFlagVec,
    /// Number of pending vertices (`|F_t|`), kept exact so the dense/sparse
    /// decision and `frontier_len` are `O(1)`.
    pending_count: usize,
    /// `vol(F_t) = Σ_{u pending} deg(u)`, kept exact for the same reason.
    pending_volume: usize,
    /// Recycled per-thread scatter sinks: `par_round` reuses their `dirty`
    /// buffers across rounds instead of reallocating every round.
    sink_pool: Vec<ScatterSink>,
    /// Recycled per-worker flush buffers (second wave + frontier adds),
    /// same lifecycle as `sink_pool`.
    flush_scratch_pool: Vec<FlushScratch>,
    /// Recycled per-chunk frontier segments of the parallel recount.
    seg_pool: Vec<Vec<VertexId>>,
}

impl FrontierEngine {
    /// Creates an engine for `n` vertices with every vertex white and no
    /// bookkeeping established; call [`rebuild`](Self::rebuild) before use.
    pub fn new(n: usize) -> Self {
        FrontierEngine {
            n,
            black: AtomicFlagVec::new(n),
            black_nbrs: AtomicU32Vec::new(n),
            stable_black_nbrs: AtomicU32Vec::new(n),
            flags: AtomicU8Vec::new(n),
            counts: StateCounts {
                non_black: n,
                unstable: n,
                ..StateCounts::default()
            },
            frontier: Vec::new(),
            frontier_contains: AtomicFlagVec::new(n),
            dirty: Vec::new(),
            dirty_mark: AtomicFlagVec::new(n),
            pending_count: 0,
            pending_volume: 0,
            sink_pool: Vec::new(),
            flush_scratch_pool: Vec::new(),
            seg_pool: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rebuilds every counter, flag, count, and the frontier from scratch in
    /// `O(n + m)`.
    ///
    /// Used at construction time and by the naive reference step paths; the
    /// incremental round protocols never need it.
    ///
    /// # Panics
    ///
    /// Panics if `graph.n()` differs from the engine's vertex count.
    pub fn rebuild<B, C>(&mut self, graph: &Graph, black: B, classify: C)
    where
        B: Fn(VertexId) -> bool,
        C: Fn(VertexId, u32) -> VertexClass,
    {
        assert_eq!(graph.n(), self.n, "graph size must match the engine");
        for u in 0..self.n {
            self.black.set(u, black(u));
        }
        self.dirty.clear();
        self.dirty_mark.clear_all();
        self.recount(graph, classify);
    }

    /// Stages the blackness projection of `u` **without** any delta
    /// bookkeeping. Callable through `&self` (concurrently for distinct
    /// vertices), so the dense decide sweep can record blackness as it
    /// writes states.
    ///
    /// Valid only inside a dense round: every counter, flag, count, and the
    /// frontier are stale until the following
    /// [`recount`](Self::recount)/[`recount_par`](Self::recount_par).
    #[inline]
    pub fn stage_black(&self, u: VertexId, black: bool) {
        self.black.set(u, black);
    }

    /// The dense path's fused full recount: recomputes every counter, flag,
    /// cached count, and the frontier from the current blackness projection
    /// in `O(n + m)` streaming passes (no frontier sort, no dirty-marking,
    /// no lock-prefixed read-modify-writes).
    ///
    /// Requires the blackness projection (`black`) to be current — the dense
    /// decide sweep maintains it through [`stage_black`](Self::stage_black) —
    /// and the dirty queue to be empty (every round protocol flushes before
    /// ending). The frontier comes out sorted (vertices are pushed in
    /// ascending order).
    pub fn recount<C>(&mut self, graph: &Graph, classify: C)
    where
        C: Fn(VertexId, u32) -> VertexClass,
    {
        debug_assert!(self.dirty.is_empty(), "recount requires a flushed engine");
        assert_eq!(graph.n(), self.n, "graph size must match the engine");
        let n = self.n;
        // Pass 1: black-neighbor counters from the blackness projection.
        self.black_nbrs.clear_all();
        {
            let black = &self.black;
            let black_nbrs = &mut self.black_nbrs;
            for u in 0..n {
                if black.get(u) {
                    for v in graph.neighbors(u).as_compact() {
                        black_nbrs.add_mut(v.index(), 1);
                    }
                }
            }
        }
        // Pass 2: stable-black-neighbor counters.
        self.stable_black_nbrs.clear_all();
        {
            let black = &self.black;
            let black_nbrs = &self.black_nbrs;
            let stable_black_nbrs = &mut self.stable_black_nbrs;
            for u in 0..n {
                if black.get(u) && black_nbrs.get(u) == 0 {
                    for v in graph.neighbors(u).as_compact() {
                        stable_black_nbrs.add_mut(v.index(), 1);
                    }
                }
            }
        }
        // Pass 3: flags, cached counts, and the frontier, in one sweep.
        let mut counts = StateCounts::default();
        let mut pending_volume = 0usize;
        self.frontier.clear();
        for u in 0..n {
            let mut f = 0u8;
            if self.black.get(u) {
                counts.black += 1;
            } else {
                counts.non_black += 1;
            }
            let stable_black = self.black.get(u) && self.black_nbrs.get(u) == 0;
            if stable_black {
                f |= STABLE_BLACK;
                counts.stable_black += 1;
            }
            if stable_black || self.stable_black_nbrs.get(u) > 0 {
                f |= STABLE;
            } else {
                counts.unstable += 1;
            }
            let class = classify(u, self.black_nbrs.get(u));
            debug_assert!(
                class.pending || !class.active,
                "active vertices must be pending"
            );
            if class.active {
                f |= ACTIVE;
                counts.active += 1;
            }
            if class.pending {
                f |= PENDING;
                pending_volume += graph.degree(u);
                self.frontier.push(u);
            }
            self.frontier_contains.set(u, class.pending);
            self.flags.set(u, f);
        }
        // Pushing in vertex order leaves the frontier already sorted.
        self.counts = counts;
        self.pending_count = self.frontier.len();
        self.pending_volume = pending_volume;
    }

    /// Parallel counterpart of [`recount`](Self::recount): the same fused
    /// full recount, run as **one** dispatch on the persistent pool with two
    /// internal barriers between the three passes, over volume-balanced
    /// vertex ranges ([`Graph::balanced_ranges`]). Counter scatters are
    /// commutative atomic adds and every flag is written by its range's
    /// owner, so the result is bit-identical for every thread count; the
    /// frontier is assembled from the per-range segments in range order and
    /// therefore comes out sorted, same as the sequential recount.
    pub fn recount_par<C>(&mut self, graph: &Graph, threads: usize, classify: C)
    where
        C: Fn(VertexId, u32) -> VertexClass + Sync,
    {
        self.recount_par_with(graph, threads, classify, |_| {});
    }

    /// [`recount_par`](Self::recount_par) with a process hook: `pre` runs
    /// over every vertex range during the first (counter-scatter) pass, so a
    /// process can rebuild its own auxiliary counters (e.g. the 3-state
    /// process's `black1` neighbor counts) in the same dispatch — its
    /// output is settled before the classification pass reads it, because
    /// two barriers separate them. `pre` must only scatter commutative
    /// atomic updates keyed off per-vertex data (never read engine counters
    /// being rebuilt in the same pass).
    pub fn recount_par_with<C, P>(&mut self, graph: &Graph, threads: usize, classify: C, pre: P)
    where
        C: Fn(VertexId, u32) -> VertexClass + Sync,
        P: Fn(std::ops::Range<VertexId>) + Sync,
    {
        debug_assert!(self.dirty.is_empty(), "recount requires a flushed engine");
        assert_eq!(graph.n(), self.n, "graph size must match the engine");
        let n = self.n;
        if n < PAR_WORK_THRESHOLD || threads <= 1 {
            pre(0..n);
            return self.recount(graph, classify);
        }
        let ranges = graph.balanced_ranges(threads);
        if ranges.len() <= 1 {
            pre(0..n);
            return self.recount(graph, classify);
        }
        self.black_nbrs.clear_all();
        self.stable_black_nbrs.clear_all();
        let pool = rayon::global_pool(threads);
        let seg_source = std::sync::Mutex::new(std::mem::take(&mut self.seg_pool));
        let black = &self.black;
        let black_nbrs = &self.black_nbrs;
        let stable_black_nbrs = &self.stable_black_nbrs;
        let flags = &self.flags;
        let frontier_contains = &self.frontier_contains;
        let ranges_ref = &ranges;
        let classify = &classify;
        let pre = &pre;
        // One dispatch, three internally-barriered passes. Participants
        // without a range (the pool can be wider than the range count) skip
        // the work but still hit every barrier.
        let parts: Vec<(StateCounts, usize, Vec<VertexId>)> = pool.broadcast(|ctx| {
            let range = ranges_ref.get(ctx.index()).copied();
            // Pass 1: black-neighbor scatter (commutative atomic adds),
            // fused with the process's auxiliary-counter scatter.
            if let Some((lo, hi)) = range {
                for u in lo..hi {
                    if black.get(u) {
                        for v in graph.neighbors(u).as_compact() {
                            black_nbrs.add(v.index(), 1);
                        }
                    }
                }
                pre(lo..hi);
            }
            ctx.barrier();
            // Pass 2: stable-black scatter (reads pass-1 counters).
            if let Some((lo, hi)) = range {
                for u in lo..hi {
                    if black.get(u) && black_nbrs.get(u) == 0 {
                        for v in graph.neighbors(u).as_compact() {
                            stable_black_nbrs.add(v.index(), 1);
                        }
                    }
                }
            }
            ctx.barrier();
            // Pass 3: flags + per-range counts and frontier segments.
            let mut counts = StateCounts::default();
            let mut pending_volume = 0usize;
            let mut segment = seg_source
                .lock()
                .expect("segment pool mutex is never poisoned")
                .pop()
                .unwrap_or_default();
            if let Some((lo, hi)) = range {
                for u in lo..hi {
                    let mut f = 0u8;
                    if black.get(u) {
                        counts.black += 1;
                    } else {
                        counts.non_black += 1;
                    }
                    let stable_black = black.get(u) && black_nbrs.get(u) == 0;
                    if stable_black {
                        f |= STABLE_BLACK;
                        counts.stable_black += 1;
                    }
                    if stable_black || stable_black_nbrs.get(u) > 0 {
                        f |= STABLE;
                    } else {
                        counts.unstable += 1;
                    }
                    let class = classify(u, black_nbrs.get(u));
                    debug_assert!(
                        class.pending || !class.active,
                        "active vertices must be pending"
                    );
                    if class.active {
                        f |= ACTIVE;
                        counts.active += 1;
                    }
                    if class.pending {
                        f |= PENDING;
                        pending_volume += graph.degree(u);
                        segment.push(u);
                    }
                    frontier_contains.set(u, class.pending);
                    flags.set(u, f);
                }
            }
            (counts, pending_volume, segment)
        });
        self.seg_pool = seg_source
            .into_inner()
            .expect("segment pool mutex is never poisoned");
        let mut counts = StateCounts::default();
        let mut pending_volume = 0usize;
        self.frontier.clear();
        // Broadcast results come back in participant-index order, i.e.
        // ascending vertex ranges: concatenation leaves the frontier sorted.
        for (part_counts, part_volume, mut segment) in parts {
            counts.black += part_counts.black;
            counts.non_black += part_counts.non_black;
            counts.active += part_counts.active;
            counts.stable_black += part_counts.stable_black;
            counts.unstable += part_counts.unstable;
            pending_volume += part_volume;
            self.frontier.extend_from_slice(&segment);
            segment.clear();
            self.seg_pool.push(segment);
        }
        self.counts = counts;
        self.pending_count = self.frontier.len();
        self.pending_volume = pending_volume;
    }

    /// `true` when the next round should run the dense full-sweep path:
    /// `|F_t| + vol(F_t) ≥ (n + 2m) / DENSE_SWITCH_DIVISOR`, evaluated in
    /// `O(1)` from the maintained frontier size and volume. See
    /// [`RoundStrategy`](crate::exec::RoundStrategy) for the rationale.
    #[inline]
    pub fn prefers_dense(&self, graph: &Graph) -> bool {
        self.pending_count + self.pending_volume
            >= (graph.n() + 2 * graph.m()) / DENSE_SWITCH_DIVISOR
    }

    /// Runs the dense decide sweep `0..n` as one dispatch on the persistent
    /// pool over **volume-balanced** vertex ranges
    /// ([`Graph::balanced_ranges`], weighting each vertex `1 + deg`) and
    /// sums the per-range draw counts. `decide` receives the engine and its
    /// vertex range; it reads the cached (pre-round) flags through `&self`
    /// and writes states/staged blackness for its own vertices only. With
    /// counter-based draws the partition is invisible in the results, so the
    /// sweep is bit-identical for every thread count (a single range runs
    /// inline with no dispatch).
    pub fn dense_sweep<D>(&self, graph: &Graph, threads: usize, decide: D) -> u64
    where
        D: Fn(&Self, std::ops::Range<VertexId>) -> u64 + Sync,
    {
        assert_eq!(graph.n(), self.n, "graph size must match the engine");
        if self.n == 0 {
            return 0;
        }
        if self.n < PAR_WORK_THRESHOLD || threads <= 1 {
            return decide(self, 0..self.n);
        }
        let ranges = graph.balanced_ranges(threads);
        if ranges.len() <= 1 {
            return decide(self, 0..self.n);
        }
        let pool = rayon::global_pool(threads);
        let ranges_ref = &ranges;
        pool.broadcast(|ctx| {
            ranges_ref
                .get(ctx.index())
                .map_or(0, |&(lo, hi)| decide(self, lo..hi))
        })
        .into_iter()
        .sum()
    }

    /// Compacts the frontier (dropping vertices that stopped pending) and
    /// copies it into `out`, sorting it in ascending vertex order when
    /// `sort` is set.
    fn begin_round_impl(&mut self, out: &mut Vec<VertexId>, sort: bool) {
        debug_assert!(self.dirty.is_empty(), "flush must run before begin_round");
        let flags = &self.flags;
        let contains = &self.frontier_contains;
        self.frontier.retain(|&u| {
            if flags.get(u) & PENDING != 0 {
                true
            } else {
                contains.set(u, false);
                false
            }
        });
        if sort {
            self.frontier.sort_unstable();
        }
        out.clear();
        out.extend_from_slice(&self.frontier);
    }

    /// Compacts the frontier (dropping vertices that stopped pending), sorts
    /// it in ascending vertex order, and copies it into `out`.
    ///
    /// The copy lets the caller iterate the round's worklist while mutating
    /// the engine; `O(|A_t| log |A_t|)`. Sequential rounds need the order so
    /// the shared RNG stream is drawn in ascending vertex id.
    pub fn begin_round(&mut self, out: &mut Vec<VertexId>) {
        self.begin_round_impl(out, true);
    }

    /// Like [`begin_round`](Self::begin_round) but without the sort:
    /// `O(|A_t|)`. Correct only when the round's randomness does not depend
    /// on draw order (the counter-based parallel path).
    pub fn begin_round_unsorted(&mut self, out: &mut Vec<VertexId>) {
        self.begin_round_impl(out, false);
    }

    /// Extends the engine to `new_n` vertices — topology growth support.
    ///
    /// New slots start neutral: non-black, zero counters, no flags (hence
    /// counted as non-black and unstable), and queued dirty so the next
    /// [`flush`](Self::flush) classifies them against the grown graph. Part
    /// of the incremental mutation protocol: after a topology change, call
    /// `grow` (if vertices joined), then [`edge_update`](Self::edge_update)
    /// once per net edge change, then `flush` with the **new** graph — the
    /// result is bit-identical to a from-scratch rebuild on the new graph.
    ///
    /// # Panics
    ///
    /// Panics if `new_n` is smaller than the current vertex count (vertices
    /// never disappear; leavers are detached instead).
    pub fn grow(&mut self, new_n: usize) {
        assert!(
            new_n >= self.n,
            "engine cannot shrink: {} -> {new_n}",
            self.n
        );
        let old_n = self.n;
        self.black.grow(new_n);
        self.black_nbrs.grow(new_n);
        self.stable_black_nbrs.grow(new_n);
        self.flags.grow(new_n);
        self.frontier_contains.grow(new_n);
        self.dirty_mark.grow(new_n);
        self.n = new_n;
        self.counts.non_black += new_n - old_n;
        self.counts.unstable += new_n - old_n;
        for u in old_n..new_n {
            self.mark_dirty(u);
        }
    }

    /// Records one net topology change — the edge `{u, v}` was `inserted`
    /// (or removed) — against the **current** flags and blackness: adjusts
    /// the black-neighbor and stable-black-neighbor counters of both
    /// endpoints, the pending frontier volume (each endpoint's degree moved
    /// by one), and queues both endpoints for reclassification. `O(1)`.
    ///
    /// Call once per edge of a [`CommittedDelta`](mis_graph::CommittedDelta)
    /// (after [`grow`](Self::grow) if the batch joined vertices), then
    /// [`flush`](Self::flush) with the new graph. The flush re-derives the
    /// stable-black/stability/activity flags from the adjusted counters and
    /// propagates the flips over the *new* adjacency, which re-establishes
    /// every engine invariant on the mutated topology.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or `u == v`.
    pub fn edge_update(&mut self, u: VertexId, v: VertexId, inserted: bool) {
        assert!(u < self.n, "vertex {u} out of range");
        assert!(v < self.n, "vertex {v} out of range");
        assert_ne!(u, v, "self-loops are not representable");
        for (a, b) in [(u, v), (v, u)] {
            if self.black.get(b) {
                if inserted {
                    self.black_nbrs.add_mut(a, 1);
                } else {
                    self.black_nbrs.sub_mut(a, 1);
                }
            }
            if self.flags.get(b) & STABLE_BLACK != 0 {
                if inserted {
                    self.stable_black_nbrs.add_mut(a, 1);
                } else {
                    self.stable_black_nbrs.sub_mut(a, 1);
                }
            }
            // deg(a) changed by one; keep vol(F_t) exact for pending a.
            if self.flags.get(a) & PENDING != 0 {
                if inserted {
                    self.pending_volume += 1;
                } else {
                    self.pending_volume -= 1;
                }
            }
            self.mark_dirty(a);
        }
    }

    /// Records that vertex `u`'s blackness changed: updates the cached black
    /// count, delta-propagates the black-neighbor counters of `N(u)`, and
    /// marks `u` and its neighborhood dirty. `O(deg(u))`.
    ///
    /// Calling this with `u`'s current blackness is a no-op apart from
    /// marking `u` dirty (useful when a state change does not cross the
    /// black/non-black boundary).
    pub fn set_black(&mut self, graph: &Graph, u: VertexId, black: bool) {
        self.mark_dirty(u);
        if self.black.get(u) == black {
            return;
        }
        self.black.set(u, black);
        if black {
            self.counts.black += 1;
            self.counts.non_black -= 1;
        } else {
            self.counts.black -= 1;
            self.counts.non_black += 1;
        }
        for v in graph.neighbors(u) {
            if black {
                self.black_nbrs.add_mut(v, 1);
            } else {
                self.black_nbrs.sub_mut(v, 1);
            }
            self.mark_dirty(v);
        }
    }

    /// Queues `u` for reclassification by the next [`flush`](Self::flush).
    /// Needed whenever something the classifier reads changed without a
    /// blackness flip (e.g. the 3-state process's `black1` counters).
    #[inline]
    pub fn mark_dirty(&mut self, u: VertexId) {
        if !self.dirty_mark.test_and_set_mut(u) {
            self.dirty.push(u);
        }
    }

    /// Concurrent counterpart of [`set_black`](Self::set_black), callable
    /// through `&self` from the parallel scatter phase: each changed vertex
    /// must be submitted by exactly one thread. Counter updates are
    /// commutative atomics, dirty vertices are deduplicated through the
    /// shared mark and collected into the caller's [`ScatterSink`], and the
    /// black-count delta is accumulated locally; pass the sinks to
    /// [`commit_scatter`](Self::commit_scatter) afterwards.
    pub fn scatter_black(&self, graph: &Graph, u: VertexId, black: bool, sink: &mut ScatterSink) {
        self.mark_dirty_concurrent(u, sink);
        if self.black.get(u) == black {
            return;
        }
        self.black.set(u, black);
        sink.black_delta += if black { 1 } else { -1 };
        for v in graph.neighbors(u) {
            if black {
                self.black_nbrs.add(v, 1);
            } else {
                self.black_nbrs.sub(v, 1);
            }
            self.mark_dirty_concurrent(v, sink);
        }
    }

    /// Concurrent counterpart of [`mark_dirty`](Self::mark_dirty): wins the
    /// per-vertex mark race at most once across all threads and records the
    /// vertex in the caller's sink.
    #[inline]
    pub fn mark_dirty_concurrent(&self, u: VertexId, sink: &mut ScatterSink) {
        if !self.dirty_mark.test_and_set(u) {
            sink.dirty.push(u);
        }
    }

    /// Merges the per-thread [`ScatterSink`]s of one scatter phase into the
    /// engine: applies the black-count delta and queues the collected dirty
    /// vertices. Deterministic regardless of how the work was partitioned
    /// (the delta is a sum; the dirty set is mark-deduplicated).
    pub fn commit_scatter<I: IntoIterator<Item = ScatterSink>>(&mut self, sinks: I) {
        let mut delta = 0isize;
        for mut sink in sinks {
            delta += self.drain_sink(&mut sink);
        }
        self.apply_black_delta(delta);
    }

    /// Drains one sink's dirty vertices into the engine's queue (keeping the
    /// sink's buffer capacity, so it can be recycled) and returns its
    /// black-count delta.
    fn drain_sink(&mut self, sink: &mut ScatterSink) -> isize {
        self.dirty.extend_from_slice(&sink.dirty);
        sink.dirty.clear();
        std::mem::take(&mut sink.black_delta)
    }

    /// Applies a net blackness change to the cached counts.
    fn apply_black_delta(&mut self, delta: isize) {
        self.counts.black = (self.counts.black as isize + delta) as usize;
        self.counts.non_black = (self.counts.non_black as isize - delta) as usize;
    }

    /// Reclassifies every dirty vertex, updating stability bookkeeping,
    /// cached counts, and frontier membership by diffing against the stored
    /// flags. Stable-black flips delta-propagate to the flipping vertex's
    /// neighborhood (re-queueing it), so the cost is `O(|dirty| + vol(S_t))`
    /// where `S_t` is the set of vertices whose stable-black status flipped.
    pub fn flush<C>(&mut self, graph: &Graph, classify: C)
    where
        C: Fn(VertexId, u32) -> VertexClass,
    {
        let mut head = 0;
        while head < self.dirty.len() {
            let u = self.dirty[head];
            head += 1;
            self.dirty_mark.set(u, false);

            let stable_black = self.black.get(u) && self.black_nbrs.get(u) == 0;
            if stable_black != (self.flags.get(u) & STABLE_BLACK != 0) {
                self.flags.xor_mut(u, STABLE_BLACK);
                if stable_black {
                    self.counts.stable_black += 1;
                } else {
                    self.counts.stable_black -= 1;
                }
                for v in graph.neighbors(u) {
                    if stable_black {
                        self.stable_black_nbrs.add_mut(v, 1);
                    } else {
                        self.stable_black_nbrs.sub_mut(v, 1);
                    }
                    self.mark_dirty(v);
                }
            }

            let stable = stable_black || self.stable_black_nbrs.get(u) > 0;
            if stable != (self.flags.get(u) & STABLE != 0) {
                self.flags.xor_mut(u, STABLE);
                if stable {
                    self.counts.unstable -= 1;
                } else {
                    self.counts.unstable += 1;
                }
            }

            let class = classify(u, self.black_nbrs.get(u));
            debug_assert!(
                class.pending || !class.active,
                "active vertices must be pending"
            );
            if class.active != (self.flags.get(u) & ACTIVE != 0) {
                self.flags.xor_mut(u, ACTIVE);
                if class.active {
                    self.counts.active += 1;
                } else {
                    self.counts.active -= 1;
                }
            }
            if class.pending != (self.flags.get(u) & PENDING != 0) {
                self.flags.xor_mut(u, PENDING);
                if class.pending {
                    self.pending_count += 1;
                    self.pending_volume += graph.degree(u);
                    if !self.frontier_contains.test_and_set_mut(u) {
                        self.frontier.push(u);
                    }
                } else {
                    self.pending_count -= 1;
                    self.pending_volume -= graph.degree(u);
                }
                // A vertex that stopped pending keeps its (now stale) entry
                // until the next begin_round compaction.
            }
        }
        self.dirty.clear();
    }

    /// Runs one complete counter-based parallel round over `worklist`: one
    /// **fused decide+scatter dispatch** with chunk-granular work stealing,
    /// the deterministic commit, and the fused
    /// [`par_flush`](Self::par_flush) dispatch — two pool dispatches per
    /// round in total. Returns the total number of random draws reported by
    /// the decide closures.
    ///
    /// This is the shared driver behind every process's parallel `step`; it
    /// keeps the phase ordering and the empty-worklist handling in one
    /// place. `decide` maps one worklist chunk to its state changes (of the
    /// process-specific change type `Ch`), writing new states as it goes,
    /// and returns its draw count; `scatter` applies one change's neighbor
    /// deltas through the engine's concurrent primitives
    /// ([`scatter_black`](Self::scatter_black) /
    /// [`mark_dirty_concurrent`](Self::mark_dirty_concurrent)) into the
    /// per-worker sink.
    ///
    /// **Fusion contract:** each worker scatters a chunk's changes
    /// immediately after deciding it, while other workers may still be
    /// deciding. This is sound because `decide` reads only the
    /// pre-round-cached flags and the decided vertex's own state/counters
    /// snapshot — never the live blackness or neighbor counters that
    /// `scatter` mutates — and every vertex is decided by exactly one
    /// worker. Work is claimed from per-worker stealing deques
    /// ([`rayon::ChunkQueue`]), so a degree-skewed worklist does not
    /// serialize the round on whichever worker drew the fattest chunk; the
    /// chunk→worker mapping varies, but all merges (counter deltas, dirty
    /// dedup, draw-count sums) are order-insensitive. Sub-threshold
    /// worklists (e.g. the near-empty late stabilization tail) run inline
    /// with no dispatch. Change buffers are recycled through the
    /// caller-owned `change_pool` and sinks through the engine's own pool,
    /// so steady-state rounds allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn par_round<Ch, D, S, C>(
        &mut self,
        graph: &Graph,
        worklist: &[VertexId],
        threads: usize,
        decide: D,
        scatter: S,
        classify: C,
        change_pool: &mut Vec<Vec<Ch>>,
    ) -> u64
    where
        Ch: Send + Sync,
        D: Fn(&Self, &[VertexId], &mut Vec<Ch>) -> u64 + Sync,
        S: Fn(&Self, &Ch, &mut ScatterSink) + Sync,
        C: Fn(VertexId, u32) -> VertexClass + Sync,
    {
        let bounds = steal_chunk_bounds(worklist.len(), threads);
        let mut draws_total = 0u64;
        if bounds.len() == 1 {
            // Inline path: no dispatch, same logic.
            let mut changes = change_pool.pop().unwrap_or_default();
            let mut sink = self.sink_pool.pop().unwrap_or_default();
            draws_total = decide(&*self, worklist, &mut changes);
            for change in &changes {
                scatter(&*self, change, &mut sink);
            }
            let delta = self.drain_sink(&mut sink);
            self.sink_pool.push(sink);
            changes.clear();
            change_pool.push(changes);
            self.apply_black_delta(delta);
        } else if !bounds.is_empty() {
            let pool = rayon::global_pool(threads);
            let queue = rayon::ChunkQueue::new(bounds.len(), pool.current_num_threads());
            let sink_source = std::sync::Mutex::new(std::mem::take(&mut self.sink_pool));
            let change_source = std::sync::Mutex::new(std::mem::take(change_pool));
            let bounds_ref = &bounds;
            let engine = &*self;
            let parts: Vec<(u64, Vec<Ch>, ScatterSink)> = pool.broadcast(|ctx| {
                // Buffers come from the recycled pools (one uncontended
                // lock per worker per round), keeping their capacity across
                // rounds.
                let mut changes = change_source
                    .lock()
                    .expect("change pool mutex is never poisoned")
                    .pop()
                    .unwrap_or_default();
                let mut sink = sink_source
                    .lock()
                    .expect("sink pool mutex is never poisoned")
                    .pop()
                    .unwrap_or_default();
                let mut draws = 0u64;
                while let Some(chunk) = queue.pop(ctx.index()) {
                    let (lo, hi) = bounds_ref[chunk];
                    let before = changes.len();
                    draws += decide(engine, &worklist[lo..hi], &mut changes);
                    for change in &changes[before..] {
                        scatter(engine, change, &mut sink);
                    }
                }
                (draws, changes, sink)
            });
            self.sink_pool = sink_source
                .into_inner()
                .expect("sink pool mutex is never poisoned");
            *change_pool = change_source
                .into_inner()
                .expect("change pool mutex is never poisoned");
            let mut delta = 0isize;
            for (draws, mut changes, mut sink) in parts {
                draws_total += draws;
                delta += self.drain_sink(&mut sink);
                self.sink_pool.push(sink);
                changes.clear();
                change_pool.push(changes);
            }
            self.apply_black_delta(delta);
        }
        self.par_flush(graph, threads, classify);
        draws_total
    }

    /// Parallel counterpart of [`flush`](Self::flush): reclassifies the
    /// dirty set as **one** dispatch on the persistent pool, two passes
    /// separated by an internal barrier.
    ///
    /// Pass 1 recomputes the stable-black flag of every dirty vertex
    /// (chunks claimed from work-stealing deques) and scatters the flips'
    /// neighbor deltas; one generation suffices because a vertex's
    /// stable-black status depends only on the (already settled) blackness
    /// and black-neighbor counters, so only scatter-dirty vertices can
    /// flip. Each worker keeps the second-wave vertices it won the
    /// dirty-mark race for. After the barrier, pass 2 recomputes the
    /// stability/activity/pending flags of the dirty set (a second round of
    /// stolen chunks) plus each worker's own second wave, accumulating
    /// count deltas and frontier additions per worker; all merges are
    /// order-insensitive sums/unions, so the result is identical for every
    /// thread count. Sub-threshold dirty sets fall back to the sequential
    /// [`flush`](Self::flush) (same fixed point, no dispatch).
    pub fn par_flush<C>(&mut self, graph: &Graph, threads: usize, classify: C)
    where
        C: Fn(VertexId, u32) -> VertexClass + Sync,
    {
        if self.dirty.is_empty() {
            return;
        }
        let bounds = steal_chunk_bounds(self.dirty.len(), threads);
        if bounds.len() <= 1 {
            return self.flush(graph, classify);
        }
        let dirty = std::mem::take(&mut self.dirty);
        let pool = rayon::global_pool(threads);
        let workers = pool.current_num_threads();
        // Independent claim queues for the two passes over the same chunks.
        let q1 = rayon::ChunkQueue::new(bounds.len(), workers);
        let q2 = rayon::ChunkQueue::new(bounds.len(), workers);
        let scratch_source = std::sync::Mutex::new(std::mem::take(&mut self.flush_scratch_pool));
        let black = &self.black;
        let black_nbrs = &self.black_nbrs;
        let stable_black_nbrs = &self.stable_black_nbrs;
        let flags = &self.flags;
        let dirty_mark = &self.dirty_mark;
        let frontier_contains = &self.frontier_contains;
        let bounds_ref = &bounds;
        let dirty_ref = &dirty;
        let classify = &classify;
        let parts: Vec<(FlushDeltas, FlushScratch)> = pool.broadcast(|ctx| {
            let mut scratch = scratch_source
                .lock()
                .expect("flush scratch mutex is never poisoned")
                .pop()
                .unwrap_or_default();
            let mut deltas = FlushDeltas::default();
            // Pass 1: stable-black recompute + neighbor-delta scatter.
            while let Some(chunk) = q1.pop(ctx.index()) {
                let (lo, hi) = bounds_ref[chunk];
                for &u in &dirty_ref[lo..hi] {
                    let stable_black = black.get(u) && black_nbrs.get(u) == 0;
                    if stable_black != (flags.get(u) & STABLE_BLACK != 0) {
                        flags.xor(u, STABLE_BLACK);
                        deltas.stable_black_delta += if stable_black { 1 } else { -1 };
                        for v in graph.neighbors(u) {
                            if stable_black {
                                stable_black_nbrs.add(v, 1);
                            } else {
                                stable_black_nbrs.sub(v, 1);
                            }
                            if !dirty_mark.test_and_set(v) {
                                scratch.wave2.push(v);
                            }
                        }
                    }
                }
            }
            ctx.barrier();
            // Pass 2: stability/activity/pending recompute over the dirty
            // chunks plus this worker's second wave. Wave-2 sets are
            // disjoint across workers (global dirty-mark dedup) and
            // disjoint from the original dirty list (its vertices were
            // already marked), so every vertex is reclassified exactly
            // once.
            {
                let FlushScratch {
                    wave2,
                    frontier_adds,
                } = &mut scratch;
                let mut reclassify = |u: VertexId| {
                    dirty_mark.set(u, false);
                    let f = flags.get(u);
                    let stable_black = f & STABLE_BLACK != 0;
                    let stable = stable_black || stable_black_nbrs.get(u) > 0;
                    if stable != (f & STABLE != 0) {
                        flags.xor(u, STABLE);
                        deltas.unstable_delta += if stable { -1 } else { 1 };
                    }
                    let class = classify(u, black_nbrs.get(u));
                    debug_assert!(
                        class.pending || !class.active,
                        "active vertices must be pending"
                    );
                    if class.active != (f & ACTIVE != 0) {
                        flags.xor(u, ACTIVE);
                        deltas.active_delta += if class.active { 1 } else { -1 };
                    }
                    if class.pending != (f & PENDING != 0) {
                        flags.xor(u, PENDING);
                        let vol = graph.degree(u) as isize;
                        if class.pending {
                            deltas.pending_delta += 1;
                            deltas.pending_volume_delta += vol;
                            if !frontier_contains.test_and_set(u) {
                                frontier_adds.push(u);
                            }
                        } else {
                            deltas.pending_delta -= 1;
                            deltas.pending_volume_delta -= vol;
                        }
                    }
                };
                while let Some(chunk) = q2.pop(ctx.index()) {
                    let (lo, hi) = bounds_ref[chunk];
                    for &u in &dirty_ref[lo..hi] {
                        reclassify(u);
                    }
                }
                for &u in wave2.iter() {
                    reclassify(u);
                }
            }
            (deltas, scratch)
        });
        self.flush_scratch_pool = scratch_source
            .into_inner()
            .expect("flush scratch mutex is never poisoned");
        for (deltas, mut scratch) in parts {
            self.counts.stable_black =
                (self.counts.stable_black as isize + deltas.stable_black_delta) as usize;
            self.counts.unstable = (self.counts.unstable as isize + deltas.unstable_delta) as usize;
            self.counts.active = (self.counts.active as isize + deltas.active_delta) as usize;
            self.pending_count = (self.pending_count as isize + deltas.pending_delta) as usize;
            self.pending_volume =
                (self.pending_volume as isize + deltas.pending_volume_delta) as usize;
            self.frontier.extend_from_slice(&scratch.frontier_adds);
            scratch.wave2.clear();
            scratch.frontier_adds.clear();
            self.flush_scratch_pool.push(scratch);
        }
        let mut dirty = dirty;
        dirty.clear();
        self.dirty = dirty;
    }

    /// The cached per-round counts; `O(1)`.
    #[inline]
    pub fn counts(&self) -> StateCounts {
        self.counts
    }

    /// `true` if every vertex is stable; `O(1)` (reads the cached unstable
    /// count).
    #[inline]
    pub fn is_stabilized(&self) -> bool {
        self.counts.unstable == 0
    }

    /// Whether `u` is currently black.
    #[inline]
    pub fn is_black(&self, u: VertexId) -> bool {
        self.black.get(u)
    }

    /// Number of black neighbors of `u` (delta-maintained).
    #[inline]
    pub fn black_neighbor_count(&self, u: VertexId) -> usize {
        self.black_nbrs.get(u) as usize
    }

    /// Whether `u` is active (cached classification).
    #[inline]
    pub fn is_active(&self, u: VertexId) -> bool {
        self.flags.get(u) & ACTIVE != 0
    }

    /// Whether `u` is stable black: black with no black neighbor.
    #[inline]
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.flags.get(u) & STABLE_BLACK != 0
    }

    /// Whether `u` is stable: stable black or adjacent to a stable black
    /// vertex.
    #[inline]
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.flags.get(u) & STABLE != 0
    }

    /// Whether `u` is on the frontier (its update rule may fire next round).
    #[inline]
    pub fn is_pending(&self, u: VertexId) -> bool {
        self.flags.get(u) & PENDING != 0
    }

    /// Number of pending vertices `|F_t|` (the logical frontier size);
    /// `O(1)` — maintained alongside the flags.
    #[inline]
    pub fn frontier_len(&self) -> usize {
        self.pending_count
    }

    /// `vol(F_t) = Σ_{u pending} deg(u)`, maintained for the `O(1)`
    /// dense/sparse decision of [`prefers_dense`](Self::prefers_dense).
    #[inline]
    pub fn frontier_volume(&self) -> usize {
        self.pending_volume
    }

    /// The current set of black vertices `B_t`.
    pub fn black_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.black.get(u)))
    }

    /// The current set of active vertices `A_t`.
    pub fn active_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_active(u)))
    }

    /// The current set of stable black vertices `I_t`.
    pub fn stable_black_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_stable_black(u)))
    }

    /// The current set of non-stable vertices `V_t`.
    pub fn unstable_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| !self.is_stable(u)))
    }

    /// The current set of pending (frontier) vertices.
    pub fn pending_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_pending(u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;

    /// Pending iff active iff "black with black neighbor or white with no
    /// black neighbor" — the 2-state rule, used here as a stand-in local rule.
    fn two_state_like(black: &[bool]) -> impl Fn(VertexId, u32) -> VertexClass + Sync + '_ {
        move |u, bn| {
            let active = if black[u] { bn > 0 } else { bn == 0 };
            VertexClass {
                active,
                pending: active,
            }
        }
    }

    #[test]
    fn rebuild_matches_definitions() {
        let g = generators::path(5);
        // Colors: B W B B W  -> vertex 0 stable black? nbr 1 white -> yes.
        let black = vec![true, false, true, true, false];
        let mut e = FrontierEngine::new(5);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        assert_eq!(e.black_neighbor_count(0), 0);
        assert_eq!(e.black_neighbor_count(1), 2);
        assert_eq!(e.black_neighbor_count(2), 1);
        assert_eq!(e.black_neighbor_count(3), 1);
        assert_eq!(e.black_neighbor_count(4), 1);
        assert!(e.is_stable_black(0));
        assert!(!e.is_stable_black(2) && !e.is_stable_black(3));
        // 2 and 3 are black with a black neighbor: active; 1 and 4 have black
        // neighbors: not active; 0 stable black.
        assert_eq!(e.active_set().to_vec(), vec![2, 3]);
        let c = e.counts();
        assert_eq!(c.black, 3);
        assert_eq!(c.non_black, 2);
        assert_eq!(c.active, 2);
        assert_eq!(c.stable_black, 1);
        // Stable: 0 (stable black) and 1 (adjacent to it). 2, 3, 4 unstable.
        assert_eq!(c.unstable, 3);
        assert!(!e.is_stabilized());
    }

    #[test]
    fn set_black_delta_matches_rebuild() {
        let g = generators::grid(4, 4);
        let mut black = vec![false; 16];
        let mut e = FrontierEngine::new(16);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        // Flip a few vertices through the delta path.
        for &(u, b) in &[(0usize, true), (5, true), (5, false), (10, true)] {
            black[u] = b;
            e.set_black(&g, u, b);
            e.flush(&g, two_state_like(&black));
        }
        let mut fresh = FrontierEngine::new(16);
        fresh.rebuild(&g, |u| black[u], two_state_like(&black));
        for u in 0..16 {
            assert_eq!(e.black_neighbor_count(u), fresh.black_neighbor_count(u));
            assert_eq!(e.is_active(u), fresh.is_active(u), "vertex {u}");
            assert_eq!(e.is_stable(u), fresh.is_stable(u), "vertex {u}");
            assert_eq!(e.is_pending(u), fresh.is_pending(u), "vertex {u}");
        }
        assert_eq!(e.counts(), fresh.counts());
    }

    /// Asserts every piece of engine bookkeeping agrees between two engines.
    fn assert_engines_agree(a: &FrontierEngine, b: &FrontierEngine, ctx: &str) {
        assert_eq!(a.n(), b.n(), "{ctx}");
        for u in 0..a.n() {
            assert_eq!(a.is_black(u), b.is_black(u), "black, vertex {u}: {ctx}");
            assert_eq!(
                a.black_neighbor_count(u),
                b.black_neighbor_count(u),
                "black_nbrs, vertex {u}: {ctx}"
            );
            assert_eq!(a.is_active(u), b.is_active(u), "active, vertex {u}: {ctx}");
            assert_eq!(a.is_stable(u), b.is_stable(u), "stable, vertex {u}: {ctx}");
            assert_eq!(
                a.is_stable_black(u),
                b.is_stable_black(u),
                "stable black, vertex {u}: {ctx}"
            );
            assert_eq!(
                a.is_pending(u),
                b.is_pending(u),
                "pending, vertex {u}: {ctx}"
            );
        }
        assert_eq!(a.counts(), b.counts(), "{ctx}");
        assert_eq!(a.frontier_len(), b.frontier_len(), "{ctx}");
        assert_eq!(a.frontier_volume(), b.frontier_volume(), "{ctx}");
    }

    #[test]
    fn recount_after_staging_matches_rebuild_and_delta_paths() {
        let g = generators::grid(6, 6);
        let mut black = vec![false; 36];
        let mut delta = FrontierEngine::new(36);
        delta.rebuild(&g, |u| black[u], two_state_like(&black));
        // Flip through the incremental path...
        for &(u, b) in &[
            (0usize, true),
            (7, true),
            (14, true),
            (7, false),
            (21, true),
        ] {
            black[u] = b;
            delta.set_black(&g, u, b);
            delta.flush(&g, two_state_like(&black));
        }
        // ...and through staging + dense recount.
        let mut dense = FrontierEngine::new(36);
        let all_white = [false; 36];
        dense.rebuild(&g, |_| false, two_state_like(&all_white));
        for (u, &b) in black.iter().enumerate() {
            dense.stage_black(u, b);
        }
        dense.recount(&g, two_state_like(&black));
        assert_engines_agree(&delta, &dense, "delta vs staged recount");

        // The O(1) frontier size/volume caches must match a recomputation.
        let expected_volume: usize = (0..36)
            .filter(|&u| dense.is_pending(u))
            .map(|u| g.degree(u))
            .sum();
        assert_eq!(dense.frontier_volume(), expected_volume);
        assert_eq!(
            dense.frontier_len(),
            (0..36).filter(|&u| dense.is_pending(u)).count()
        );
        // A recount leaves the frontier sorted; begin_round sees it intact.
        let mut wl_dense = Vec::new();
        let mut wl_delta = Vec::new();
        dense.begin_round(&mut wl_dense);
        delta.begin_round(&mut wl_delta);
        assert_eq!(wl_dense, wl_delta);
    }

    #[test]
    fn recount_par_matches_recount_for_every_thread_count() {
        // n = 2500 exceeds PAR_WORK_THRESHOLD, so multi-chunk recounts
        // actually run chunked.
        let (rows, cols) = (50, 50);
        let n = rows * cols;
        let g = generators::grid(rows, cols);
        let black: Vec<bool> = (0..n).map(|u| u % 3 == 0).collect();
        let mut sequential = FrontierEngine::new(n);
        sequential.rebuild(&g, |u| black[u], two_state_like(&black));
        for threads in [1usize, 2, 4, 7] {
            let mut parallel = FrontierEngine::new(n);
            for (u, &b) in black.iter().enumerate() {
                parallel.stage_black(u, b);
            }
            parallel.recount_par(&g, threads, two_state_like(&black));
            assert_engines_agree(&sequential, &parallel, &format!("threads {threads}"));
            let mut wl_seq = Vec::new();
            let mut wl_par = Vec::new();
            sequential.begin_round(&mut wl_seq);
            parallel.begin_round(&mut wl_par);
            assert_eq!(wl_seq, wl_par, "threads {threads}");
        }
    }

    #[test]
    fn dense_sweep_covers_every_vertex_once() {
        let n = 3000; // above PAR_WORK_THRESHOLD: real chunking
        let g = generators::path(n);
        let e = FrontierEngine::new(n);
        for threads in [1usize, 2, 5] {
            let hits = crate::sync::AtomicU32Vec::new(n);
            let total = e.dense_sweep(&g, threads, |_, range| {
                let mut local = 0u64;
                for u in range {
                    hits.add(u, 1);
                    local += 1;
                }
                local
            });
            assert_eq!(total, n as u64, "threads {threads}");
            for u in 0..n {
                assert_eq!(hits.get(u), 1, "vertex {u}, threads {threads}");
            }
        }
        let empty = mis_graph::Graph::empty(0);
        assert_eq!(FrontierEngine::new(0).dense_sweep(&empty, 4, |_, _| 1), 0);
    }

    #[test]
    fn sparse_round_costs_at_most_two_dispatches() {
        // The headline contract of the fused round path: one fused
        // decide+scatter dispatch plus one fused flush dispatch. Uses an
        // uncommon thread count so the global pool's counters are not
        // perturbed by other tests running concurrently.
        let threads = 11;
        let n = 6000; // above PAR_WORK_THRESHOLD so dispatches actually run
        let g = generators::grid(60, 100);
        let black = vec![false; n];
        let mut e = FrontierEngine::new(n);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        let mut worklist = Vec::new();
        e.begin_round_unsorted(&mut worklist);
        assert!(worklist.len() >= crate::exec::PAR_WORK_THRESHOLD);
        let pool = rayon::global_pool(threads);
        let before = pool.stats();
        let mut change_pool: Vec<Vec<(VertexId, bool)>> = Vec::new();
        // Flip every worklist vertex black: plenty of scatter + flush work.
        e.par_round(
            &g,
            &worklist,
            threads,
            |_, chunk, changes| {
                changes.extend(chunk.iter().map(|&u| (u, true)));
                chunk.len() as u64
            },
            |engine, &(u, b), sink| engine.scatter_black(&g, u, b, sink),
            |u, bn| {
                let active = if u % 2 == 0 { bn > 0 } else { bn == 0 };
                VertexClass {
                    active,
                    pending: active,
                }
            },
            &mut change_pool,
        );
        let after = pool.stats();
        assert!(
            after.dispatches - before.dispatches <= 2,
            "sparse round used {} dispatches (expected <= 2)",
            after.dispatches - before.dispatches
        );
    }

    #[test]
    fn prefers_dense_tracks_frontier_mass() {
        let g = generators::path(64);
        // Everything black: every vertex pending -> dense.
        let black = vec![true; 64];
        let mut e = FrontierEngine::new(64);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        assert!(e.prefers_dense(&g));
        // A stable MIS configuration: empty frontier -> sparse.
        let alternating: Vec<bool> = (0..64).map(|u| u % 2 == 0).collect();
        e.rebuild(&g, |u| alternating[u], two_state_like(&alternating));
        assert_eq!(e.frontier_len(), 0);
        assert!(!e.prefers_dense(&g));
    }

    #[test]
    fn scatter_and_par_flush_match_sequential_path() {
        // Apply the same batch of blackness flips through set_black + flush
        // and through scatter_black + commit_scatter + par_flush (at several
        // thread counts); all bookkeeping must agree.
        let g = generators::grid(5, 5);
        let black = vec![false; 25];
        let batch: Vec<(VertexId, bool)> = vec![(0, true), (6, true), (12, true), (13, true)];

        let mut sequential = FrontierEngine::new(25);
        sequential.rebuild(&g, |u| black[u], two_state_like(&black));
        let mut after = black.clone();
        for &(u, b) in &batch {
            after[u] = b;
        }
        for &(u, b) in &batch {
            sequential.set_black(&g, u, b);
        }
        sequential.flush(&g, two_state_like(&after));

        for threads in [1usize, 2, 4] {
            let mut parallel = FrontierEngine::new(25);
            parallel.rebuild(&g, |u| black[u], two_state_like(&black));
            let mut sink = ScatterSink::default();
            for &(u, b) in &batch {
                parallel.scatter_black(&g, u, b, &mut sink);
            }
            parallel.commit_scatter([sink]);
            parallel.par_flush(&g, threads, two_state_like(&after));

            for u in 0..25 {
                assert_eq!(
                    parallel.black_neighbor_count(u),
                    sequential.black_neighbor_count(u),
                    "threads {threads}, vertex {u}"
                );
                assert_eq!(parallel.is_active(u), sequential.is_active(u));
                assert_eq!(parallel.is_stable(u), sequential.is_stable(u));
                assert_eq!(parallel.is_stable_black(u), sequential.is_stable_black(u));
                assert_eq!(parallel.is_pending(u), sequential.is_pending(u));
            }
            assert_eq!(parallel.counts(), sequential.counts(), "threads {threads}");
            let mut wl_par = Vec::new();
            let mut wl_seq = Vec::new();
            parallel.begin_round(&mut wl_par);
            sequential.begin_round(&mut wl_seq);
            assert_eq!(wl_par, wl_seq, "threads {threads}");
        }
    }

    #[test]
    fn begin_round_is_sorted_and_deduplicated() {
        let g = generators::complete(6);
        let black = vec![true; 6];
        let mut e = FrontierEngine::new(6);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        let mut out = Vec::new();
        e.begin_round(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        // Leaving and re-entering the frontier must not duplicate entries.
        let mut black2 = black.clone();
        black2[3] = false; // 3 becomes white with black nbrs: not pending
        e.set_black(&g, 3, false);
        e.flush(&g, two_state_like(&black2));
        black2[3] = true;
        e.set_black(&g, 3, true);
        e.flush(&g, two_state_like(&black2));
        e.begin_round(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        // The unsorted variant returns the same set.
        let mut unsorted = Vec::new();
        e.begin_round_unsorted(&mut unsorted);
        unsorted.sort_unstable();
        assert_eq!(unsorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn grow_and_edge_update_match_rebuild_on_mutated_graph() {
        use mis_graph::GraphDelta;
        let g = generators::grid(5, 5);
        let mut black = vec![false; 25];
        for &u in &[0usize, 6, 12, 24, 13] {
            black[u] = true;
        }
        let mut e = FrontierEngine::new(25);
        e.rebuild(&g, |u| black[u], two_state_like(&black));

        // A batch mixing every mutation kind.
        let mut d = GraphDelta::new();
        d.remove_edge(0, 1)
            .add_edge(0, 24)
            .detach_vertex(12)
            .add_vertex([3, 7]) // id 25
            .add_edge(13, 25);
        let (g2, c) = g.apply_delta(&d).unwrap();
        assert_eq!(c.new_n, 26);

        // Incremental migration: grow, replay the net diff, flush on the
        // new graph.
        black.resize(c.new_n, false);
        e.grow(c.new_n);
        for &(u, v) in &c.removed {
            e.edge_update(u, v, false);
        }
        for &(u, v) in &c.inserted {
            e.edge_update(u, v, true);
        }
        e.flush(&g2, two_state_like(&black));

        let mut fresh = FrontierEngine::new(c.new_n);
        fresh.rebuild(&g2, |u| black[u], two_state_like(&black));
        assert_engines_agree(&e, &fresh, "incremental migration vs rebuild");
        let mut wl_inc = Vec::new();
        let mut wl_fresh = Vec::new();
        e.begin_round(&mut wl_inc);
        fresh.begin_round(&mut wl_fresh);
        assert_eq!(wl_inc, wl_fresh);
    }

    #[test]
    fn interleaved_mutations_and_flips_stay_consistent() {
        // Alternate blackness flips (the step/corrupt path) with edge
        // mutations (the churn path); after every flush the engine must
        // agree with a from-scratch rebuild on the current graph.
        use mis_graph::GraphDelta;
        let mut g = generators::grid(4, 4);
        let mut black = vec![false; 16];
        let mut e = FrontierEngine::new(16);
        e.rebuild(&g, |u| black[u], two_state_like(&black));

        let script: Vec<(bool, usize, usize)> = vec![
            (true, 0, 0),   // flip vertex 0 black
            (false, 0, 5),  // insert {0, 5}
            (true, 5, 0),   // flip vertex 5 black
            (false, 5, 10), // insert {5, 10}
            (true, 0, 0),   // flip vertex 0 white (toggle)
            (false, 1, 2),  // remove {1, 2} (grid edge)
            (true, 10, 0),  // flip vertex 10 black
        ];
        for (i, &(is_flip, u, v)) in script.iter().enumerate() {
            if is_flip {
                black[u] = !black[u];
                e.set_black(&g, u, black[u]);
                e.flush(&g, two_state_like(&black));
            } else {
                let mut d = GraphDelta::new();
                if g.has_edge(u, v) {
                    d.remove_edge(u, v);
                } else {
                    d.add_edge(u, v);
                }
                let (g2, c) = g.apply_delta(&d).unwrap();
                e.grow(c.new_n);
                for &(a, b) in &c.removed {
                    e.edge_update(a, b, false);
                }
                for &(a, b) in &c.inserted {
                    e.edge_update(a, b, true);
                }
                g = g2;
                e.flush(&g, two_state_like(&black));
            }
            let mut fresh = FrontierEngine::new(g.n());
            fresh.rebuild(&g, |u| black[u], two_state_like(&black));
            assert_engines_agree(&e, &fresh, &format!("after op {i}"));
        }
    }

    #[test]
    fn empty_graph_is_trivially_consistent() {
        let g = mis_graph::Graph::empty(0);
        let mut e = FrontierEngine::new(0);
        e.rebuild(
            &g,
            |_| false,
            |_, _| VertexClass {
                active: false,
                pending: false,
            },
        );
        assert!(e.is_stabilized());
        assert_eq!(e.counts(), StateCounts::default());
    }
}
