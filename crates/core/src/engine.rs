//! The **incremental active-frontier round engine** shared by the three MIS
//! processes.
//!
//! The naive implementation of a synchronous round rescans all `n` vertices,
//! rebuilds every black-neighbor count from scratch, and answers
//! `is_stabilized()` with yet another full scan — `O(n + m)` work per round
//! even in the long stabilization tail when only a handful of vertices are
//! still active. The paper's update rules are *local* (a vertex's move
//! depends only on its own state and its neighborhood), so once a region of
//! the graph is quiet no work should happen there — the guarantee the
//! silent-protocol literature formalizes. [`FrontierEngine`] makes the
//! simulator's cost proportional to activity:
//!
//! * **per-vertex black-neighbor counters** are kept in sync by delta
//!   propagation from the vertices that changed state, never by a full
//!   recount;
//! * a **maintained frontier worklist** holds exactly the vertices whose
//!   update rule may fire next round, so a round touches only the frontier
//!   and the neighborhoods of vertices that actually changed;
//! * **cached [`StateCounts`]** (including the unstable-vertex count) make
//!   [`counts`](FrontierEngine::counts) and
//!   [`is_stabilized`](FrontierEngine::is_stabilized) `O(1)`.
//!
//! # Complexity contract
//!
//! Let `A_t` be the set of frontier vertices at round `t`, `C_t ⊆ A_t` the
//! vertices whose state actually changed, and `S_t` the vertices whose
//! stable-black status flipped as a consequence. One round driven through the
//! engine costs
//!
//! ```text
//! O(|A_t| log |A_t|  +  vol(C_t)  +  vol(S_t))
//! ```
//!
//! where `vol(X) = Σ_{u ∈ X} deg(u)` — in particular `O(|A_t| + vol(A_t))`
//! per round, independent of `n` and `m` — and `is_stabilized()`/`counts()`
//! are `O(1)`. (The `log` factor comes from keeping the frontier sorted so
//! random draws happen in ascending vertex order, which keeps the RNG stream
//! bit-identical to the full-scan reference implementation.)
//!
//! # How processes use it
//!
//! The engine owns the *state-independent* bookkeeping: the black/non-black
//! projection, black-neighbor counters, stability tracking, the frontier, and
//! the cached counts. The process owns its state vector (and any extra
//! counters, e.g. the `black1` counters of the 3-state process) and describes
//! its local rule to the engine through a classifier closure
//! `Fn(VertexId, u32) -> VertexClass` that maps a vertex and its current
//! black-neighbor count to "is it active?" (will draw a random state) and
//! "is it pending?" (may change state at all; a superset of active). A round
//! then is:
//!
//! 1. [`begin_round`](FrontierEngine::begin_round) — snapshot the frontier in
//!    ascending vertex order;
//! 2. decide every frontier vertex's next state from the *old* state and
//!    counters, drawing randomness only for active vertices (ascending order
//!    keeps the stream identical to a full scan);
//! 3. apply the changed states: [`set_black`](FrontierEngine::set_black) for
//!    blackness flips (delta-propagates the counters and marks the
//!    neighborhood dirty), [`mark_dirty`](FrontierEngine::mark_dirty) for
//!    same-blackness changes;
//! 4. [`flush`](FrontierEngine::flush) — reclassify the dirty vertices,
//!    update the cached counts, and repair the frontier.

use mis_graph::{Graph, VertexId, VertexSet};

use crate::process::StateCounts;

/// How a process's local rule classifies one vertex, given its state and its
/// current black-neighbor count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VertexClass {
    /// The vertex will draw a random state in the next round (`u ∈ A_t`).
    pub active: bool,
    /// The vertex's update rule may fire in the next round, so it must stay
    /// on the frontier. Always a superset of `active`; e.g. the 3-state
    /// process keeps retiring `black0` vertices pending, and the 3-color
    /// process keeps gray vertices pending while they wait for their switch.
    pub pending: bool,
}

/// Bit set in [`FrontierEngine::flags`] when the vertex is active.
const ACTIVE: u8 = 1 << 0;
/// Bit: the vertex is stable black (black with no black neighbor).
const STABLE_BLACK: u8 = 1 << 1;
/// Bit: the vertex is stable (stable black or adjacent to a stable black).
const STABLE: u8 = 1 << 2;
/// Bit: the vertex is pending (logically on the frontier).
const PENDING: u8 = 1 << 3;

/// Incremental bookkeeping for one process instance: black projection,
/// delta-maintained neighbor counters, stability tracking, the active
/// frontier, and cached [`StateCounts`].
///
/// See the [module documentation](self) for the round protocol and the
/// complexity contract.
#[derive(Debug, Clone)]
pub struct FrontierEngine {
    n: usize,
    /// Blackness projection of the process state (`u ∈ B_t`).
    black: Vec<bool>,
    /// `black_nbrs[u]` — number of black neighbors of `u`.
    black_nbrs: Vec<u32>,
    /// `stable_black_nbrs[u]` — number of stable-black neighbors of `u`,
    /// maintained so the unstable count updates by deltas.
    stable_black_nbrs: Vec<u32>,
    /// Per-vertex flag bits ([`ACTIVE`] | [`STABLE_BLACK`] | [`STABLE`] |
    /// [`PENDING`]).
    flags: Vec<u8>,
    /// Cached aggregate counts, kept exact at all times.
    counts: StateCounts,
    /// The frontier container: every pending vertex is in it; entries whose
    /// vertex stopped pending are removed lazily by `begin_round`.
    frontier: Vec<VertexId>,
    /// `frontier_contains[u]` — `u` has an entry in `frontier` (possibly a
    /// stale one awaiting compaction). Guards against duplicate entries.
    frontier_contains: Vec<bool>,
    /// Worklist of vertices whose flags must be recomputed by `flush`.
    dirty: Vec<VertexId>,
    /// `dirty_mark[u]` — `u` is currently queued in `dirty`.
    dirty_mark: Vec<bool>,
}

impl FrontierEngine {
    /// Creates an engine for `n` vertices with every vertex white and no
    /// bookkeeping established; call [`rebuild`](Self::rebuild) before use.
    pub fn new(n: usize) -> Self {
        FrontierEngine {
            n,
            black: vec![false; n],
            black_nbrs: vec![0; n],
            stable_black_nbrs: vec![0; n],
            flags: vec![0; n],
            counts: StateCounts {
                non_black: n,
                unstable: n,
                ..StateCounts::default()
            },
            frontier: Vec::new(),
            frontier_contains: vec![false; n],
            dirty: Vec::new(),
            dirty_mark: vec![false; n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rebuilds every counter, flag, count, and the frontier from scratch in
    /// `O(n + m)`.
    ///
    /// Used at construction time and by the naive reference step paths; the
    /// incremental round protocol never needs it.
    ///
    /// # Panics
    ///
    /// Panics if `graph.n()` differs from the engine's vertex count.
    pub fn rebuild<B, C>(&mut self, graph: &Graph, black: B, classify: C)
    where
        B: Fn(VertexId) -> bool,
        C: Fn(VertexId, u32) -> VertexClass,
    {
        assert_eq!(graph.n(), self.n, "graph size must match the engine");
        for u in 0..self.n {
            self.black[u] = black(u);
        }
        self.black_nbrs.iter_mut().for_each(|c| *c = 0);
        for u in 0..self.n {
            if self.black[u] {
                for &v in graph.neighbors(u) {
                    self.black_nbrs[v] += 1;
                }
            }
        }
        self.stable_black_nbrs.iter_mut().for_each(|c| *c = 0);
        for u in 0..self.n {
            if self.black[u] && self.black_nbrs[u] == 0 {
                for &v in graph.neighbors(u) {
                    self.stable_black_nbrs[v] += 1;
                }
            }
        }
        self.counts = StateCounts::default();
        self.frontier.clear();
        self.dirty.clear();
        self.dirty_mark.iter_mut().for_each(|d| *d = false);
        for u in 0..self.n {
            let mut f = 0u8;
            if self.black[u] {
                self.counts.black += 1;
            } else {
                self.counts.non_black += 1;
            }
            let stable_black = self.black[u] && self.black_nbrs[u] == 0;
            if stable_black {
                f |= STABLE_BLACK;
                self.counts.stable_black += 1;
            }
            if stable_black || self.stable_black_nbrs[u] > 0 {
                f |= STABLE;
            } else {
                self.counts.unstable += 1;
            }
            let class = classify(u, self.black_nbrs[u]);
            debug_assert!(
                class.pending || !class.active,
                "active vertices must be pending"
            );
            if class.active {
                f |= ACTIVE;
                self.counts.active += 1;
            }
            if class.pending {
                f |= PENDING;
                self.frontier.push(u);
            }
            self.frontier_contains[u] = class.pending;
            self.flags[u] = f;
        }
        // Pushing in vertex order leaves the frontier already sorted.
    }

    /// Compacts the frontier (dropping vertices that stopped pending), sorts
    /// it in ascending vertex order, and copies it into `out`.
    ///
    /// The copy lets the caller iterate the round's worklist while mutating
    /// the engine; `O(|A_t| log |A_t|)`.
    pub fn begin_round(&mut self, out: &mut Vec<VertexId>) {
        debug_assert!(self.dirty.is_empty(), "flush must run before begin_round");
        let flags = &self.flags;
        let contains = &mut self.frontier_contains;
        self.frontier.retain(|&u| {
            if flags[u] & PENDING != 0 {
                true
            } else {
                contains[u] = false;
                false
            }
        });
        self.frontier.sort_unstable();
        out.clear();
        out.extend_from_slice(&self.frontier);
    }

    /// Records that vertex `u`'s blackness changed: updates the cached black
    /// count, delta-propagates the black-neighbor counters of `N(u)`, and
    /// marks `u` and its neighborhood dirty. `O(deg(u))`.
    ///
    /// Calling this with `u`'s current blackness is a no-op apart from
    /// marking `u` dirty (useful when a state change does not cross the
    /// black/non-black boundary).
    pub fn set_black(&mut self, graph: &Graph, u: VertexId, black: bool) {
        self.mark_dirty(u);
        if self.black[u] == black {
            return;
        }
        self.black[u] = black;
        if black {
            self.counts.black += 1;
            self.counts.non_black -= 1;
        } else {
            self.counts.black -= 1;
            self.counts.non_black += 1;
        }
        for &v in graph.neighbors(u) {
            if black {
                self.black_nbrs[v] += 1;
            } else {
                self.black_nbrs[v] -= 1;
            }
            self.mark_dirty(v);
        }
    }

    /// Queues `u` for reclassification by the next [`flush`](Self::flush).
    /// Needed whenever something the classifier reads changed without a
    /// blackness flip (e.g. the 3-state process's `black1` counters).
    #[inline]
    pub fn mark_dirty(&mut self, u: VertexId) {
        if !self.dirty_mark[u] {
            self.dirty_mark[u] = true;
            self.dirty.push(u);
        }
    }

    /// Reclassifies every dirty vertex, updating stability bookkeeping,
    /// cached counts, and frontier membership by diffing against the stored
    /// flags. Stable-black flips delta-propagate to the flipping vertex's
    /// neighborhood (re-queueing it), so the cost is `O(|dirty| + vol(S_t))`
    /// where `S_t` is the set of vertices whose stable-black status flipped.
    pub fn flush<C>(&mut self, graph: &Graph, classify: C)
    where
        C: Fn(VertexId, u32) -> VertexClass,
    {
        let mut head = 0;
        while head < self.dirty.len() {
            let u = self.dirty[head];
            head += 1;
            self.dirty_mark[u] = false;

            let stable_black = self.black[u] && self.black_nbrs[u] == 0;
            if stable_black != (self.flags[u] & STABLE_BLACK != 0) {
                self.flags[u] ^= STABLE_BLACK;
                if stable_black {
                    self.counts.stable_black += 1;
                } else {
                    self.counts.stable_black -= 1;
                }
                for &v in graph.neighbors(u) {
                    if stable_black {
                        self.stable_black_nbrs[v] += 1;
                    } else {
                        self.stable_black_nbrs[v] -= 1;
                    }
                    self.mark_dirty(v);
                }
            }

            let stable = stable_black || self.stable_black_nbrs[u] > 0;
            if stable != (self.flags[u] & STABLE != 0) {
                self.flags[u] ^= STABLE;
                if stable {
                    self.counts.unstable -= 1;
                } else {
                    self.counts.unstable += 1;
                }
            }

            let class = classify(u, self.black_nbrs[u]);
            debug_assert!(
                class.pending || !class.active,
                "active vertices must be pending"
            );
            if class.active != (self.flags[u] & ACTIVE != 0) {
                self.flags[u] ^= ACTIVE;
                if class.active {
                    self.counts.active += 1;
                } else {
                    self.counts.active -= 1;
                }
            }
            if class.pending != (self.flags[u] & PENDING != 0) {
                self.flags[u] ^= PENDING;
                if class.pending && !self.frontier_contains[u] {
                    self.frontier_contains[u] = true;
                    self.frontier.push(u);
                }
                // A vertex that stopped pending keeps its (now stale) entry
                // until the next begin_round compaction.
            }
        }
        self.dirty.clear();
    }

    /// The cached per-round counts; `O(1)`.
    #[inline]
    pub fn counts(&self) -> StateCounts {
        self.counts
    }

    /// `true` if every vertex is stable; `O(1)` (reads the cached unstable
    /// count).
    #[inline]
    pub fn is_stabilized(&self) -> bool {
        self.counts.unstable == 0
    }

    /// Whether `u` is currently black.
    #[inline]
    pub fn is_black(&self, u: VertexId) -> bool {
        self.black[u]
    }

    /// Number of black neighbors of `u` (delta-maintained).
    #[inline]
    pub fn black_neighbor_count(&self, u: VertexId) -> usize {
        self.black_nbrs[u] as usize
    }

    /// Whether `u` is active (cached classification).
    #[inline]
    pub fn is_active(&self, u: VertexId) -> bool {
        self.flags[u] & ACTIVE != 0
    }

    /// Whether `u` is stable black: black with no black neighbor.
    #[inline]
    pub fn is_stable_black(&self, u: VertexId) -> bool {
        self.flags[u] & STABLE_BLACK != 0
    }

    /// Whether `u` is stable: stable black or adjacent to a stable black
    /// vertex.
    #[inline]
    pub fn is_stable(&self, u: VertexId) -> bool {
        self.flags[u] & STABLE != 0
    }

    /// Whether `u` is on the frontier (its update rule may fire next round).
    #[inline]
    pub fn is_pending(&self, u: VertexId) -> bool {
        self.flags[u] & PENDING != 0
    }

    /// Number of pending vertices (the logical frontier size).
    pub fn frontier_len(&self) -> usize {
        (0..self.n).filter(|&u| self.is_pending(u)).count()
    }

    /// The current set of black vertices `B_t`.
    pub fn black_set(&self) -> VertexSet {
        VertexSet::from_flags(&self.black)
    }

    /// The current set of active vertices `A_t`.
    pub fn active_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_active(u)))
    }

    /// The current set of stable black vertices `I_t`.
    pub fn stable_black_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_stable_black(u)))
    }

    /// The current set of non-stable vertices `V_t`.
    pub fn unstable_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| !self.is_stable(u)))
    }

    /// The current set of pending (frontier) vertices.
    pub fn pending_set(&self) -> VertexSet {
        VertexSet::from_indices(self.n, (0..self.n).filter(|&u| self.is_pending(u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mis_graph::generators;

    /// Pending iff active iff "black with black neighbor or white with no
    /// black neighbor" — the 2-state rule, used here as a stand-in local rule.
    fn two_state_like(black: &[bool]) -> impl Fn(VertexId, u32) -> VertexClass + '_ {
        move |u, bn| {
            let active = if black[u] { bn > 0 } else { bn == 0 };
            VertexClass {
                active,
                pending: active,
            }
        }
    }

    #[test]
    fn rebuild_matches_definitions() {
        let g = generators::path(5);
        // Colors: B W B B W  -> vertex 0 stable black? nbr 1 white -> yes.
        let black = vec![true, false, true, true, false];
        let mut e = FrontierEngine::new(5);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        assert_eq!(e.black_neighbor_count(0), 0);
        assert_eq!(e.black_neighbor_count(1), 2);
        assert_eq!(e.black_neighbor_count(2), 1);
        assert_eq!(e.black_neighbor_count(3), 1);
        assert_eq!(e.black_neighbor_count(4), 1);
        assert!(e.is_stable_black(0));
        assert!(!e.is_stable_black(2) && !e.is_stable_black(3));
        // 2 and 3 are black with a black neighbor: active; 1 and 4 have black
        // neighbors: not active; 0 stable black.
        assert_eq!(e.active_set().to_vec(), vec![2, 3]);
        let c = e.counts();
        assert_eq!(c.black, 3);
        assert_eq!(c.non_black, 2);
        assert_eq!(c.active, 2);
        assert_eq!(c.stable_black, 1);
        // Stable: 0 (stable black) and 1 (adjacent to it). 2, 3, 4 unstable.
        assert_eq!(c.unstable, 3);
        assert!(!e.is_stabilized());
    }

    #[test]
    fn set_black_delta_matches_rebuild() {
        let g = generators::grid(4, 4);
        let mut black = vec![false; 16];
        let mut e = FrontierEngine::new(16);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        // Flip a few vertices through the delta path.
        for &(u, b) in &[(0usize, true), (5, true), (5, false), (10, true)] {
            black[u] = b;
            e.set_black(&g, u, b);
            e.flush(&g, two_state_like(&black));
        }
        let mut fresh = FrontierEngine::new(16);
        fresh.rebuild(&g, |u| black[u], two_state_like(&black));
        for u in 0..16 {
            assert_eq!(e.black_neighbor_count(u), fresh.black_neighbor_count(u));
            assert_eq!(e.is_active(u), fresh.is_active(u), "vertex {u}");
            assert_eq!(e.is_stable(u), fresh.is_stable(u), "vertex {u}");
            assert_eq!(e.is_pending(u), fresh.is_pending(u), "vertex {u}");
        }
        assert_eq!(e.counts(), fresh.counts());
    }

    #[test]
    fn begin_round_is_sorted_and_deduplicated() {
        let g = generators::complete(6);
        let black = vec![true; 6];
        let mut e = FrontierEngine::new(6);
        e.rebuild(&g, |u| black[u], two_state_like(&black));
        let mut out = Vec::new();
        e.begin_round(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        // Leaving and re-entering the frontier must not duplicate entries.
        let mut black2 = black.clone();
        black2[3] = false; // 3 becomes white with black nbrs: not pending
        e.set_black(&g, 3, false);
        e.flush(&g, two_state_like(&black2));
        black2[3] = true;
        e.set_black(&g, 3, true);
        e.flush(&g, two_state_like(&black2));
        e.begin_round(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_graph_is_trivially_consistent() {
        let g = mis_graph::Graph::empty(0);
        let mut e = FrontierEngine::new(0);
        e.rebuild(
            &g,
            |_| false,
            |_, _| VertexClass {
                active: false,
                pending: false,
            },
        );
        assert!(e.is_stabilized());
        assert_eq!(e.counts(), StateCounts::default());
    }
}
